//! Integration tests for the post-paper extensions (DESIGN.md §8):
//! containers, cluster aggregation, and the rate-curve variants.

use m3::prelude::*;
use m3::sim::clock::SimDuration;
use m3::workloads::cluster::run_cluster;
use m3::workloads::settings::blueprint_for;

fn quick_cfg() -> MachineConfig {
    let mut cfg = MachineConfig::stock_64gb();
    cfg.sample_period = None;
    cfg.max_time = SimDuration::from_secs(40_000);
    cfg
}

fn mean_runtime(res: &m3::workloads::machine::RunResult) -> Option<f64> {
    let rts: Vec<Option<f64>> = res
        .apps
        .iter()
        .map(|a| {
            if a.failed || a.killed {
                None
            } else {
                a.runtime().map(|d| d.as_secs_f64())
            }
        })
        .collect();
    if rts.iter().any(Option::is_none) || rts.is_empty() {
        None
    } else {
        Some(rts.iter().flatten().sum::<f64>() / rts.len() as f64)
    }
}

#[test]
fn container_limits_pressure_their_members() {
    // Two M3-capable apps in containers: the one over its limit receives
    // pressure; the one within it stays untouched.
    let scenario = Scenario::uniform("CM", 0);
    let schedule: Vec<_> = scenario
        .apps
        .iter()
        .enumerate()
        .map(|(i, &(kind, start))| {
            let bp = blueprint_for(kind, &AppConfig::stock_default(), true);
            (m3::workloads::app_name(kind.code(), i), start, bp)
        })
        .collect();
    // The Go-Cache's full demand is ~46 GiB; a 10-GiB container must cap it.
    let res =
        Machine::new(quick_cfg()).run_with_containers(schedule, Some(vec![10 * GIB, 40 * GIB]));
    let cache = &res.apps[0];
    assert!(cache.finished.is_some(), "capped cache still completes");
    assert!(
        cache.peak_rss < 14 * GIB,
        "container pressure must cap the cache near its limit, peak = {:.1} GiB",
        cache.peak_rss as f64 / GIB as f64
    );
    let kmeans = &res.apps[1];
    assert!(kmeans.finished.is_some());
}

#[test]
fn m3_beats_static_containers_on_phase_shifting_workload() {
    let scenario = Scenario::uniform("CMW", 180);
    let m3 = run_scenario(&scenario, &Setting::m3(3), quick_cfg());
    let schedule: Vec<_> = scenario
        .apps
        .iter()
        .enumerate()
        .map(|(i, &(kind, start))| {
            let bp = blueprint_for(kind, &AppConfig::stock_default(), true);
            (m3::workloads::app_name(kind.code(), i), start, bp)
        })
        .collect();
    let contained = Machine::new(quick_cfg())
        .run_with_containers(schedule, Some(vec![27 * GIB, 11 * GIB, 24 * GIB]));
    let m3_mean = m3.mean_runtime_secs().expect("m3 finishes");
    let cont_mean = mean_runtime(&contained).expect("containers finish");
    assert!(
        m3_mean < cont_mean,
        "M3 ({m3_mean:.0}s) must beat static containers ({cont_mean:.0}s)"
    );
}

#[test]
fn cluster_runs_are_deterministic_per_node_count() {
    let scenario = Scenario::uniform("MM", 60);
    let a = run_cluster(&scenario, &Setting::m3(2), quick_cfg(), 3);
    let b = run_cluster(&scenario, &Setting::m3(2), quick_cfg(), 3);
    assert_eq!(a.app_runtimes_s, b.app_runtimes_s);
    assert_eq!(a.per_node_s, b.per_node_s);
}

#[test]
fn cluster_runtime_is_at_least_single_node() {
    let scenario = Scenario::uniform("M", 0);
    let single = run_scenario(&scenario, &Setting::m3(1), quick_cfg());
    let cluster = run_cluster(&scenario, &Setting::m3(1), quick_cfg(), 4);
    let single_rt = single.runtimes_secs()[0].expect("finishes");
    let cluster_rt = cluster.app_runtimes_s[0].expect("finishes");
    // The slowest of 4 perturbed nodes cannot beat... every node, but the
    // salt-0 single node is not in the cluster set; allow a small margin.
    assert!(
        cluster_rt >= single_rt * 0.8,
        "slowest-node aggregation should not be dramatically faster"
    );
}

#[test]
fn rate_curves_all_complete_the_workload() {
    use m3::core::RateCurve;
    use m3::workloads::apps::AppBlueprint;
    for curve in [RateCurve::Linear, RateCurve::Exponential, RateCurve::Step] {
        let scenario = Scenario::uniform("MM", 60);
        let schedule: Vec<_> = scenario
            .apps
            .iter()
            .enumerate()
            .map(|(i, &(kind, start))| {
                let mut bp = blueprint_for(kind, &AppConfig::stock_default(), true);
                if let AppBlueprint::Spark { spark, .. } = &mut bp {
                    spark.rate_curve = curve;
                }
                (m3::workloads::app_name(kind.code(), i), start, bp)
            })
            .collect();
        let mut cfg = quick_cfg();
        cfg.monitor = Some(MonitorConfig::paper_64gb());
        let res = Machine::new(cfg).run(schedule);
        assert!(res.all_finished(), "{curve:?} must still complete");
    }
}

#[test]
fn crash_mid_run_frees_memory_for_survivors() {
    // Failure injection: kill the Go-Cache 120 s in. The survivors must
    // keep running, the dead process's memory must return to the pool, and
    // the monitor must sweep its stale registration.
    use m3::workloads::settings::blueprint_for;
    let scenario = Scenario::uniform("CM", 0);
    let schedule: Vec<_> = scenario
        .apps
        .iter()
        .enumerate()
        .map(|(i, &(kind, start))| {
            let bp = blueprint_for(kind, &AppConfig::stock_default(), true);
            (m3::workloads::app_name(kind.code(), i), start, bp)
        })
        .collect();
    let mut cfg = quick_cfg();
    cfg.monitor = Some(MonitorConfig::paper_64gb());
    let res = Machine::new(cfg).run_with_chaos(schedule, vec![(SimDuration::from_secs(120), 0)]);
    let cache = &res.apps[0];
    assert!(cache.killed, "the injected crash must be recorded");
    assert!(cache.finished.is_none());
    let kmeans = &res.apps[1];
    assert!(
        kmeans.finished.is_some() && !kmeans.killed,
        "the survivor must complete: {kmeans:?}"
    );
    // No residual memory after the run.
    assert!(res.end > SimTime::from_secs(120));
}

#[test]
fn chaos_on_all_apps_ends_the_run() {
    use m3::workloads::settings::blueprint_for;
    let scenario = Scenario::uniform("MM", 0);
    let schedule: Vec<_> = scenario
        .apps
        .iter()
        .enumerate()
        .map(|(i, &(kind, start))| {
            let bp = blueprint_for(kind, &AppConfig::stock_default(), true);
            (m3::workloads::app_name(kind.code(), i), start, bp)
        })
        .collect();
    let mut cfg = quick_cfg();
    cfg.monitor = Some(MonitorConfig::paper_64gb());
    let res = Machine::new(cfg).run_with_chaos(
        schedule,
        vec![
            (SimDuration::from_secs(30), 0),
            (SimDuration::from_secs(40), 1),
        ],
    );
    assert!(res.apps.iter().all(|a| a.killed));
    assert!(
        res.end < SimTime::from_secs(120),
        "the run must terminate promptly once everyone is dead, ended at {}",
        res.end
    );
}
