//! End-to-end workload tests spanning every crate.
//!
//! These run real (scaled-down where sensible) evaluation workloads through
//! the full stack — kernel, runtimes, framework/caches, monitor, world loop
//! — and assert the paper's qualitative claims rather than point values.

use m3::prelude::*;
use m3::sim::clock::SimDuration;

fn machine() -> MachineConfig {
    let mut cfg = MachineConfig::m3_64gb();
    cfg.max_time = SimDuration::from_secs(40_000);
    cfg
}

#[test]
fn mmw_under_m3_all_apps_finish_and_release_memory() {
    let scenario = Scenario::uniform("MMW", 180);
    let out = run_scenario(&scenario, &Setting::m3(3), machine());
    assert!(out.run.all_finished(), "all three jobs must complete");
    for app in &out.run.apps {
        assert!(app.runtime().expect("finished") > SimDuration::from_secs(60));
        assert!(app.peak_rss > 0);
    }
    let stats = out.run.monitor_stats.expect("monitor ran");
    assert!(stats.polls > 100);
    assert_eq!(
        stats.kills, 0,
        "a cooperative workload must never be killed"
    );
}

#[test]
fn m3_beats_default_on_a_fig5_workload() {
    let scenario = Scenario::uniform("CCW", 300);
    let m3 = run_scenario(&scenario, &Setting::m3(3), machine());
    let default = run_scenario(&scenario, &Setting::default_for(3), machine());
    let rep = speedup_report(&m3, &default);
    // CCW contains n-weight, which cannot run under the 16-GB default heap:
    // the paper plots INF for such workloads.
    assert!(
        rep.mean_speedup.is_none(),
        "Default cannot run n-weight (min heap > 16 GB)"
    );
    assert!(default.run.apps[2].failed);
    assert!(m3.run.all_finished());
}

#[test]
fn m3_speedup_on_delayed_identical_jobs() {
    // CCC 480: the paper's second-best workload — delayed identical caches
    // leave windows where a static split wastes memory.
    let scenario = Scenario::uniform("CCC", 480);
    let m3 = run_scenario(&scenario, &Setting::m3(3), machine());
    let default = run_scenario(&scenario, &Setting::default_for(3), machine());
    let rep = speedup_report(&m3, &default);
    let speedup = rep.mean_speedup.expect("both finish");
    assert!(
        speedup > 1.5,
        "M3 must clearly beat the default static split, got {speedup:.2}x"
    );
}

#[test]
fn worst_case_overhead_is_bounded() {
    // MMM 0 vs a hand-tuned static equal partition (heap sized so that the
    // 45% storage share covers the working set): M3 must stay within ~15%.
    let scenario = Scenario::uniform("MMM", 0);
    let m3 = run_scenario(&scenario, &Setting::m3(3), machine());
    let tuned = Setting::uniform(
        SettingKind::Oracle,
        AppConfig {
            heap: 20 * GIB,
            spark: m3::framework::SparkConfig {
                memory_fraction: 0.9,
                storage_fraction: 0.9,
                ..Default::default()
            },
            ..AppConfig::stock_default()
        },
        3,
    );
    let baseline = run_scenario(&scenario, &tuned, machine());
    let rep = speedup_report(&m3, &baseline);
    let speedup = rep.mean_speedup.expect("both finish");
    assert!(
        speedup > 0.85,
        "worst-case M3 slow-down must be bounded (paper: 3.77%), got {speedup:.2}x"
    );
}

#[test]
fn memory_profile_stays_below_physical_plus_swap() {
    let scenario = Scenario::uniform("CMW", 180);
    let out = run_scenario(&scenario, &Setting::m3(3), machine());
    let total = out.run.profile.series("total").expect("sampled");
    // 64 GiB node + 16 GiB swap model.
    assert!(total.max().expect("samples") <= 80.0);
    // And M3 should keep usage essentially under the 62-GiB top: the
    // fraction of samples above top must be tiny.
    assert!(
        total.fraction_above(62.5) < 0.05,
        "M3 must keep the system under the top of memory"
    );
}

#[test]
fn thresholds_rise_under_load() {
    let scenario = Scenario::uniform("MMW", 180);
    let out = run_scenario(&scenario, &Setting::m3(3), machine());
    let high = out.run.profile.series("high-threshold").expect("sampled");
    let first = high.samples.first().expect("samples").v;
    let max = high.max().expect("samples");
    assert!(
        max > first + 1.0,
        "the high threshold must rise while the system runs under top (Fig. 6)"
    );
}

#[test]
fn determinism_same_inputs_same_results() {
    let scenario = Scenario::uniform("CWM", 180);
    let a = run_scenario(&scenario, &Setting::m3(3), machine());
    let b = run_scenario(&scenario, &Setting::m3(3), machine());
    for (x, y) in a.run.apps.iter().zip(&b.run.apps) {
        assert_eq!(
            x.finished, y.finished,
            "runs must be bit-for-bit repeatable"
        );
        assert_eq!(x.peak_rss, y.peak_rss);
        assert_eq!(x.gc_pause, y.gc_pause);
    }
    assert_eq!(
        a.run.monitor_stats.map(|s| (s.low_signals, s.high_signals)),
        b.run.monitor_stats.map(|s| (s.low_signals, s.high_signals))
    );
}

#[test]
fn scaled_node_runs_the_memcached_experiment() {
    // The Fig. 9 setting: an 8-GB node, k-means + Memcached.
    use m3::runtime::{AllocatorKind, JvmConfig};
    use m3::workloads::apps::AppBlueprint;
    use m3::workloads::hibench;
    let mut cfg = MachineConfig::scaled(8 * GIB, true);
    cfg.max_time = SimDuration::from_secs(20_000);
    let res = Machine::new(cfg).run(vec![
        (
            "k-means".into(),
            SimDuration::ZERO,
            AppBlueprint::Spark {
                jvm: JvmConfig::m3(1024 * GIB),
                spark: m3::framework::SparkConfig::m3(),
                job: hibench::kmeans_small(),
            },
        ),
        (
            "memcached".into(),
            SimDuration::from_secs(240),
            AppBlueprint::Memcached {
                allocator: AllocatorKind::Jemalloc,
                workload: hibench::memtier_workload(),
                max_bytes: 0,
                m3_mode: true,
            },
        ),
    ]);
    assert!(res.all_finished());
}
