//! Property-based tests of M3's core invariants (proptest).

use m3::core::selection::{select_processes, sort_candidates, Candidate};
use m3::core::thresholds::AdaptiveThresholds;
use m3::core::{
    AdaptiveAllocator, MonitorConfig, PacketBucket, PacketKind, PacketOutcome, ReclaimScheduler,
    SchedulerConfig, SortOrder,
};
use m3::os::{Kernel, KernelConfig, Pid, SignalFaultConfig};
use m3::sim::clock::{SimDuration, SimTime};
use m3::sim::trace::Criticality;
use m3::sim::units::{GIB, KIB, MIB};
use m3::workloads::faults::{FaultEvent, FaultKind, FaultPlan};
use m3::workloads::machine::MachineConfig;
use m3::workloads::runner::{run_scenario, run_scenario_with_faults};
use m3::workloads::scenario::Scenario;
use m3::workloads::settings::Setting;
use proptest::prelude::*;

fn candidate_strategy() -> impl Strategy<Value = Candidate> {
    (
        0u64..50,
        0u64..1000,
        0u64..(64 * GIB),
        1u64..(8 * GIB),
        0usize..3,
    )
        .prop_map(|(pid, spawn, rss, expect, crit)| Candidate {
            pid,
            spawned_at: SimTime::from_secs(spawn),
            rss,
            expected_reclaim: expect,
            crit: Criticality::ALL[crit],
        })
}

proptest! {
    /// Algorithm 1 selects enough expected reclamation to cover the target,
    /// or everything if the total cannot cover it — and never over-selects:
    /// dropping the last selected process would leave the target uncovered.
    #[test]
    fn selection_covers_target_minimally(
        cands in proptest::collection::vec(candidate_strategy(), 0..20),
        target in 0u64..(64 * GIB),
        order_idx in 0usize..4,
    ) {
        let order = [
            SortOrder::NewestFirst,
            SortOrder::OldestFirst,
            SortOrder::LargestRss,
            SortOrder::LargestExpectedReclaim,
        ][order_idx];
        let selected = select_processes(&cands, order, target);
        let expect_of = |pid: u64| {
            cands.iter().find(|c| c.pid == pid).map(|c| c.expected_reclaim)
        };
        // Duplicated pids make per-pid lookups ambiguous; restrict to the
        // well-formed case.
        let mut pids: Vec<u64> = cands.iter().map(|c| c.pid).collect();
        pids.sort_unstable();
        pids.dedup();
        prop_assume!(pids.len() == cands.len());

        let total: u64 = cands.iter().map(|c| c.expected_reclaim).sum();
        let covered: u64 = selected.iter().filter_map(|&p| expect_of(p)).sum();
        if target == 0 {
            prop_assert!(selected.is_empty());
        } else if total >= target {
            prop_assert!(covered >= target, "selection must cover the target");
            // Minimality: without the last pick, the target is uncovered.
            let without_last: u64 = selected[..selected.len() - 1]
                .iter()
                .filter_map(|&p| expect_of(p))
                .sum();
            prop_assert!(without_last < target);
        } else {
            prop_assert_eq!(selected.len(), cands.len(), "all must be signalled");
        }
    }

    /// Sorting is a permutation, criticality is the primary key (more
    /// expendable classes first), and the posture key orders within a
    /// class.
    #[test]
    fn sort_is_a_permutation(
        mut cands in proptest::collection::vec(candidate_strategy(), 0..20),
    ) {
        let mut pids: Vec<u64> = cands.iter().map(|c| c.pid).collect();
        sort_candidates(&mut cands, SortOrder::LargestRss);
        let mut sorted_pids: Vec<u64> = cands.iter().map(|c| c.pid).collect();
        pids.sort_unstable();
        sorted_pids.sort_unstable();
        prop_assert_eq!(pids, sorted_pids);
        for w in cands.windows(2) {
            let (a, b) = (w[0].crit.expendability(), w[1].crit.expendability());
            prop_assert!(a >= b, "expendable classes must sort first");
            if a == b {
                prop_assert!(w[0].rss >= w[1].rss);
            }
        }
    }

    /// Algorithm 1's kill-ordering invariant, as a pure property of the
    /// selection routine: no candidate is selected while a strictly
    /// more-expendable one is left unselected — under every posture order.
    #[test]
    fn selection_never_spares_a_more_expendable_candidate(
        cands in proptest::collection::vec(candidate_strategy(), 0..20),
        target in 1u64..(64 * GIB),
        order_idx in 0usize..4,
    ) {
        let order = [
            SortOrder::NewestFirst,
            SortOrder::OldestFirst,
            SortOrder::LargestRss,
            SortOrder::LargestExpectedReclaim,
        ][order_idx];
        let selected = select_processes(&cands, order, target);
        let expendability_of = |pid: u64| {
            cands
                .iter()
                .find(|c| c.pid == pid)
                .map(|c| c.crit.expendability())
                .expect("selected pids come from the candidate set")
        };
        let mut pids: Vec<u64> = cands.iter().map(|c| c.pid).collect();
        pids.sort_unstable();
        pids.dedup();
        prop_assume!(pids.len() == cands.len());
        for c in &cands {
            if selected.contains(&c.pid) {
                continue;
            }
            // `c` was spared: nothing selected may be less expendable.
            for &victim in &selected {
                prop_assert!(
                    expendability_of(victim) >= c.crit.expendability(),
                    "{:?} pid {} selected while more-expendable {:?} pid {} was spared",
                    cands.iter().find(|k| k.pid == victim).expect("present").crit,
                    victim,
                    c.crit,
                    c.pid
                );
            }
        }
    }

    /// The allow rate is within [0, 1], non-decreasing with time after a
    /// signal, and resets to zero on a new signal.
    #[test]
    fn allow_rate_is_monotone(
        epoch_ms in 1u64..60_000,
        num_epochs in 1u32..10,
        probes in proptest::collection::vec(0u64..600_000, 1..20),
    ) {
        let mut a = AdaptiveAllocator::new(num_epochs);
        a.on_high_signal(SimTime::from_millis(1000));
        a.on_reclaim_done(SimTime::from_millis(1000 + epoch_ms));
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        let mut last = -1.0f64;
        for p in sorted {
            let r = a.allow_rate(SimTime::from_millis(1000 + p));
            prop_assert!((0.0..=1.0).contains(&r));
            prop_assert!(r >= last);
            last = r;
        }
        a.on_high_signal(SimTime::from_millis(700_000));
        prop_assert_eq!(a.allow_rate(SimTime::from_millis(700_000)), 0.0);
    }

    /// Batched delays track the exact throttle fraction: over many batches
    /// at rate r, the delayed share converges to 1 − r.
    #[test]
    fn batched_delays_match_rate(
        epoch_s in 1u64..100,
        elapsed_frac in 0.0f64..1.0,
        batch in 1u64..5000,
    ) {
        let mut a = AdaptiveAllocator::new(1);
        a.on_high_signal(SimTime::ZERO);
        a.on_reclaim_done(SimTime::from_secs(epoch_s));
        let now = SimTime::from_millis((epoch_s as f64 * 1000.0 * elapsed_frac) as u64);
        let rate = a.allow_rate(now);
        let mut delayed = 0u64;
        let rounds = 50;
        for _ in 0..rounds {
            delayed += a.delayed_of(batch, now);
        }
        let total = (batch * rounds) as f64;
        let frac = delayed as f64 / total;
        // The fractional carry bounds the error by one allocation in
        // `total`, plus float slack.
        prop_assert!((frac - (1.0 - rate)).abs() <= 1.0 / total + 1e-9,
            "delayed fraction {frac} vs expected {}", 1.0 - rate);
    }

    /// Threshold ordering low <= high <= top holds under any usage stream.
    #[test]
    fn thresholds_stay_ordered(
        usages in proptest::collection::vec(0u64..(70 * GIB), 1..300),
    ) {
        let cfg = MonitorConfig::paper_64gb();
        let mut t = AdaptiveThresholds::new(&cfg);
        for u in usages {
            t.observe(u);
            prop_assert!(t.low() <= t.high());
            prop_assert!(t.high() <= t.top());
        }
    }

    /// Kernel accounting: committed equals the sum of per-process RSS under
    /// any interleaving of grows, releases and exits; meminfo stays
    /// self-consistent.
    #[test]
    fn kernel_ledger_balances(
        ops in proptest::collection::vec((0u8..4, 0u64..8, 1u64..(4 * GIB)), 1..200),
    ) {
        let mut os = Kernel::new(KernelConfig::with_total(16 * GIB));
        let pids: Vec<_> = (0..8).map(|i| os.spawn(format!("p{i}"))).collect();
        for (op, which, bytes) in ops {
            let pid = pids[which as usize];
            match op {
                0 => { let _ = os.grow(pid, bytes); }
                1 => { let _ = os.release(pid, bytes); }
                2 => { os.exit(pid); }
                _ => { os.kill(pid); }
            }
            let sum: u64 = pids.iter().map(|&p| os.rss(p)).sum();
            prop_assert_eq!(os.committed(), sum);
            let mi = os.meminfo();
            prop_assert_eq!(mi.used + mi.available, mi.total);
            prop_assert_eq!(mi.swapped, os.swapped());
        }
    }

    /// Slab cache residency never exceeds the key space, never goes
    /// negative, and byte accounting is slab-aligned.
    #[test]
    fn slab_cache_invariants(
        ops in proptest::collection::vec((0u8..2, 1u64..100_000), 1..100),
    ) {
        use m3::cache::SlabCache;
        let mut c = SlabCache::new(1_000_000, 4 * KIB, MIB, 2 * GIB);
        for (op, n) in ops {
            match op {
                0 => { c.insert(n); }
                _ => { c.evict_slabs(n / 256 + 1); }
            }
            prop_assert!(c.resident_items() <= c.key_space());
            prop_assert_eq!(c.resident_bytes() % MIB, 0, "whole slabs only");
            prop_assert!(c.resident_bytes() <= c.max_bytes() + MIB);
            let h = c.hit_ratio();
            prop_assert!((0.0..=1.0).contains(&h));
        }
    }

    /// JVM pool accounting: committed = young + pinned + garbage + free at
    /// all times, and the kernel agrees, under arbitrary operation mixes.
    #[test]
    fn jvm_accounting_invariant(
        ops in proptest::collection::vec((0u8..5, 1u64..(512 * MIB)), 1..100),
        m3_mode in proptest::bool::ANY,
    ) {
        use m3::runtime::{Jvm, JvmConfig};
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let pid = os.spawn("jvm");
        let cfg = if m3_mode { JvmConfig::m3(32 * GIB) } else { JvmConfig::stock(8 * GIB) };
        let mut jvm = Jvm::new(pid, cfg);
        for (op, bytes) in ops {
            match op {
                0 => { let _ = jvm.alloc_transient(&mut os, bytes); }
                1 => { let _ = jvm.alloc_pinned(&mut os, bytes); }
                2 => { jvm.free_pinned(bytes); }
                3 => { jvm.young_gc(&mut os); }
                _ => { jvm.mixed_gc(&mut os); }
            }
            prop_assert_eq!(
                jvm.committed(),
                jvm.young_used() + jvm.pinned() + jvm.garbage() + jvm.free()
            );
            prop_assert_eq!(os.rss(pid), jvm.committed());
            prop_assert!(jvm.committed() <= jvm.config().max_heap);
        }
    }
}

/// One random work packet: a bucket index, the bytes it will reclaim, a
/// seed for picking dependencies, and how many dependencies to attempt.
type PacketSpec = (usize, u64, u64, usize);

/// The synthetic reclamation context for packet-DAG properties: slot `i`
/// holds the bytes packet `i` reclaims, so the monolithic path is a plain
/// sum over the slots.
#[derive(Debug)]
struct Pool {
    slots: Vec<u64>,
}

/// Builds a scheduler holding the random DAG. Dependencies are resolved
/// against already-enqueued packets in the same or an earlier bucket (the
/// only edges the scheduler accepts), picked deterministically from the
/// spec's seed.
fn build_dag(specs: &[PacketSpec], pid: Pid, cfg: SchedulerConfig) -> ReclaimScheduler<Pool> {
    const SHAPES: [(PacketKind, PacketBucket); 3] = [
        (PacketKind::EvictSlabs, PacketBucket::Prepare),
        (PacketKind::GcYoung, PacketBucket::Collect),
        (PacketKind::Madvise, PacketBucket::Release),
    ];
    let mut sched = ReclaimScheduler::new(pid, cfg);
    let mut buckets: Vec<PacketBucket> = Vec::new();
    for (i, &(shape, _bytes, seed, ndeps)) in specs.iter().enumerate() {
        let (kind, bucket) = SHAPES[shape];
        let candidates: Vec<u64> = buckets
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b <= bucket)
            .map(|(j, _)| j as u64)
            .collect();
        let mut deps: Vec<u64> = (0..ndeps)
            .filter_map(|k| {
                candidates
                    .get((seed as usize).wrapping_add(k * 7) % candidates.len().max(1))
                    .copied()
            })
            .collect();
        deps.sort_unstable();
        deps.dedup();
        sched.add_in(
            kind,
            bucket,
            &deps,
            move |p: &Pool| p.slots[i],
            move |p: &mut Pool, _os: &mut Kernel| {
                let b = std::mem::take(&mut p.slots[i]);
                PacketOutcome::freed(b, SimDuration::from_millis(1))
            },
        );
        buckets.push(bucket);
    }
    sched
}

fn packet_violations(trace: &m3::sim::trace::TraceLog) -> Vec<m3::oracle::Violation> {
    m3::oracle::Oracle::paper(None)
        .check(trace)
        .into_iter()
        .filter(|v| v.invariant.starts_with("reclaim.packet"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any random packet DAG, drained with any worker count, satisfies the
    /// `reclaim.packet.*` invariants, runs every packet exactly once,
    /// conserves bytes against the monolithic sum — and is observably
    /// identical (stats, outcome, trace) to the single-worker drain.
    #[test]
    fn random_packet_dags_never_violate_ordering(
        specs in proptest::collection::vec(
            (0usize..3, 0u64..(64 * MIB), 0u64..1_000_000_000, 0usize..3),
            1..24,
        ),
        workers in 1usize..9,
    ) {
        let monolithic: u64 = specs.iter().map(|s| s.1).sum();
        let run = |w: usize| {
            let mut os = Kernel::new(KernelConfig::with_total(GIB));
            let pid = os.spawn("dag");
            let mut pool = Pool {
                slots: specs.iter().map(|s| s.1).collect(),
            };
            let cfg = SchedulerConfig {
                workers: Some(w),
                ablate_bucket_order: false,
            };
            let res = build_dag(&specs, pid, cfg).drain(&mut pool, &mut os);
            (res, pool, os)
        };
        let (res, pool, os) = run(workers);
        prop_assert!(pool.slots.iter().all(|&s| s == 0), "every packet must run");
        prop_assert_eq!(res.stats.records.len(), specs.len());
        prop_assert_eq!(
            res.stats.bytes(), monolithic,
            "packet bytes must sum to the monolithic path's total"
        );
        let violations = packet_violations(&os.trace);
        prop_assert!(violations.is_empty(), "{violations:#?}");
        // The worker count must change nothing observable.
        let (res1, _, os1) = run(1);
        prop_assert_eq!(&res.stats, &res1.stats);
        prop_assert_eq!(res.outcome, res1.outcome);
        prop_assert!(
            os.trace.events().eq(os1.trace.events()),
            "traces must be identical for {workers} workers vs 1"
        );
    }

    /// Reverse-bucket draining of a DAG with a guaranteed Prepare→Release
    /// dependency edge is caught by both the bucket and the dependency
    /// invariants — for every worker count. Even misordered, the drain
    /// still runs everything, so bytes stay conserved: ordering and
    /// conservation are independent failure axes.
    #[test]
    fn random_packet_dag_ablation_is_caught(
        specs in proptest::collection::vec(
            (0usize..3, 0u64..(64 * MIB), 0u64..1_000_000_000, 0usize..3),
            0..16,
        ),
        workers in 1usize..9,
    ) {
        let mut os = Kernel::new(KernelConfig::with_total(GIB));
        let pid = os.spawn("dag");
        let n = specs.len();
        let mut slots: Vec<u64> = specs.iter().map(|s| s.1).collect();
        slots.push(MIB);
        slots.push(MIB);
        let mut pool = Pool { slots };
        let cfg = SchedulerConfig {
            workers: Some(workers),
            ablate_bucket_order: true,
        };
        let mut sched = build_dag(&specs, pid, cfg);
        let prep = sched.add_in(
            PacketKind::EvictSlabs,
            PacketBucket::Prepare,
            &[],
            move |p: &Pool| p.slots[n],
            move |p: &mut Pool, _os: &mut Kernel| {
                PacketOutcome::freed(std::mem::take(&mut p.slots[n]), SimDuration::from_millis(1))
            },
        );
        sched.add_in(
            PacketKind::Madvise,
            PacketBucket::Release,
            &[prep],
            move |p: &Pool| p.slots[n + 1],
            move |p: &mut Pool, _os: &mut Kernel| {
                PacketOutcome::freed(
                    std::mem::take(&mut p.slots[n + 1]),
                    SimDuration::from_millis(1),
                )
            },
        );
        let monolithic: u64 = specs.iter().map(|s| s.1).sum::<u64>() + 2 * MIB;
        let res = sched.drain(&mut pool, &mut os);
        prop_assert_eq!(res.stats.bytes(), monolithic, "ablation misorders, it must not lose bytes");
        let violations = packet_violations(&os.trace);
        prop_assert!(
            violations.iter().any(|v| v.invariant == "reclaim.packet.bucket"),
            "reverse-bucket drain must trip the bucket invariant, got {violations:#?}"
        );
        prop_assert!(
            violations.iter().any(|v| v.invariant == "reclaim.packet.deps"),
            "ignored dependency edges must trip the deps invariant, got {violations:#?}"
        );
    }
}

/// Strategy for a random small evaluation workload: 1–3 apps drawn from the
/// paper's letters, with a uniform inter-job delay.
fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (proptest::collection::vec(0usize..4, 1..4), 0usize..4).prop_map(|(letters, delay_idx)| {
        let codes: String = letters.iter().map(|&i| ['M', 'P', 'W', 'C'][i]).collect();
        Scenario::uniform(&codes, [0u64, 60, 180, 300][delay_idx])
    })
}

/// Strategy for a small arbitrary fault plan over a 2-app schedule: app
/// events of every kind, an optional lossy/laggy signal bus, and an
/// optional meminfo outage.
fn fault_plan_strategy() -> impl Strategy<Value = FaultPlan> {
    let event = (0u64..200, 0usize..3, 0u8..3, 0u32..100).prop_map(|(at_s, target, kind, pct)| {
        let at = SimDuration::from_secs(at_s);
        let kind = match kind {
            0 => FaultKind::Crash,
            1 => FaultKind::Unresponsive {
                reclaim_fraction: f64::from(pct) / 100.0,
            },
            _ => FaultKind::Leak {
                bytes_per_sec: u64::from(pct) * MIB / 8,
            },
        };
        FaultEvent { at, target, kind }
    });
    (
        proptest::collection::vec(event, 0..4),
        0u8..3,
        0u32..100,
        0u64..4,
        (0u64..200, 0u64..30),
    )
        .prop_map(
            |(events, bus_kind, bus_pct, seed, (outage_at, outage_len))| {
                let mut plan = FaultPlan::none();
                plan.events = events;
                plan.signal_faults = match bus_kind {
                    0 => None,
                    1 => Some(SignalFaultConfig::lossy(seed, f64::from(bus_pct) / 200.0)),
                    _ => Some(SignalFaultConfig::laggy(
                        seed,
                        f64::from(bus_pct) / 200.0,
                        SimDuration::from_secs(2),
                    )),
                };
                if outage_len > 0 {
                    plan = plan.with_poll_outage(
                        SimDuration::from_secs(outage_at),
                        SimDuration::from_secs(outage_len),
                    );
                }
                plan
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every random workload's trace replays through the conformance
    /// oracle with zero violations, under M3 and under a stock system.
    #[test]
    fn random_scenarios_are_conformant(
        scenario in scenario_strategy(),
        m3_mode in proptest::bool::ANY,
    ) {
        let mut cfg = MachineConfig::m3_64gb();
        cfg.max_time = SimDuration::from_secs(40_000);
        let setting = if m3_mode {
            Setting::m3(scenario.len())
        } else {
            Setting::default_for(scenario.len())
        };
        let out = run_scenario(&scenario, &setting, cfg);
        prop_assert!(!out.run.trace.is_empty(), "trace capture is on by default");
        prop_assert!(
            out.run.violations.is_empty(),
            "conformance violations in {} ({:?} mode): {:#?}",
            scenario.name, setting.kind, out.run.violations
        );
    }

    /// Fault-injected runs may only violate paper invariants with fault
    /// provenance: when the degradation report shows the plan touched
    /// nothing (no applied faults, no bus loss/lag, no degraded polls),
    /// the trace must replay violation-free.
    #[test]
    fn fault_plans_only_violate_with_provenance(plan in fault_plan_strategy()) {
        let scenario = Scenario::uniform("MM", 60);
        let setting = Setting::m3(scenario.len());
        let mut cfg = MachineConfig::m3_64gb();
        cfg.max_time = SimDuration::from_secs(40_000);
        let out = run_scenario_with_faults(&scenario, &setting, cfg, &plan);
        let d = &out.run.degradation;
        let untouched = d.faults_applied == 0
            && d.signals_dropped == 0
            && d.signals_delayed == 0
            && d.degraded_polls == 0;
        if untouched {
            prop_assert!(
                out.run.violations.is_empty(),
                "violations without any applied fault (plan {plan:?}): {:#?}",
                out.run.violations
            );
        }
        // Whatever the plan did, the oracle is deterministic: re-checking
        // the same trace yields the same verdict.
        let recheck = m3::oracle::Oracle::paper(cfg.with_setting(&setting).monitor)
            .check(&out.run.trace);
        prop_assert_eq!(&recheck, &out.run.violations);
    }
}
