//! Chaos suite: fault-injection plans against the world loop, and the
//! monitor's hardening against them (DESIGN.md §10).
//!
//! The acceptance bar: every fault plan runs to completion
//! deterministically, unapplied chaos is accounted rather than dropped,
//! the reclamation watchdog escalates a non-cooperating participant to a
//! kill with recovery below top, and a plan is part of the run
//! memoization key.

use std::sync::Arc;

use m3::framework::{JobKind, JobSpec, SparkConfig};
use m3::prelude::*;
use m3::runtime::JvmConfig;
use m3::workloads::apps::AppBlueprint;
use m3::workloads::faults::{FaultKind, UnappliedReason};
use m3::workloads::machine::ScheduleEntry;
use m3::workloads::run_scenario_cached_faulted;
use m3::workloads::settings::M3_HEAP_CEILING;
use proptest::prelude::*;

const MIB: u64 = 1024 * 1024;

/// A small k-means-shaped job with a `ws_gib`-GiB working set; `iters`
/// stretches the runtime so faults scheduled minutes in still find the
/// app alive.
fn tiny_job(ws_gib: u64, iters: u32) -> JobSpec {
    JobSpec {
        kind: JobKind::KMeans,
        name: "tiny".into(),
        input_bytes: ws_gib * GIB / 2,
        working_set: ws_gib * GIB,
        iterations: iters,
        compute_ms_per_block: 50,
        churn_per_block: 64 * MIB,
        min_heap: 0,
        churn_survival: 0.08,
        exec_demand: 0,
    }
}

/// An M3-participating Spark executor entry.
fn m3_entry(name: &str, start_s: u64, ws_gib: u64, iters: u32) -> ScheduleEntry {
    (
        name.into(),
        SimDuration::from_secs(start_s),
        AppBlueprint::Spark {
            jvm: JvmConfig::m3(M3_HEAP_CEILING),
            spark: SparkConfig::m3(),
            job: tiny_job(ws_gib, iters),
        },
    )
}

/// An 8-GiB M3 node (scaled monitor: top ≈ 7.75 GiB), small enough that
/// chaos scenarios stress the monitor without hour-long simulations.
fn small_m3_cfg() -> MachineConfig {
    let mut cfg = MachineConfig::scaled(8 * GIB, true);
    cfg.sample_period = None;
    cfg.max_time = SimDuration::from_secs(40_000);
    cfg
}

fn run_bytes(cfg: MachineConfig, schedule: Vec<ScheduleEntry>, plan: &FaultPlan) -> String {
    let res = Machine::new(cfg).run_with_faults(schedule, plan);
    serde_json::to_string(&res).expect("serialize run")
}

/// Representative built-in plans covering every fault class.
fn builtin_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::none()),
        (
            "crash",
            FaultPlan::none().with_crash(SimDuration::from_secs(90), 0),
        ),
        (
            "unresponsive",
            FaultPlan::none().with_unresponsive(SimDuration::from_secs(60), 1, 0.0),
        ),
        (
            "leak",
            FaultPlan::none().with_leak(SimDuration::from_secs(30), 0, 16 * MIB),
        ),
        (
            "lossy-bus",
            FaultPlan::none().with_signal_faults(SignalFaultConfig::lossy(41, 0.3)),
        ),
        (
            "laggy-bus",
            FaultPlan::none().with_signal_faults(SignalFaultConfig::laggy(
                42,
                0.5,
                SimDuration::from_secs(3),
            )),
        ),
        (
            "poll-outage",
            FaultPlan::none()
                .with_poll_outage(SimDuration::from_secs(50), SimDuration::from_secs(20)),
        ),
        (
            "churn",
            FaultPlan::none().with_churn(
                SimDuration::from_secs(40),
                GIB / 2,
                SimDuration::from_secs(60),
            ),
        ),
        (
            "everything",
            FaultPlan::none()
                .with_crash(SimDuration::from_secs(200), 0)
                .with_unresponsive(SimDuration::from_secs(80), 1, 0.25)
                .with_leak(SimDuration::from_secs(50), 1, 8 * MIB)
                .with_signal_faults(SignalFaultConfig::lossy(7, 0.2))
                .with_poll_outage(SimDuration::from_secs(100), SimDuration::from_secs(15))
                .with_churn(
                    SimDuration::from_secs(70),
                    GIB / 4,
                    SimDuration::from_secs(30),
                ),
        ),
    ]
}

#[test]
fn builtin_fault_plans_run_to_completion_deterministically() {
    for (name, plan) in builtin_plans() {
        let schedule = || vec![m3_entry("a", 0, 2, 250), m3_entry("b", 20, 2, 250)];
        let a = run_bytes(small_m3_cfg(), schedule(), &plan);
        let b = run_bytes(small_m3_cfg(), schedule(), &plan);
        assert_eq!(a, b, "plan `{name}` must replay bit-identically");
        let res: m3::workloads::RunResult = serde_json::from_str(&a).expect("round-trip");
        assert!(
            res.end.saturating_since(SimTime::ZERO) < small_m3_cfg().max_time,
            "plan `{name}` must terminate before the time cap, ended at {}",
            res.end
        );
        assert_eq!(res.degradation.faults_injected, plan.injected_count());
    }
}

/// The tentpole acceptance scenario: a participant that keeps handling
/// signals but returns nothing must be escalated by the reclamation
/// watchdog and ultimately killed, after which the system recovers below
/// top and the cooperating app completes.
#[test]
fn watchdog_escalates_unresponsive_participant_to_kill() {
    // The cooperator starts first (oldest); the hog is newest, so the
    // paper's newest-first ordering already targets it — the watchdog's
    // deprioritization is covered at the unit level in m3-core.
    let schedule = vec![m3_entry("coop", 0, 2, 500), m3_entry("hog", 60, 5, 500)];
    // The hog goes fully non-cooperative shortly after starting: every
    // handled signal "frees" pages that never reach the OS, so its
    // footprint ratchets past top (7.75 GiB). A short kill timeout lets
    // the monitor escalate well before the OOM killer's 10-GiB bound.
    let mut cfg = small_m3_cfg();
    cfg.monitor.as_mut().expect("m3 node").kill_timeout = SimDuration::from_secs(10);
    let plan = FaultPlan::none().with_unresponsive(SimDuration::from_secs(100), 1, 0.0);
    let res = Machine::new(cfg).run_with_faults(schedule, &plan);

    let hog = &res.apps[1];
    assert!(
        hog.killed,
        "the monitor must escalate the non-cooperator to a kill: {hog:?}"
    );
    let coop = &res.apps[0];
    assert!(
        coop.finished.is_some() && !coop.killed,
        "the cooperating participant must survive and complete: {coop:?}"
    );

    let d = &res.degradation;
    assert_eq!(d.faults_applied, 1);
    assert!(
        d.watchdog_escalations >= 1,
        "the watchdog must have escalated: {d:?}"
    );
    assert!(
        d.watchdog_resignals >= 1,
        "escalated participants are re-signalled with backoff: {d:?}"
    );
    // The kill timeout (10 polls above top) demonstrably elapsed before
    // the monitor killed its way back below top.
    assert!(
        d.polls_above_top >= 10 && d.time_above_top >= SimDuration::from_secs(10),
        "the system must have lingered above top for the kill timeout: {d:?}"
    );
    // Recovery: the fault drove a real above-top excursion and the system
    // returned below the high threshold, measured in polls. (The recorded
    // time is the *first* excursion-and-return; the kill resolves the
    // final one, witnessed by `polls_above_top` and `kills` instead.)
    assert_eq!(d.recoveries.len(), 1);
    let recovered = d.recoveries[0]
        .recovered_after_polls
        .unwrap_or_else(|| panic!("the system must return below top after the kill: {d:?}"));
    assert!(recovered >= 1, "a real excursion must have been measured");
    let stats = res.monitor_stats.expect("monitor ran");
    assert!(stats.kills >= 1);
}

#[test]
fn unapplied_chaos_is_recorded_not_dropped() {
    let schedule = vec![m3_entry("a", 0, 2, 100), m3_entry("late", 2_000, 1, 2)];
    let plan = FaultPlan::none()
        // Fires before `late` starts.
        .with_crash(SimDuration::from_secs(10), 1)
        // Kills `a`...
        .with_crash(SimDuration::from_secs(60), 0)
        // ...so this second crash of `a` finds it already dead.
        .with_crash(SimDuration::from_secs(90), 0)
        // No such schedule index.
        .with_crash(SimDuration::from_secs(5), 99)
        // Far beyond the run's natural end.
        .with_leak(SimDuration::from_secs(35_000), 0, MIB);
    let res = Machine::new(small_m3_cfg()).run_with_faults(schedule, &plan);
    let d = &res.degradation;
    assert_eq!(d.faults_injected, 5);
    assert_eq!(d.faults_applied, 1, "only the 60-s crash applies");
    let reasons: Vec<UnappliedReason> = d.faults_unapplied.iter().map(|u| u.reason).collect();
    assert!(reasons.contains(&UnappliedReason::NotStarted));
    assert!(reasons.contains(&UnappliedReason::AlreadyDone));
    assert!(reasons.contains(&UnappliedReason::NoSuchApp));
    assert!(reasons.contains(&UnappliedReason::RunEnded));
    assert_eq!(
        d.faults_applied + d.faults_unapplied.len() as u64,
        d.faults_injected,
        "every injected app event is accounted exactly once: {d:?}"
    );
}

#[test]
fn registration_churn_applies_and_the_run_is_unharmed() {
    let schedule = || vec![m3_entry("a", 0, 2, 150)];
    let plan = FaultPlan::none()
        .with_churn(
            SimDuration::from_secs(30),
            GIB / 2,
            SimDuration::from_secs(45),
        )
        .with_churn(
            SimDuration::from_secs(90),
            GIB / 4,
            SimDuration::from_secs(20),
        );
    let res = Machine::new(small_m3_cfg()).run_with_faults(schedule(), &plan);
    assert!(res.all_finished(), "churn bystanders must not hurt the app");
    assert_eq!(res.degradation.faults_applied, 2);
    // The ghost/bystander pid dance is deterministic too.
    let a = run_bytes(small_m3_cfg(), schedule(), &plan);
    let b = run_bytes(small_m3_cfg(), schedule(), &plan);
    assert_eq!(a, b);
}

#[test]
fn degraded_polling_is_counted_during_outages() {
    let schedule = vec![m3_entry("a", 0, 2, 50)];
    let plan =
        FaultPlan::none().with_poll_outage(SimDuration::from_secs(20), SimDuration::from_secs(10));
    let res = Machine::new(small_m3_cfg()).run_with_faults(schedule, &plan);
    assert!(res.all_finished());
    let d = &res.degradation;
    assert!(
        d.degraded_polls >= 9,
        "a 10-s outage at 1-s polling must produce ~10 degraded polls: {d:?}"
    );
}

#[test]
fn fault_plan_is_part_of_the_memo_key() {
    let scenario = Scenario::uniform("M", 0);
    let setting = Setting::m3(1);
    let cfg = MachineConfig::stock_64gb();
    let plain = FaultPlan::none();
    let faulted = FaultPlan::none().with_crash(SimDuration::from_secs(60), 0);

    let a = run_scenario_cached_faulted(&scenario, &setting, cfg, &plain);
    let b = run_scenario_cached_faulted(&scenario, &setting, cfg, &faulted);
    assert!(
        !Arc::ptr_eq(&a, &b),
        "runs differing only in the fault plan must not share a cache entry"
    );
    // Same plan → same entry; and the faulted run really is different.
    let a2 = run_scenario_cached_faulted(&scenario, &setting, cfg, &plain);
    let b2 = run_scenario_cached_faulted(&scenario, &setting, cfg, &faulted);
    assert!(Arc::ptr_eq(&a, &a2));
    assert!(Arc::ptr_eq(&b, &b2));
    assert!(!b.run.apps[0].killed || !a.run.apps[0].killed || a.run.end != b.run.end);
}

/// Strategy for a small arbitrary fault plan over a 2-app schedule: app
/// events of every kind, an optional lossy/laggy bus, and an optional poll
/// outage. (Churn is covered deterministically above so the
/// applied+unapplied accounting below stays exact.)
fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    let event = (0u64..200, 0usize..3, 0u8..3, 0u32..100).prop_map(|(at_s, target, kind, pct)| {
        let at = SimDuration::from_secs(at_s);
        match kind {
            0 => (at, target, FaultKind::Crash),
            1 => (
                at,
                target,
                FaultKind::Unresponsive {
                    reclaim_fraction: f64::from(pct) / 100.0,
                },
            ),
            _ => (
                at,
                target,
                FaultKind::Leak {
                    bytes_per_sec: u64::from(pct) * MIB / 8,
                },
            ),
        }
    });
    (
        proptest::collection::vec(event, 0..4),
        0u8..3,
        0u32..100,
        0u64..2,
        (0u64..200, 0u64..30),
    )
        .prop_map(
            |(events, bus_kind, bus_pct, seed, (outage_at, outage_len))| {
                let mut plan = FaultPlan::none();
                for (at, target, kind) in events {
                    plan.events
                        .push(m3::workloads::FaultEvent { at, target, kind });
                }
                plan.signal_faults = match bus_kind {
                    0 => None,
                    1 => Some(SignalFaultConfig::lossy(seed, f64::from(bus_pct) / 200.0)),
                    _ => Some(SignalFaultConfig::laggy(
                        seed,
                        f64::from(bus_pct) / 200.0,
                        SimDuration::from_secs(2),
                    )),
                };
                if outage_len > 0 {
                    plan = plan.with_poll_outage(
                        SimDuration::from_secs(outage_at),
                        SimDuration::from_secs(outage_len),
                    );
                }
                plan
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated plan terminates before the time cap, accounts every
    /// app event exactly once, closes every recovery, and replays
    /// bit-identically.
    #[test]
    fn arbitrary_plans_terminate_account_and_replay(plan in plan_strategy()) {
        let schedule = || vec![m3_entry("a", 0, 2, 150), m3_entry("b", 30, 2, 150)];
        let bytes = run_bytes(small_m3_cfg(), schedule(), &plan);
        let res: m3::workloads::RunResult =
            serde_json::from_str(&bytes).expect("round-trip");

        // Termination: the fault plan cannot wedge the world loop.
        prop_assert!(
            res.end.saturating_since(SimTime::ZERO) < small_m3_cfg().max_time,
            "run must end before the cap, ended at {}", res.end
        );

        // Accounting: applied + unapplied covers exactly the app events.
        let d = &res.degradation;
        prop_assert_eq!(d.faults_injected, plan.injected_count());
        prop_assert_eq!(
            d.faults_applied + d.faults_unapplied.len() as u64,
            d.faults_injected
        );

        // Containment: the monitor either kept/returned the system below
        // top or killed its way back (recoveries all close, one per
        // applied fault).
        prop_assert_eq!(d.recoveries.len() as u64, d.faults_applied);
        let kills = res.monitor_stats.as_ref().map_or(0, |s| s.kills);
        for r in &d.recoveries {
            prop_assert!(
                r.recovered_after_polls.is_some() || kills > 0,
                "unrecovered fault without any kill reported: {:?}", d
            );
        }

        // Determinism: an identical replay is bit-identical.
        prop_assert_eq!(&bytes, &run_bytes(small_m3_cfg(), schedule(), &plan));
    }
}
