//! Determinism regression tests for the experiment harness.
//!
//! The parallel harness and the world-loop fast path are only sound if a
//! run is a pure function of `(scenario, setting, machine_cfg)`. These
//! tests pin that down at the byte level: the serialized `RunResult` must
//! be identical whether the run executes serially, through the parallel
//! harness at 1/4/8 workers (twice each), or with the fast-path clock
//! jumping disabled.

use m3::os::SignalFaultConfig;
use m3::sim::clock::SimDuration;
use m3::sim::units::MIB;
use m3::workloads::faults::FaultPlan;
use m3::workloads::machine::MachineConfig;
use m3::workloads::runner::{run_scenario, run_scenario_with_faults};
use m3::workloads::scenario::Scenario;
use m3::workloads::settings::Setting;
use m3::workloads::{parallel_map, run_scenarios_parallel_with};

/// A small but representative job mix: stock and M3 regimes, solo and
/// staggered multi-app schedules, analytics and cache kinds — with profile
/// sampling on, so the serialized result covers every `RunResult` field.
fn jobs() -> Vec<(Scenario, Setting, MachineConfig)> {
    let cfg = MachineConfig::stock_64gb();
    vec![
        (Scenario::uniform("M", 0), Setting::default_for(1), cfg),
        (Scenario::uniform("M", 0), Setting::m3(1), cfg),
        (Scenario::uniform("MM", 60), Setting::m3(2), cfg),
        (Scenario::uniform("CM", 120), Setting::m3(2), cfg),
    ]
}

fn run_bytes(scenario: &Scenario, setting: &Setting, cfg: MachineConfig) -> String {
    serde_json::to_string(&run_scenario(scenario, setting, cfg).run).expect("serialize run")
}

#[test]
fn fast_path_is_bit_identical_to_tick_by_tick() {
    for (scenario, setting, cfg) in jobs() {
        let mut slow = cfg;
        slow.fast_path = false;
        let mut fast = cfg;
        fast.fast_path = true;
        assert_eq!(
            run_bytes(&scenario, &setting, slow),
            run_bytes(&scenario, &setting, fast),
            "fast path diverged on {} under {:?}",
            scenario.name,
            setting.kind
        );
    }
}

#[test]
fn parallel_harness_matches_serial_at_1_4_8_workers() {
    let jobs = jobs();
    let reference: Vec<String> = jobs
        .iter()
        .map(|(s, set, cfg)| run_bytes(s, set, *cfg))
        .collect();
    for workers in [1, 4, 8] {
        for rep in 0..2 {
            let outs = run_scenarios_parallel_with(jobs.clone(), workers);
            assert_eq!(outs.len(), jobs.len());
            for (i, out) in outs.iter().enumerate() {
                let bytes = serde_json::to_string(&out.run).expect("serialize run");
                assert_eq!(
                    reference[i], bytes,
                    "parallel run diverged: workers={workers} rep={rep} job={i}"
                );
            }
        }
    }
}

#[test]
fn uncached_parallel_fanout_matches_serial() {
    // `run_scenarios_parallel_with` may answer repeats from the memo cache;
    // this variant forces a fresh simulation per job on every worker count,
    // proving the fan-out itself (not just the cache) is deterministic.
    let jobs = jobs();
    let reference: Vec<String> = jobs
        .iter()
        .map(|(s, set, cfg)| run_bytes(s, set, *cfg))
        .collect();
    for workers in [1, 4, 8] {
        let bytes = parallel_map(jobs.clone(), workers, |(s, set, cfg)| {
            run_bytes(&s, &set, cfg)
        });
        assert_eq!(
            reference, bytes,
            "fresh fan-out diverged at {workers} workers"
        );
    }
}

#[test]
fn cache_trace_sweep_is_deterministic_across_workers_and_repeats() {
    // The BENCH_cache_trace scenario at CI-smoke scale: every
    // (pattern, policy) point must serialize byte-identically whether the
    // sweep runs serially, fanned out on 1 or 8 workers, or answered from
    // the memo cache on a repeat invocation (M3_JOBS only changes worker
    // count, never results).
    use m3::prelude::{run_cache_trace, run_cache_trace_cached, CachePolicy};
    use m3::prelude::{TraceWorkload, TrafficPattern};

    let patterns = [
        TrafficPattern::Burst,
        TrafficPattern::Diurnal,
        TrafficPattern::HotKeyShift,
    ];
    let points: Vec<(TraceWorkload, CachePolicy)> = patterns
        .iter()
        .flat_map(|&p| {
            let twl = TraceWorkload {
                key_space: 40_000,
                total_ops: 250_000,
                phase_ops: 62_500,
                ..TraceWorkload::smoke(p)
            };
            CachePolicy::ALL.map(|policy| (twl, policy))
        })
        .collect();
    let reference: Vec<String> = points
        .iter()
        .map(|(twl, policy)| {
            serde_json::to_string(&run_cache_trace(*twl, *policy)).expect("serialize outcome")
        })
        .collect();
    for workers in [1, 8] {
        let bytes = parallel_map(points.clone(), workers, |(twl, policy)| {
            serde_json::to_string(&run_cache_trace(twl, policy)).expect("serialize outcome")
        });
        assert_eq!(
            reference, bytes,
            "cache-trace fan-out diverged at {workers} workers"
        );
    }
    // Memoized repeats: the second lookup is answered from the cache and
    // must still match the fresh serial reference byte for byte.
    for rep in 0..2 {
        for (i, (twl, policy)) in points.iter().enumerate() {
            let cached = run_cache_trace_cached(*twl, *policy);
            let bytes = serde_json::to_string(&*cached).expect("serialize outcome");
            assert_eq!(
                reference[i], bytes,
                "memoized cache-trace run diverged: rep={rep} point={i}"
            );
        }
    }
}

#[test]
fn mixed_criticality_colocation_is_deterministic_across_workers() {
    // The criticality machinery (class-aware kill ordering, fleet
    // preemption, SLO accounting) must not perturb determinism: the
    // memcached+Spark co-location fleet serializes byte-identically whether
    // node simulations run on one worker or eight, classified and blind.
    use m3::prelude::*;
    use m3::workloads::scenario::mixed_criticality_scenario;

    let scenario = mixed_criticality_scenario(4, 3_600_000);
    let setting = Setting::m3(scenario.len());
    let mut cfg = MachineConfig::stock_64gb();
    cfg.sample_period = None;
    cfg.max_time = SimDuration::from_secs(40_000);
    for blind in [false, true] {
        let mut fleet = FleetConfig::homogeneous(2, 64 * GIB);
        fleet.rebalance_checks = 10;
        fleet.crit_blind = blind;
        let a = run_fleet_with_workers(&scenario, &setting, cfg, &fleet, 1);
        let b = run_fleet_with_workers(&scenario, &setting, cfg, &fleet, 8);
        assert_eq!(
            serde_json::to_string(&a).expect("serialize fleet"),
            serde_json::to_string(&b).expect("serialize fleet"),
            "worker count changed the mixed-criticality result (blind={blind})"
        );
    }
}

#[test]
fn packetized_reclamation_is_identical_for_any_m3_jobs() {
    // The packet scheduler's parallel costing pass is the only `M3_JOBS`
    // consumer inside a single simulation; packet mutations commit serially
    // in id order, so the fig6 (MMW 180) and fig7 (CMW 180) profile
    // scenarios — plus a chaos run over the full fault-injection surface —
    // must serialize byte-identically at 1 and at 8 workers.
    let mut cfg = MachineConfig::m3_64gb();
    cfg.max_time = SimDuration::from_secs(40_000);
    let scenarios = [Scenario::uniform("MMW", 180), Scenario::uniform("CMW", 180)];
    let collect = || -> Vec<String> {
        scenarios
            .iter()
            .flat_map(|s| {
                let setting = Setting::m3(s.len());
                let clean = run_scenario(s, &setting, cfg);
                assert!(
                    clean.run.trace.count("reclaim.packet.enqueue") > 0,
                    "{}: reclamation must flow through packets",
                    s.name
                );
                [
                    serde_json::to_string(&clean.run).expect("serialize run"),
                    chaos_bytes(s, &setting, cfg),
                ]
            })
            .collect()
    };
    let with_jobs = |jobs: &str, f: &dyn Fn() -> Vec<String>| -> Vec<String> {
        let old = std::env::var("M3_JOBS").ok();
        std::env::set_var("M3_JOBS", jobs);
        let out = f();
        match old {
            Some(v) => std::env::set_var("M3_JOBS", v),
            None => std::env::remove_var("M3_JOBS"),
        }
        out
    };
    let one = with_jobs("1", &collect);
    let eight = with_jobs("8", &collect);
    assert_eq!(
        one, eight,
        "M3_JOBS changed a packetized reclamation result"
    );
}

/// A fault plan touching every injection channel: app faults, a lossy and
/// laggy signal bus, and a monitor poll outage.
fn chaos_plan() -> FaultPlan {
    FaultPlan::none()
        .with_unresponsive(SimDuration::from_secs(90), 0, 0.25)
        .with_leak(SimDuration::from_secs(60), 1, 8 * MIB)
        .with_signal_faults(SignalFaultConfig {
            drop_prob: 0.2,
            delay_prob: 0.3,
            delay: SimDuration::from_secs(2),
            seed: 77,
        })
        .with_poll_outage(SimDuration::from_secs(120), SimDuration::from_secs(30))
}

fn chaos_bytes(scenario: &Scenario, setting: &Setting, cfg: MachineConfig) -> String {
    let plan = chaos_plan();
    serde_json::to_string(&run_scenario_with_faults(scenario, setting, cfg, &plan).run)
        .expect("serialize run")
}

#[test]
fn chaos_runs_are_deterministic_across_paths_and_workers() {
    // Fault injection must not perturb determinism: the fast path has to
    // wake for fault events exactly when the tick-by-tick loop applies
    // them, and the seeded lossy bus must replay the same drop/delay
    // sequence on every worker.
    let jobs = jobs();
    let reference: Vec<String> = jobs
        .iter()
        .map(|(s, set, cfg)| {
            let mut slow = *cfg;
            slow.fast_path = false;
            chaos_bytes(s, set, slow)
        })
        .collect();
    for (i, (s, set, cfg)) in jobs.iter().enumerate() {
        let mut fast = *cfg;
        fast.fast_path = true;
        assert_eq!(
            reference[i],
            chaos_bytes(s, set, fast),
            "chaos fast path diverged on {} under {:?}",
            s.name,
            set.kind
        );
    }
    for workers in [1, 4] {
        let bytes = parallel_map(jobs.clone(), workers, |(s, set, cfg)| {
            chaos_bytes(&s, &set, cfg)
        });
        assert_eq!(
            reference, bytes,
            "chaos fan-out diverged at {workers} workers"
        );
    }
}
