//! Property-based tests of the fleet scheduler's placement invariants.
//!
//! Over randomly generated workloads and fleet shapes (heterogeneous node
//! sizes included): every job is placed exactly once or explicitly
//! resolved, admitted placements never exceed the target node's top of
//! memory, and identical inputs produce bit-identical placement logs.

use m3::prelude::*;
use m3::sim::trace::TraceData;
use m3::workloads::fleet::demand_estimate;
use proptest::prelude::*;

fn machine() -> MachineConfig {
    let mut cfg = MachineConfig::stock_64gb();
    cfg.sample_period = None;
    cfg.max_time = SimDuration::from_secs(40_000);
    cfg
}

/// Two to four jobs drawn from k-means / PageRank / Go-Cache, arriving at a
/// uniform delay. (n-weight is left to the integration suite: its long
/// runtimes add minutes per case without exercising different code paths.)
fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (proptest::collection::vec(0usize..3, 2..5), 0usize..4).prop_map(|(kinds, delay_idx)| {
        let codes: String = kinds.iter().map(|&k| ['M', 'P', 'C'][k]).collect();
        Scenario::uniform(&codes, [0u64, 60, 180, 300][delay_idx])
    })
}

/// Two to four nodes, each either a paper-sized 64-GB worker or a cramped
/// 32-GB one that cannot admit the larger jobs — so deferral and give-up
/// paths are reached, not just the happy path.
fn fleet_strategy() -> impl Strategy<Value = FleetConfig> {
    (
        proptest::collection::vec(proptest::bool::ANY, 2..5),
        0u32..3,
        0u32..4,
    )
        .prop_map(|(small, max_defers, checks)| {
            let mut fleet = FleetConfig::homogeneous(small.len(), 64 * GIB);
            for (spec, small) in fleet.nodes.iter_mut().zip(&small) {
                if *small {
                    spec.phys_total = 32 * GIB;
                }
            }
            // At least one node a job of any kind fits on.
            fleet.nodes[0].phys_total = 64 * GIB;
            fleet.max_defers = max_defers;
            fleet.defer_interval = SimDuration::from_secs(60);
            fleet.rebalance_checks = checks;
            fleet
        })
}

/// A random chaos plan: up to two node crashes, a flapping probe
/// endpoint, a delayed placement and maybe a scheduler restart, all over
/// the first few hundred nodes / first simulated hour so they actually
/// land on a 256-node fleet.
fn fleet_fault_plan_strategy() -> impl Strategy<Value = FleetFaultPlan> {
    (
        proptest::collection::vec((60u64..3_600, 0usize..256), 0..3),
        (
            proptest::bool::ANY,
            0usize..256,
            60u64..1_800,
            300u64..2_400,
        ),
        (proptest::bool::ANY, 0u64..4, 30u64..600),
        proptest::bool::ANY,
    )
        .prop_map(|(crashes, flap, delay, restart)| {
            let mut plan = FleetFaultPlan::none();
            for (at, node) in crashes {
                plan = plan.with_node_crash(SimDuration::from_secs(at), node);
            }
            if let (true, node, start, dur) = flap {
                plan = plan.with_flap(
                    node,
                    SimDuration::from_secs(start),
                    SimDuration::from_secs(dur),
                );
            }
            if let (true, job, d) = delay {
                plan = plan.with_placement_delay(job as usize, SimDuration::from_secs(d));
            }
            if restart {
                plan = plan.with_scheduler_restart(SimDuration::from_secs(1_500));
            }
            plan
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every submitted job is placed exactly once, or carries exactly one
    /// explicit give-up record — never both, never silently dropped.
    #[test]
    fn every_job_is_placed_once_or_explicitly_resolved(
        scenario in scenario_strategy(),
        fleet in fleet_strategy(),
    ) {
        let setting = Setting::m3(scenario.len());
        let res = run_fleet(&scenario, &setting, machine(), &fleet);
        prop_assert_eq!(res.jobs.len(), scenario.len());
        let mut places = vec![0u32; scenario.len()];
        let mut giveups = vec![0u32; scenario.len()];
        for e in res.trace.events() {
            match e.data {
                TraceData::FleetPlace { job, .. } => places[job as usize] += 1,
                TraceData::FleetGiveUp { job, .. } => giveups[job as usize] += 1,
                _ => {}
            }
        }
        for j in &res.jobs {
            if j.failure == Some(JobFailure::GaveUp) {
                prop_assert_eq!(places[j.job], 0, "job {} placed and given up", j.job);
                prop_assert_eq!(giveups[j.job], 1, "job {} lacks its give-up record", j.job);
                prop_assert!(j.node.is_none());
            } else {
                prop_assert_eq!(places[j.job], 1, "job {} not placed exactly once", j.job);
                prop_assert_eq!(giveups[j.job], 0);
                prop_assert!(j.node.is_some());
            }
        }
    }

    /// Under the default policy, no admitted placement pushes its target
    /// node past the top of memory: `used + demand <= top` at admission,
    /// straight from the recorded placement events.
    #[test]
    fn admitted_placements_fit_under_the_nodes_top(
        scenario in scenario_strategy(),
        fleet in fleet_strategy(),
    ) {
        let setting = Setting::m3(scenario.len());
        let res = run_fleet(&scenario, &setting, machine(), &fleet);
        for e in res.trace.events() {
            if let TraceData::FleetPlace { job, node, used, demand, top } = e.data {
                prop_assert!(
                    used.saturating_add(demand) <= top,
                    "job {job} on node {node}: used {used} + demand {demand} > top {top}"
                );
                let kind = scenario.apps[job as usize].0;
                prop_assert_eq!(demand, demand_estimate(kind));
            }
        }
        // The red-zone and grace invariants hold on every generated run.
        prop_assert!(res.violations.is_empty(), "violations: {:#?}", res.violations);
    }

    /// The worker count is a throughput knob, never a semantic one: a
    /// randomized 256-node heterogeneous fleet produces a byte-identical
    /// serialized [`FleetResult`] whether node simulations run on one
    /// worker or eight (`M3_JOBS=1` vs `M3_JOBS=8`).
    #[test]
    fn worker_count_never_changes_a_large_fleets_result(
        scenario in scenario_strategy(),
        small_stride in 2usize..6,
    ) {
        let mut fleet = FleetConfig::homogeneous(256, 64 * GIB);
        for (i, spec) in fleet.nodes.iter_mut().enumerate() {
            if i % small_stride == small_stride - 1 {
                spec.phys_total = 32 * GIB;
            }
        }
        let setting = Setting::m3(scenario.len());
        let a = run_fleet_with_workers(&scenario, &setting, machine(), &fleet, 1);
        let b = run_fleet_with_workers(&scenario, &setting, machine(), &fleet, 8);
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "worker count changed the fleet result"
        );
    }

    /// Chaos does not break the determinism contract: a randomized
    /// 256-node fleet under a random [`FleetFaultPlan`] produces a
    /// byte-identical serialized [`FleetResult`] — degradation report
    /// included — whether node simulations run on one worker or eight.
    #[test]
    fn chaos_is_deterministic_across_worker_counts(
        scenario in scenario_strategy(),
        small_stride in 2usize..6,
        plan in fleet_fault_plan_strategy(),
    ) {
        let mut fleet = FleetConfig::homogeneous(256, 64 * GIB);
        for (i, spec) in fleet.nodes.iter_mut().enumerate() {
            if i % small_stride == small_stride - 1 {
                spec.phys_total = 32 * GIB;
            }
        }
        let setting = Setting::m3(scenario.len());
        let a = run_fleet_faulted_with_workers(&scenario, &setting, machine(), &fleet, &plan, 1);
        let b = run_fleet_faulted_with_workers(&scenario, &setting, machine(), &fleet, &plan, 8);
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "worker count changed the chaotic fleet result"
        );
        prop_assert!(a.violations.is_empty(), "violations: {:#?}", a.violations);
        prop_assert_eq!(
            a.degradation.jobs_lost,
            a.degradation.jobs_rescheduled + a.degradation.jobs_orphaned,
            "lost-job accounting identity broke: {:#?}", a.degradation
        );
    }

    /// Classified fleets conform to the criticality contract on every
    /// random mix: zero oracle violations (kill ordering, preemption
    /// direction, SLO conservation), and every recorded preemption pairs a
    /// LatencyCritical admission with a strictly-more-expendable Batch
    /// victim.
    #[test]
    fn random_criticality_mixes_are_conformant(
        (scenario, fleet) in (scenario_strategy(), fleet_strategy()),
        mix_seed in proptest::collection::vec((0usize..3, proptest::bool::ANY), 4..5),
    ) {
        let classes: Vec<JobClass> = mix_seed
            .iter()
            .take(scenario.len())
            .map(|&(c, has_slo)| {
                let crit = Criticality::ALL[c];
                let slo_ms = if crit == Criticality::LatencyCritical && has_slo {
                    3_600_000
                } else {
                    0
                };
                JobClass::new(crit, slo_ms)
            })
            .collect();
        let scenario = scenario.with_classes(classes);
        let setting = Setting::m3(scenario.len());
        let res = run_fleet(&scenario, &setting, machine(), &fleet);
        prop_assert!(res.violations.is_empty(), "violations: {:#?}", res.violations);
        for e in res.trace.events() {
            if let TraceData::SchedClassPreempt { crit, victim_crit, .. } = e.data {
                prop_assert_eq!(crit, Criticality::LatencyCritical,
                    "only latency-critical jobs may preempt");
                prop_assert_eq!(victim_crit, Criticality::Batch,
                    "only batch reservations are preemptible");
            }
        }
    }

    /// The flagship deferral guarantee: with a generous defer budget, a
    /// LatencyCritical job is never starved out of the fleet while Batch
    /// reservations exist to preempt — it takes a reservation instead of
    /// giving up, on every random fleet shape.
    #[test]
    fn latency_critical_never_starves_while_batch_is_preemptible(
        scenario in scenario_strategy(),
        fleet in fleet_strategy(),
    ) {
        // All jobs Batch except the last, which is the critical tenant.
        let n = scenario.len();
        let mut classes = vec![JobClass::new(Criticality::Batch, 0); n];
        classes[n - 1] = JobClass::new(Criticality::LatencyCritical, 3_600_000);
        let scenario = scenario.with_classes(classes);
        let setting = Setting::m3(scenario.len());
        let mut fleet = fleet;
        fleet.max_defers = 50;
        let res = run_fleet(&scenario, &setting, machine(), &fleet);
        prop_assert!(res.violations.is_empty(), "violations: {:#?}", res.violations);
        let lc = &res.jobs[n - 1];
        prop_assert!(
            lc.failure != Some(JobFailure::GaveUp),
            "latency-critical job {} gave up with preemptible batch residents: {:#?}",
            lc.job, res.jobs
        );
        // Per-class aggregation sees exactly one latency-critical job.
        let report = res.class_mean();
        let lc_class = report.class(Criticality::LatencyCritical);
        prop_assert!(lc_class.is_some());
        prop_assert_eq!(lc_class.expect("checked").jobs, 1);
    }

    /// Determinism: the same scenario, setting, machine and fleet config
    /// produce bit-identical placement logs and job outcomes.
    #[test]
    fn identical_inputs_give_identical_placement_logs(
        scenario in scenario_strategy(),
        fleet in fleet_strategy(),
    ) {
        let setting = Setting::m3(scenario.len());
        let a = run_fleet(&scenario, &setting, machine(), &fleet);
        let b = run_fleet(&scenario, &setting, machine(), &fleet);
        prop_assert_eq!(
            serde_json::to_string(&a.trace).unwrap(),
            serde_json::to_string(&b.trace).unwrap(),
            "placement logs diverged"
        );
        prop_assert_eq!(
            serde_json::to_string(&a.jobs).unwrap(),
            serde_json::to_string(&b.jobs).unwrap(),
            "job outcomes diverged"
        );
        prop_assert_eq!(
            serde_json::to_string(&a.cluster).unwrap(),
            serde_json::to_string(&b.cluster).unwrap(),
            "cluster aggregation diverged"
        );
    }
}
