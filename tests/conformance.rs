//! Trace-oracle conformance suite.
//!
//! Every harness run records a typed end-to-end trace and replays it through
//! the conformance oracle (`m3-oracle`), which checks the paper's protocol
//! invariants: threshold adjustment steps and ordering (§4.1), Algorithm 1
//! victim selection, allocation-rate gating (§5.2), Table 1 eviction
//! magnitudes, and top-down reclamation ordering (§4.2). These tests assert
//! that real runs are conformant, that golden traces stay byte-identical,
//! that the fast and slow world loops trace identically, and that a
//! deliberately broken policy is caught.
//!
//! Golden snapshots live in `tests/golden/`; regenerate with
//! `M3_UPDATE_GOLDEN=1 cargo test --test conformance`. On a mismatch the
//! offending trace is written under `target/conformance-artifacts/` so CI
//! can upload it.

use std::fs;
use std::path::PathBuf;

use m3::prelude::*;
use m3::sim::clock::SimDuration;
use m3::sim::trace::{TraceEvent, TraceLog};
use m3::workloads::apps::AppBlueprint;
use m3::workloads::hibench;

fn machine() -> MachineConfig {
    let mut cfg = MachineConfig::m3_64gb();
    cfg.max_time = SimDuration::from_secs(40_000);
    cfg
}

/// Serializes a trace one compact JSON object per line, so golden files
/// diff line-by-line in review.
fn trace_jsonl(trace: &TraceLog) -> String {
    let mut out = String::new();
    for e in trace.events() {
        out.push_str(&serde_json::to_string(e).expect("trace event serializes"));
        out.push('\n');
    }
    out
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn artifact_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("conformance-artifacts")
}

/// Compares `actual` against the golden snapshot `name`, writing the
/// offending trace to `target/conformance-artifacts/` on divergence.
/// `M3_UPDATE_GOLDEN=1` rewrites the snapshot instead.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var("M3_UPDATE_GOLDEN").is_ok() {
        fs::create_dir_all(golden_dir()).expect("create golden dir");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); regenerate with \
             M3_UPDATE_GOLDEN=1 cargo test --test conformance",
            path.display()
        )
    });
    if expected != actual {
        let dump = artifact_dir().join(name);
        fs::create_dir_all(artifact_dir()).expect("create artifact dir");
        fs::write(&dump, actual).expect("write artifact");
        let first_diff = expected
            .lines()
            .zip(actual.lines())
            .position(|(a, b)| a != b)
            .map_or_else(
                || "lengths differ".to_string(),
                |i| format!("first differing line {}", i + 1),
            );
        panic!(
            "trace diverged from golden {name} ({first_diff}); \
             offending trace written to {}",
            dump.display()
        );
    }
}

/// Asserts a run produced a non-empty trace and zero oracle violations,
/// dumping the trace as a CI artifact otherwise.
fn assert_conformant(label: &str, run: &RunResult) {
    assert!(
        !run.trace.is_empty(),
        "{label}: capture_trace is on, the trace must not be empty"
    );
    if !run.violations.is_empty() {
        let dump = artifact_dir().join(format!("{label}.trace.jsonl"));
        fs::create_dir_all(artifact_dir()).expect("create artifact dir");
        fs::write(&dump, trace_jsonl(&run.trace)).expect("write artifact");
        panic!(
            "{label}: {} oracle violations (trace written to {}): {:#?}",
            run.violations.len(),
            dump.display(),
            run.violations
        );
    }
}

#[test]
fn m3_scenario_run_is_conformant() {
    let scenario = Scenario::uniform("MMW", 180);
    let out = run_scenario(&scenario, &Setting::m3(3), machine());
    assert!(out.run.all_finished());
    assert_conformant("MMW-180-m3", &out.run);
    // The run must have exercised the monitor protocol, not vacuously passed.
    assert!(out.run.trace.count("monitor.poll") > 100);
    assert!(out.run.trace.count("threshold.adjust") > 0);
}

#[test]
fn cache_scenario_run_is_conformant() {
    // CCC exercises the slab caches: Table 1 eviction magnitudes and the
    // allocation-rate gate are all on the hot path here.
    let scenario = Scenario::uniform("CCC", 480);
    let out = run_scenario(&scenario, &Setting::m3(3), machine());
    assert!(out.run.all_finished());
    assert_conformant("CCC-480-m3", &out.run);
}

#[test]
fn stock_run_is_conformant() {
    // No monitor: the oracle still checks the monitor-independent
    // invariants (eviction magnitudes, reclamation ordering, gating).
    let scenario = Scenario::uniform("MMW", 180);
    let mut cfg = MachineConfig::stock_64gb();
    cfg.max_time = SimDuration::from_secs(40_000);
    let out = run_scenario(&scenario, &Setting::default_for(3), cfg);
    assert_conformant("MMW-180-stock", &out.run);
}

#[test]
fn disabled_capture_records_nothing() {
    let scenario = Scenario::uniform("MMW", 180);
    let mut cfg = machine();
    cfg.capture_trace = false;
    let out = run_scenario(&scenario, &Setting::m3(3), cfg);
    assert!(out.run.trace.is_empty());
    assert!(out.run.violations.is_empty());
}

#[test]
fn golden_fig1_solo_kmeans_trace() {
    // The Fig. 1 elasticity scenario, scaled down: one k-means on a stock
    // node with memory never the constraint. The small heap forces Spark MM
    // capacity evictions, so the golden covers block-cache events too.
    let mut cfg = MachineConfig::stock_64gb();
    cfg.phys_total = 192 * GIB;
    cfg.sample_period = None;
    let machine = Machine::new(cfg);
    let res = machine.run(vec![(
        "k-means".into(),
        SimDuration::ZERO,
        AppBlueprint::Spark {
            jvm: m3::runtime::JvmConfig::stock(4 * GIB),
            spark: m3::framework::SparkConfig::default(),
            job: hibench::kmeans_small(),
        },
    )]);
    assert!(res.all_finished());
    assert_conformant("golden-fig1", &res);
    assert_golden("fig1_solo_kmeans.trace.jsonl", &trace_jsonl(&res.trace));
}

#[test]
fn golden_fig2_alternating_trace() {
    // The Fig. 2 alternating-peaks scenario, scaled down: two M3 JVMs whose
    // load peaks alternate, under the scaled monitor.
    use m3::workloads::alternating::AlternatingProfile;
    use m3::workloads::settings::M3_HEAP_CEILING;
    let phase = SimDuration::from_secs(30);
    let profile = |offset_phases: u64| AlternatingProfile {
        baseline: 2 * GIB,
        peak: 13 * GIB,
        phase,
        offset: phase * offset_phases,
        churn_per_sec: 64 * 1024 * 1024,
        lifetime: SimDuration::from_secs(150),
    };
    let mut cfg = MachineConfig::scaled(64 * GIB, true);
    cfg.max_time = SimDuration::from_secs(300);
    let jvm = m3::runtime::JvmConfig::m3(M3_HEAP_CEILING);
    let machine = Machine::new(cfg);
    let res = machine.run(vec![
        (
            "cassandra".into(),
            SimDuration::ZERO,
            AppBlueprint::Alternating {
                jvm,
                profile: profile(0),
            },
        ),
        (
            "elasticsearch".into(),
            SimDuration::ZERO,
            AppBlueprint::Alternating {
                jvm,
                profile: profile(1),
            },
        ),
    ]);
    assert_conformant("golden-fig2", &res);
    assert_golden("fig2_alternating.trace.jsonl", &trace_jsonl(&res.trace));
}

#[test]
fn fast_and_slow_world_loops_trace_identically() {
    // The fast path may only jump the clock when it cannot change observable
    // behaviour; a delayed start leaves an idle window where it engages.
    let run = |fast: bool| {
        let mut cfg = machine();
        cfg.fast_path = fast;
        let machine = Machine::new(cfg);
        machine.run(vec![(
            "k-means".into(),
            SimDuration::from_secs(90),
            AppBlueprint::Spark {
                jvm: m3::runtime::JvmConfig::m3(m3::workloads::settings::M3_HEAP_CEILING),
                spark: m3::framework::SparkConfig::m3(),
                job: hibench::kmeans_small(),
            },
        )])
    };
    let fast = run(true);
    let slow = run(false);
    assert!(fast.all_finished() && slow.all_finished());
    assert_conformant("fastpath", &fast);
    let fast_trace = trace_jsonl(&fast.trace);
    let slow_trace = trace_jsonl(&slow.trace);
    assert!(
        fast_trace == slow_trace,
        "fast and slow world loops must produce byte-identical traces \
         ({} vs {} events)",
        fast.trace.len(),
        slow.trace.len()
    );
}

/// Serializes only the reclamation-relevant events (handler windows, work
/// packets, evictions, collections, madvise), so the packet golden stays
/// focused and reviewable instead of drowning in monitor polls.
fn reclaim_trace_jsonl(trace: &TraceLog) -> String {
    const PREFIXES: [&str; 5] = [
        "handler.",
        "reclaim.packet.",
        "evict.",
        "gc.",
        "mem.madvise",
    ];
    let mut out = String::new();
    for e in trace.events() {
        if PREFIXES.iter().any(|p| e.kind().starts_with(p)) {
            out.push_str(&serde_json::to_string(e).expect("trace event serializes"));
            out.push('\n');
        }
    }
    out
}

#[test]
fn golden_packet_reclaim_trace() {
    // The canonical two-runtime co-location: a Go cache and a Spark JVM on
    // one M3 node, so the snapshot covers both runtimes' packet graphs
    // (evict -> gc -> madvise) plus the framework block cache.
    let scenario = Scenario::uniform("CM", 180);
    let out = run_scenario(&scenario, &Setting::m3(2), machine());
    assert!(out.run.all_finished());
    assert_conformant("golden-packet-reclaim", &out.run);
    // Reclamation must actually have flowed through the packet scheduler,
    // and every enqueued packet must have run.
    let enqueued = out.run.trace.count("reclaim.packet.enqueue");
    assert!(enqueued > 0, "the run must exercise packetized reclamation");
    assert_eq!(enqueued, out.run.trace.count("reclaim.packet.finish"));
    assert_golden(
        "packet_reclaim.trace.jsonl",
        &reclaim_trace_jsonl(&out.run.trace),
    );
}

#[test]
fn golden_packet_reclaim_replays_conformant() {
    // The committed snapshot itself — not just the run that regenerates it —
    // must satisfy the packet invariants: parse it back off disk and replay
    // it through the paper oracle.
    let path = golden_dir().join("packet_reclaim.trace.jsonl");
    let text = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); regenerate with \
             M3_UPDATE_GOLDEN=1 cargo test --test conformance",
            path.display()
        )
    });
    let mut log = TraceLog::new();
    for (i, line) in text.lines().enumerate() {
        let e: TraceEvent = serde_json::from_str(line)
            .unwrap_or_else(|err| panic!("golden line {} does not parse: {err:?}", i + 1));
        log.record(e.t, e.pid, e.data);
    }
    assert!(log.count("reclaim.packet.enqueue") > 0);
    let violations = Oracle::paper(None).check(&log);
    assert!(
        violations.is_empty(),
        "replaying the packet golden must be violation-free, got {violations:#?}"
    );
}

#[test]
fn packet_bucket_order_ablation_is_caught() {
    // Draining the packet graph in reverse bucket order (madvise before GC
    // before eviction) while ignoring dependency edges must be flagged by
    // the reclaim.packet.* invariants — proof the suite can catch a
    // misordered scheduler rather than just blessing the correct one.
    let scenario = Scenario::uniform("CM", 180);
    let mut cfg = machine();
    cfg.packet_ablation = true;
    let out = run_scenario(&scenario, &Setting::m3(2), cfg);
    assert!(out.run.trace.count("reclaim.packet.enqueue") > 0);
    assert!(
        out.run
            .violations
            .iter()
            .any(|v| v.invariant == "reclaim.packet.bucket"),
        "a packet must be seen starting before its bucket opened, got {:#?}",
        out.run.violations
    );
    assert!(
        out.run
            .violations
            .iter()
            .any(|v| v.invariant == "reclaim.packet.deps"),
        "a packet must be seen starting before its dependencies finished, got {:#?}",
        out.run.violations
    );
}

#[test]
fn broken_threshold_policy_is_caught() {
    // A monitor with 5% threshold steps violates the paper's 2%-of-top
    // bound. Its own run is self-consistent (the machine checks the trace
    // against its own config), but replaying the trace against the paper's
    // configuration must flag the oversized moves.
    let scenario = Scenario::uniform("MMW", 180);
    let mut cfg = machine();
    let mut mon = MonitorConfig::paper_64gb();
    mon.step_fraction = 0.05;
    cfg.monitor = Some(mon);
    let out = run_scenario(&scenario, &Setting::m3(3), cfg);
    assert!(
        out.run.violations.is_empty(),
        "the run is consistent with its own (non-paper) config"
    );
    assert!(out.run.trace.count("threshold.adjust") > 0);
    let violations = Oracle::paper(Some(MonitorConfig::paper_64gb())).check(&out.run.trace);
    assert!(
        violations.iter().any(|v| v.invariant == "threshold.step"),
        "a 5% step policy must be flagged against the paper's 2% bound, got {violations:#?}"
    );
}
