//! Serde round-trip tests for the result-pipeline types.
//!
//! The figure harnesses dump profiles and results as JSON under `results/`
//! for re-plotting; these tests pin the shape of that contract.

use m3::prelude::*;
use m3::sim::clock::SimDuration;
use m3::sim::metrics::Profile;

#[test]
fn profile_round_trips_through_json() {
    let scenario = Scenario::uniform("MM", 60);
    let mut cfg = MachineConfig::m3_64gb();
    cfg.max_time = SimDuration::from_secs(20_000);
    let out = run_scenario(&scenario, &Setting::m3(2), cfg);
    let json = serde_json::to_string(&out.run.profile).expect("serialize profile");
    let back: Profile = serde_json::from_str(&json).expect("deserialize profile");
    assert_eq!(back.series.len(), out.run.profile.series.len());
    for (a, b) in back.series.iter().zip(&out.run.profile.series) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.mean(), b.mean());
    }
    assert_eq!(back.marks.len(), out.run.profile.marks.len());
}

#[test]
fn app_results_round_trip_through_json() {
    let scenario = Scenario::uniform("M", 0);
    let out = run_scenario(
        &scenario,
        &Setting::default_for(1),
        MachineConfig::stock_64gb(),
    );
    let json = serde_json::to_string(&out.run.apps).expect("serialize results");
    let back: Vec<m3::workloads::machine::AppResult> =
        serde_json::from_str(&json).expect("deserialize results");
    assert_eq!(back.len(), 1);
    assert_eq!(back[0].finished, out.run.apps[0].finished);
    assert_eq!(back[0].peak_rss, out.run.apps[0].peak_rss);
    assert_eq!(back[0].runtime(), out.run.apps[0].runtime());
}

#[test]
fn scenario_and_settings_round_trip() {
    let s = Scenario::uniform("CMW", 180);
    let json = serde_json::to_string(&s).expect("serialize scenario");
    let back: Scenario = serde_json::from_str(&json).expect("deserialize scenario");
    assert_eq!(back, s);

    let setting = Setting::default_for(3);
    let json = serde_json::to_string(&setting).expect("serialize setting");
    let back: Setting = serde_json::from_str(&json).expect("deserialize setting");
    assert_eq!(back, setting);
}

#[test]
fn monitor_config_is_a_stable_contract() {
    let cfg = MonitorConfig::paper_64gb();
    let json = serde_json::to_string(&cfg).expect("serialize config");
    for key in [
        "top",
        "initial_low",
        "initial_high",
        "window",
        "ratio_target",
        "sort_order",
    ] {
        assert!(json.contains(key), "config JSON must expose {key}");
    }
    let back: MonitorConfig = serde_json::from_str(&json).expect("deserialize config");
    assert_eq!(back.top, cfg.top);
    assert_eq!(back.window, cfg.window);
}
