//! Fleet scheduler integration suite.
//!
//! End-to-end checks of the pressure-aware cluster scheduler: the
//! passthrough mode must reproduce `run_cluster` bit for bit, conformant
//! runs must pass the cluster oracle with zero violations, the canonical
//! fleet trace is pinned by a golden snapshot, and fleet runs are
//! deterministic and memoized.
//!
//! Golden snapshots live in `tests/golden/`; regenerate with
//! `M3_UPDATE_GOLDEN=1 cargo test --test fleet`. On a mismatch the
//! offending trace is written under `target/conformance-artifacts/` so CI
//! can upload it.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use m3::prelude::*;
use m3::sim::trace::TraceLog;
use m3::workloads::fleet::fleet_cache_stats;
use m3::workloads::scenario::fleet_scenarios;

fn machine() -> MachineConfig {
    let mut cfg = MachineConfig::stock_64gb();
    cfg.sample_period = None;
    cfg.max_time = SimDuration::from_secs(40_000);
    cfg
}

/// A three-node scheduling fleet with a bounded rebalance horizon, the
/// shape the golden snapshot and the conformance sweep share.
fn fleet3() -> FleetConfig {
    let mut fleet = FleetConfig::homogeneous(3, 64 * GIB);
    fleet.rebalance_checks = 10;
    fleet
}

fn trace_jsonl(trace: &TraceLog) -> String {
    let mut out = String::new();
    for e in trace.events() {
        out.push_str(&serde_json::to_string(e).expect("trace event serializes"));
        out.push('\n');
    }
    out
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn artifact_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("conformance-artifacts")
}

/// Compares `actual` against the golden snapshot `name`, writing the
/// offending trace to `target/conformance-artifacts/` on divergence.
/// `M3_UPDATE_GOLDEN=1` rewrites the snapshot instead.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var("M3_UPDATE_GOLDEN").is_ok() {
        fs::create_dir_all(golden_dir()).expect("create golden dir");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); regenerate with \
             M3_UPDATE_GOLDEN=1 cargo test --test fleet",
            path.display()
        )
    });
    if expected != actual {
        let dump = artifact_dir().join(name);
        fs::create_dir_all(artifact_dir()).expect("create artifact dir");
        fs::write(&dump, actual).expect("write artifact");
        let first_diff = expected
            .lines()
            .zip(actual.lines())
            .position(|(a, b)| a != b)
            .map_or_else(
                || "lengths differ".to_string(),
                |i| format!("first differing line {}", i + 1),
            );
        panic!(
            "trace diverged from golden {name} ({first_diff}); \
             offending trace written to {}",
            dump.display()
        );
    }
}

#[test]
fn scheduler_off_reproduces_run_cluster_exactly() {
    // With the scheduler disabled every node runs the full schedule, which
    // must be indistinguishable — serialized bytes included — from the
    // legacy cluster path on the paper's eight workers.
    let scenario = fleet_canonical();
    let setting = Setting::m3(scenario.len());
    let via_fleet = run_fleet(
        &scenario,
        &setting,
        machine(),
        &FleetConfig::passthrough(PAPER_NODES),
    );
    let via_cluster = run_cluster(&scenario, &setting, machine(), PAPER_NODES);
    assert_eq!(
        serde_json::to_string(&via_fleet.cluster).unwrap(),
        serde_json::to_string(&via_cluster).unwrap(),
        "passthrough fleet must reproduce run_cluster bit for bit"
    );
    assert!(via_fleet.jobs.is_empty());
    assert!(via_fleet.trace.is_empty());
    assert!(via_fleet.violations.is_empty());
}

#[test]
fn conformant_fleet_runs_have_zero_violations() {
    for scenario in fleet_scenarios() {
        let setting = Setting::m3(scenario.len());
        let res = run_fleet(&scenario, &setting, machine(), &fleet3());
        assert!(
            res.violations.is_empty(),
            "{}: conformant run must have zero violations, got {:#?}",
            scenario.name,
            res.violations
        );
        assert!(
            !res.trace.is_empty(),
            "{}: the scheduler must leave a placement log",
            scenario.name
        );
        for j in &res.jobs {
            assert_ne!(
                j.failure,
                Some(JobFailure::GaveUp),
                "{}: job {} gave up",
                scenario.name,
                j.job
            );
            assert!(
                j.node.is_some(),
                "{}: job {} unplaced",
                scenario.name,
                j.job
            );
            assert!(
                j.runtime_s.is_some(),
                "{}: job {} did not complete",
                scenario.name,
                j.job
            );
        }
        // An independent replay through a fresh oracle agrees.
        let again = FleetOracle::new(fleet3().grace.as_millis()).check(&res.trace);
        assert!(
            again.is_empty(),
            "{}: independent replay: {again:#?}",
            scenario.name
        );
    }
}

#[test]
fn golden_fleet_canonical_trace() {
    // The canonical fleet workload's full placement log, pinned byte for
    // byte: placements, deferrals, pressure probes and rebalance checks
    // must not drift without a deliberate golden update.
    let scenario = fleet_canonical();
    let setting = Setting::m3(scenario.len());
    let res = run_fleet(&scenario, &setting, machine(), &fleet3());
    assert!(res.violations.is_empty());
    assert_golden("fleet_canonical.trace.jsonl", &trace_jsonl(&res.trace));
}

#[test]
fn golden_mixed_criticality_colocation_trace() {
    // The memcached+Spark co-location trace, pinned byte for byte: class
    // assignments, any preemptions, SLO accounting and kill ordering must
    // not drift without a deliberate golden update.
    let scenario = m3::workloads::scenario::mixed_criticality_scenario(4, 3_600_000);
    let setting = Setting::m3(scenario.len());
    let mut fleet = FleetConfig::homogeneous(2, 64 * GIB);
    fleet.rebalance_checks = 10;
    let res = run_fleet(&scenario, &setting, machine(), &fleet);
    assert!(
        res.violations.is_empty(),
        "mixed-criticality run must be conformant: {:#?}",
        res.violations
    );
    // The trace carries the criticality vocabulary end to end.
    let mut assigns = 0;
    for e in res.trace.events() {
        if e.kind() == "sched.class.assign" {
            assigns += 1;
        }
    }
    assert_eq!(assigns, scenario.len(), "every job declares its class");
    // The per-class report slices the co-location: one critical tenant,
    // four expendable batch jobs.
    let report = res.class_mean();
    let lc = report
        .class(Criticality::LatencyCritical)
        .expect("critical class present");
    assert_eq!(lc.jobs, 1);
    let batch = report
        .class(Criticality::Batch)
        .expect("batch class present");
    assert_eq!(batch.jobs, 4);
    assert_golden("mixed_criticality.trace.jsonl", &trace_jsonl(&res.trace));
}

#[test]
fn fleet_runs_are_deterministic_and_memoized() {
    let scenario = Scenario::uniform("MMMM", 0);
    let setting = Setting::m3(scenario.len());
    let fleet = fleet3();
    let a = run_fleet(&scenario, &setting, machine(), &fleet);
    let b = run_fleet(&scenario, &setting, machine(), &fleet);
    let a_bytes = serde_json::to_string(&a).unwrap();
    assert_eq!(
        a_bytes,
        serde_json::to_string(&b).unwrap(),
        "same inputs must produce a bit-identical FleetResult"
    );
    let before = fleet_cache_stats();
    let c1 = run_fleet_cached(&scenario, &setting, machine(), &fleet);
    let c2 = run_fleet_cached(&scenario, &setting, machine(), &fleet);
    assert!(Arc::ptr_eq(&c1, &c2), "second lookup must be a cache hit");
    assert!(fleet_cache_stats().since(&before).hits >= 1);
    assert_eq!(
        serde_json::to_string(&*c1).unwrap(),
        a_bytes,
        "the memoized result matches the uncached computation"
    );
}

#[test]
fn chaotic_fleet_run_is_conformant_and_fully_accounted() {
    // A four-node fleet under the full fault vocabulary at once: a node
    // crash mid-horizon, a flapping probe endpoint, a delayed placement
    // and a scheduler restart. The run must still pass the oracle's
    // recovery invariants, and the degradation report must account for
    // every lost job — rescheduled or orphaned, never silently dropped.
    let scenario = Scenario::uniform("MMPC", 60);
    let setting = Setting::m3(scenario.len());
    let mut fleet = FleetConfig::homogeneous(4, 64 * GIB);
    fleet.rebalance_checks = 20;
    let plan = FleetFaultPlan::none()
        .with_node_crash(SimDuration::from_secs(600), 1)
        .with_flap(2, SimDuration::from_secs(300), SimDuration::from_secs(900))
        .with_placement_delay(3, SimDuration::from_secs(120))
        .with_scheduler_restart(SimDuration::from_secs(1_200));
    let res = run_fleet_with_faults(&scenario, &setting, machine(), &fleet, &plan);
    assert!(
        res.violations.is_empty(),
        "chaotic run must still be conformant: {:#?}",
        res.violations
    );
    let d = &res.degradation;
    assert_eq!(d.nodes_lost, 1);
    assert_eq!(d.scheduler_restarts, 1);
    assert_eq!(d.placements_delayed, 1);
    assert_eq!(d.faults_unapplied, 0);
    assert_eq!(
        d.jobs_lost,
        d.jobs_rescheduled + d.jobs_orphaned,
        "every lost job is either rescheduled or orphaned: {d:#?}"
    );
    // The trace carries the chaos vocabulary for the replayed oracle.
    let mut node_lost = 0;
    for e in res.trace.events() {
        if e.kind() == "fleet.node_lost" {
            node_lost += 1;
        }
    }
    assert_eq!(node_lost, 1, "the crash must be traced");
    // An independent replay through a fresh oracle agrees.
    let again = FleetOracle::new(fleet.grace.as_millis()).check(&res.trace);
    assert!(again.is_empty(), "independent replay: {again:#?}");
    // Chaos runs are deterministic and serde-stable end to end.
    let repeat = run_fleet_with_faults(&scenario, &setting, machine(), &fleet, &plan);
    assert_eq!(
        serde_json::to_string(&res).unwrap(),
        serde_json::to_string(&repeat).unwrap(),
        "chaotic runs must be reproducible byte for byte"
    );
}

#[test]
fn fleet_result_serde_round_trips() {
    let scenario = Scenario::uniform("MM", 120);
    let setting = Setting::m3(scenario.len());
    let res = run_fleet(&scenario, &setting, machine(), &fleet3());
    let bytes = serde_json::to_string(&res).unwrap();
    let back: FleetResult = serde_json::from_str(&bytes).unwrap();
    assert_eq!(
        serde_json::to_string(&back).unwrap(),
        bytes,
        "FleetResult must survive a serde round trip byte for byte"
    );
    assert_eq!(back.jobs.len(), res.jobs.len());
    assert_eq!(back.trace.len(), res.trace.len());
}
