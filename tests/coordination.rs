//! Cross-layer coordination tests: the Fig. 3 event chain.
//!
//! These exercise the signal path monitor → kernel → application stack and
//! assert the paper's coordination invariants: reclamation order (upper
//! layer before lower), memory actually reaching the OS, and the kill
//! escalation.

use m3::framework::{SparkApp, SparkConfig};
use m3::prelude::*;
use m3::runtime::JvmConfig;
use m3::workloads::hibench;

fn loaded_stack() -> (Kernel, DiskModel, SparkApp) {
    let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
    let disk = DiskModel::hdd_7200rpm();
    let pid = os.spawn("spark");
    let mut app = SparkApp::new(
        pid,
        JvmConfig::m3(1024 * GIB),
        SparkConfig::m3(),
        hibench::kmeans(),
    );
    let mut now = SimTime::ZERO;
    while app.cache().len() < 64 {
        app.tick(&mut os, &disk, now, SimDuration::from_millis(100), 1);
        now += SimDuration::from_millis(100);
    }
    (os, disk, app)
}

#[test]
fn monitor_signal_reaches_the_stack_through_the_kernel() {
    let (mut os, _disk, mut app) = loaded_stack();
    let mut monitor = Monitor::new(MonitorConfig::paper_64gb());
    monitor.register(app.pid());
    // Push another process's usage up so the node is red.
    let hog = os.spawn("hog");
    os.grow(hog, 50 * GIB).unwrap();
    let report = monitor.poll(&mut os, SimTime::from_secs(1));
    assert_eq!(report.zone, Zone::Red);
    assert!(report.high_signalled.contains(&app.pid()));
    // The kernel delivered it; the app handles it and memory reaches the OS.
    let rss_before = os.rss(app.pid());
    let sigs = os.take_signals(app.pid());
    assert!(sigs.contains(&Signal::HighMemory));
    let out = app.handle_signal(ThresholdSignal::High, &mut os, SimTime::from_secs(1));
    assert!(out.returned_to_os > 0);
    assert!(os.rss(app.pid()) < rss_before);
    monitor.note_reclamation(app.pid(), out.returned_to_os);
}

#[test]
fn high_signal_reclaims_top_down() {
    // Table 1 / Fig. 3: Spark evicts first, the JVM collects after — so the
    // mixed cycle sees the evicted blocks as garbage and returns them.
    let (mut os, _disk, mut app) = loaded_stack();
    let blocks_before = app.cache().len();
    let mixed_before = app.jvm().stats.mixed_count;
    let out = app.handle_signal(ThresholdSignal::High, &mut os, SimTime::from_secs(1));
    assert!(app.cache().len() < blocks_before, "upper layer evicted");
    assert_eq!(
        app.jvm().stats.mixed_count,
        mixed_before + 1,
        "lower layer collected"
    );
    // The mixed GC must have returned at least the evicted blocks' bytes.
    let evicted_bytes = (blocks_before - app.cache().len()) as u64 * 128 * MIB;
    assert!(
        out.returned_to_os >= evicted_bytes / 2,
        "the collection must reclaim what the eviction freed"
    );
}

#[test]
fn low_signal_is_cheaper_and_reclaims_less_than_high() {
    let (mut os1, _d1, mut app1) = loaded_stack();
    let (mut os2, _d2, mut app2) = loaded_stack();
    let low = app1.handle_signal(ThresholdSignal::Low, &mut os1, SimTime::from_secs(1));
    let high = app2.handle_signal(ThresholdSignal::High, &mut os2, SimTime::from_secs(1));
    assert!(low.duration < high.duration, "speed over quantity on low");
    assert!(
        high.returned_to_os > low.returned_to_os,
        "quantity over speed on high"
    );
}

#[test]
fn kernel_trace_records_the_event_chain() {
    let (mut os, _disk, mut app) = loaded_stack();
    let mut monitor = Monitor::new(MonitorConfig::paper_64gb());
    monitor.register(app.pid());
    let hog = os.spawn("hog");
    os.grow(hog, 55 * GIB).unwrap();
    monitor.poll(&mut os, SimTime::from_secs(1));
    os.take_signals(app.pid());
    app.handle_signal(ThresholdSignal::High, &mut os, SimTime::from_secs(1));
    assert!(os.trace.count("signal.high") >= 1);
    assert!(os.trace.happened_before("proc.spawn", "signal.high"));
}

#[test]
fn kill_escalation_fires_when_apps_do_not_reclaim() {
    // A process that holds memory above top and never reclaims must
    // eventually be killed (§5.1).
    let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
    let mut monitor = Monitor::new(MonitorConfig::paper_64gb());
    let stubborn = os.spawn("stubborn");
    monitor.register(stubborn);
    os.grow(stubborn, 63 * GIB).unwrap();
    let mut killed = Vec::new();
    for s in 0..60 {
        let report = monitor.poll(&mut os, SimTime::from_secs(s));
        killed.extend(report.killed);
        os.take_signals(stubborn); // ignores them all
    }
    assert_eq!(killed, vec![stubborn]);
    assert!(!os.is_alive(stubborn));
    assert_eq!(os.committed(), 0);
}

#[test]
fn uncooperative_app_does_not_break_others() {
    // The paper assumes cooperative apps; robustness extension: one app
    // ignoring signals must not prevent a cooperative app from finishing
    // (the monitor eventually kills the hog).
    use m3::workloads::apps::AppBlueprint;
    let mut cfg = MachineConfig::m3_64gb();
    cfg.max_time = SimDuration::from_secs(20_000);
    // The "hog" is an alternating server that holds a huge live set and
    // only does young GCs on signals (its JVM participates but its live
    // data never shrinks).
    let hog = AppBlueprint::Alternating {
        jvm: JvmConfig::m3(1024 * GIB),
        profile: m3::workloads::alternating::AlternatingProfile {
            baseline: 58 * GIB,
            peak: 58 * GIB,
            phase: SimDuration::from_secs(1_000_000),
            offset: SimDuration::ZERO,
            churn_per_sec: 64 * MIB,
            lifetime: SimDuration::from_secs(1_000_000),
        },
    };
    let worker = AppBlueprint::Spark {
        jvm: JvmConfig::m3(1024 * GIB),
        spark: SparkConfig::m3(),
        job: hibench::kmeans_small(),
    };
    let res = Machine::new(cfg).run(vec![
        ("hog".into(), SimDuration::ZERO, hog),
        ("worker".into(), SimDuration::from_secs(10), worker),
    ]);
    let worker_result = &res.apps[1];
    assert!(
        worker_result.finished.is_some() && !worker_result.killed,
        "the cooperative worker must finish: {worker_result:?}"
    );
}
