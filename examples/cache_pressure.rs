//! Two cache servers competing for one node's memory.
//!
//! ```text
//! cargo run --release --example cache_pressure
//! ```
//!
//! A Go-Cache server (cache library on the Go runtime) and a Memcached
//! server (native, jemalloc) run the same benchmark on a 16-GB node whose
//! memory cannot hold both full key spaces. Under M3 the monitor's signals
//! and the adaptive allocation protocol split the memory by demand; the
//! example prints how residency, hit ratios and finish times come out.

use m3::cache::{KvApp, KvWorkload};
use m3::prelude::*;
use m3::runtime::{AllocatorKind, GoConfig};
use m3::workloads::apps::AppBlueprint;

fn workload() -> KvWorkload {
    KvWorkload {
        key_space: 2_000_000, // 2 M keys × 4 KiB ≈ 7.6 GiB per cache
        total_requests: 3_000_000,
        ..KvWorkload::paper_gocache()
    }
}

fn main() {
    let machine_cfg = {
        let mut c = MachineConfig::scaled(16 * GIB, true);
        c.max_time = SimDuration::from_secs(20_000);
        c
    };
    let machine = Machine::new(machine_cfg);

    let schedule = vec![
        (
            "go-cache".into(),
            SimDuration::ZERO,
            AppBlueprint::GoCache {
                go: GoConfig::m3(100),
                workload: workload(),
                max_bytes: 0,
                m3_mode: true,
            },
        ),
        (
            "memcached".into(),
            SimDuration::from_secs(60),
            AppBlueprint::Memcached {
                allocator: AllocatorKind::Jemalloc,
                workload: workload(),
                max_bytes: 0,
                m3_mode: true,
            },
        ),
    ];

    println!("two caches, 16-GiB node, combined full demand ≈ 15.3 GiB + runtimes\n");
    let res = machine.run(schedule);
    for a in &res.apps {
        println!(
            "{:<10} started {:>4.0}s  finished {:>6}  peak rss {:>5.2} GiB",
            a.name,
            a.started.as_secs_f64(),
            a.finished
                .map(|f| format!("{:.0}s", f.as_secs_f64()))
                .unwrap_or_else(|| "never".into()),
            a.peak_rss as f64 / GIB as f64,
        );
    }
    let stats = res.monitor_stats.expect("monitor ran");
    println!(
        "\nmonitor: {} polls, {} low signals, {} high signals, {} kills",
        stats.polls, stats.low_signals, stats.high_signals, stats.kills
    );
    println!(
        "mean node usage: {:.1} GiB of 16 GiB",
        res.mean_rss / GIB as f64
    );
    // KvApp is also usable directly, without the world loop:
    let mut os = Kernel::new(KernelConfig::with_total(4 * GIB));
    let pid = os.spawn("solo");
    let mut solo = KvApp::go_cache(pid, GoConfig::m3(100), workload(), 0, true);
    let out = solo.tick(&mut os, SimTime::ZERO, SimDuration::from_secs(1));
    println!(
        "\n(driving a KvApp directly: consumed {} of the first tick, preloading)",
        out.consumed
    );
}
