//! Fixed-seed chaos drill: fault injection + monitor degradation report.
//!
//! ```text
//! cargo run --release --example chaos_drill
//! ```
//!
//! Runs the MM 60 workload (two k-means jobs, staggered a minute apart)
//! under M3 while a deterministic `FaultPlan` misbehaves underneath it:
//! one app goes unresponsive to pressure signals, the other springs a
//! leak, the signal bus drops and delays deliveries, and the monitor
//! loses its `MemAvailable` feed for half a minute. Every fault draws
//! from fixed seeds, so the drill prints the same report on every run —
//! suitable as a CI smoke test for the fault-injection framework.

use m3::prelude::*;

fn main() {
    let scenario = Scenario::uniform("MM", 60);
    let cfg = MachineConfig::stock_64gb();

    let plan = FaultPlan::none()
        .with_unresponsive(SimDuration::from_secs(90), 0, 0.25)
        .with_leak(SimDuration::from_secs(60), 1, 16 * MIB)
        .with_signal_faults(SignalFaultConfig {
            drop_prob: 0.2,
            delay_prob: 0.3,
            delay: SimDuration::from_secs(2),
            seed: 1021,
        })
        .with_poll_outage(SimDuration::from_secs(120), SimDuration::from_secs(30));

    println!(
        "injecting {} fault events into MM 60 under M3 ...",
        plan.injected_count()
    );
    let clean = run_scenario(&scenario, &Setting::m3(scenario.len()), cfg);
    let chaos = run_scenario_with_faults(&scenario, &Setting::m3(scenario.len()), cfg, &plan);

    println!("\n{:<8} {:>10} {:>10}", "app", "clean (s)", "chaos (s)");
    for i in 0..scenario.len() {
        let cell = |o: &m3::workloads::runner::ScenarioOutcome| {
            o.runtimes_secs()[i]
                .map(|r| format!("{r:.0}"))
                .unwrap_or_else(|| "KILLED".into())
        };
        println!(
            "{:<8} {:>10} {:>10}",
            chaos.run.apps[i].name,
            cell(&clean),
            cell(&chaos)
        );
    }

    let d = &chaos.run.degradation;
    println!("\ndegradation report");
    println!(
        "  faults injected / applied / unapplied: {} / {} / {}",
        d.faults_injected,
        d.faults_applied,
        d.faults_unapplied.len()
    );
    println!(
        "  signals dropped / delayed:             {} / {}",
        d.signals_dropped, d.signals_delayed
    );
    println!(
        "  degraded monitor polls:                {}",
        d.degraded_polls
    );
    println!(
        "  watchdog re-signals / escalations:     {} / {}",
        d.watchdog_resignals, d.watchdog_escalations
    );
    println!(
        "  polls above top (time):                {} ({} s)",
        d.polls_above_top,
        d.time_above_top.as_millis() / 1000
    );
    for r in &d.recoveries {
        match r.recovered_after_polls {
            Some(p) => println!(
                "  fault {} recovered below high after {p} polls",
                r.event_index
            ),
            None => println!("  fault {} never recovered below high", r.event_index),
        }
    }

    // Fixed seeds: a second run must reproduce the report byte for byte.
    let replay = run_scenario_with_faults(&scenario, &Setting::m3(scenario.len()), cfg, &plan);
    let a = serde_json::to_string(&chaos.run).expect("serialize");
    let b = serde_json::to_string(&replay.run).expect("serialize");
    assert_eq!(a, b, "chaos drill must be deterministic");
    println!("\nreplay is byte-identical: the drill is deterministic");
}
