//! A full mixed-tenancy story: analytics + caches, M3 vs tuned static.
//!
//! ```text
//! cargo run --release --example mixed_tenancy
//! ```
//!
//! Runs the CCW 300 workload (two Go-Cache benchmarks and an n-weight job)
//! under M3, under the Default setting, and under an Oracle found by this
//! repository's grid search — then prints the comparison the paper's Fig. 5
//! makes, plus where the memory actually went.

use m3::prelude::*;
use m3::sim::units::bytes_to_gib;
use m3::workloads::search::{search_oracle, SearchSpace};

fn main() {
    let scenario = Scenario::uniform("CCW", 300);
    let mut cfg = MachineConfig::stock_64gb();
    cfg.max_time = SimDuration::from_secs(40_000);

    println!("searching the per-workload Oracle (bounded grid search) ...");
    let oracle_setting = search_oracle(&scenario, &SearchSpace::quick(), cfg);
    for (i, app_cfg) in oracle_setting.per_app.iter().enumerate() {
        println!(
            "  app {i}: heap {:.0} GiB, cache {:.0} GiB, GOGC {}",
            bytes_to_gib(app_cfg.heap),
            bytes_to_gib(app_cfg.cache_bytes),
            app_cfg.gogc
        );
    }

    let m3 = run_scenario(&scenario, &Setting::m3(scenario.len()), cfg);
    let default = run_scenario(&scenario, &Setting::default_for(scenario.len()), cfg);
    let oracle = run_scenario(&scenario, &oracle_setting, cfg);

    println!(
        "\n{:<8} {:>8} {:>10} {:>10}",
        "app", "M3 (s)", "Default", "Oracle"
    );
    for i in 0..scenario.len() {
        let cell = |o: &m3::workloads::runner::ScenarioOutcome| {
            o.runtimes_secs()[i]
                .map(|r| format!("{r:.0}"))
                .unwrap_or_else(|| "FAIL".into())
        };
        println!(
            "{:<8} {:>8} {:>10} {:>10}",
            m3.run.apps[i].name,
            cell(&m3),
            cell(&default),
            cell(&oracle)
        );
    }

    for (label, base) in [("Default", &default), ("Oracle", &oracle)] {
        let rep = speedup_report(&m3, base);
        println!(
            "M3 vs {label}: {}",
            rep.mean_speedup
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "INF (baseline cannot run the workload)".into())
        );
    }

    println!(
        "\npeak per-app memory under M3: {:?} GiB (sum may exceed the 64-GiB node: \
         peaks do not coincide)",
        m3.run
            .apps
            .iter()
            .map(|a| (bytes_to_gib(a.peak_rss) * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
    println!(
        "mean node usage: M3 {:.1} GiB vs Oracle {:.1} GiB (effective utilization, §7.3)",
        m3.run.mean_rss / GIB as f64,
        oracle.run.mean_rss / GIB as f64
    );
}
