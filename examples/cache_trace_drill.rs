//! Fixed-seed cache-trace drill: the key-granular slab cache under
//! production-shaped KV traffic, replayed twice and compared byte for byte.
//!
//! ```text
//! cargo run --release --example cache_trace_drill
//! ```
//!
//! A scaled-down Zipf trace (120 k keys, 1 M ops, hot-key-shift phases)
//! drives a Memcached server on a node that cannot hold the working set,
//! once under each policy: M3 (monitor + Table 1 slab eviction), stock
//! Default (unbounded, headed for the OOM killer), and a best-effort
//! static cache cap. The drill prints the three verdicts, proves the M3
//! run replays byte-identically, and checks every point came back
//! oracle-clean — suitable as a CI smoke test for the trace engine.

use m3::prelude::*;

fn main() {
    let twl = TraceWorkload::smoke(TrafficPattern::HotKeyShift);
    println!(
        "cache-trace drill — {} keys, {} ops, hot-key-shift\n",
        twl.key_space, twl.total_ops
    );

    let mut outcomes = Vec::new();
    for policy in CachePolicy::ALL {
        let out = run_cache_trace(twl, policy);
        println!(
            "{:<13} hit ratio {:.3}  signal evictions {:>5}  peak rss {:>5.2} GiB  {}",
            policy.name(),
            out.hit_ratio(),
            out.evict_slabs_low + out.evict_slabs_high,
            out.peak_rss as f64 / GIB as f64,
            if out.killed {
                "KILLED"
            } else if out.finished {
                "completed"
            } else {
                "capped"
            },
        );
        assert_eq!(
            out.violations,
            0,
            "{} must replay oracle-clean: {:?}",
            policy.name(),
            out.violation_samples
        );
        outcomes.push(out);
    }

    // Determinism: an identical M3 run is byte-identical.
    let replay = run_cache_trace(twl, CachePolicy::M3);
    let a = serde_json::to_string(&outcomes[0]).expect("outcome serializes");
    let b = serde_json::to_string(&replay).expect("outcome serializes");
    assert_eq!(a, b, "fixed-seed trace run must replay byte-identically");
    println!("\nreplay is byte-identical; all {} points oracle-clean", 3);
}
