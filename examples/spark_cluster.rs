//! A Spark-on-JVM stack under memory pressure, layer by layer.
//!
//! ```text
//! cargo run --release --example spark_cluster
//! ```
//!
//! Drives the substrates directly (no world loop) to show the paper's
//! reclamation chain of Fig. 3: the monitor signals the process, Spark (the
//! top layer) evicts ⅛ of its block cache, and only *then* calls down into
//! the JVM for a mixed collection, which `madvise`s the freed regions back
//! to the OS. The trace demonstrates the ordering and the end-to-end memory
//! return.

use m3::framework::{SparkApp, SparkConfig};
use m3::prelude::*;
use m3::runtime::JvmConfig;
use m3::workloads::hibench;

fn main() {
    let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
    let disk = DiskModel::hdd_7200rpm();
    let pid = os.spawn("spark-executor");

    // The M3-modified stack: effectively unbounded heap, unbounded block
    // cache, ⅛-LRU eviction policy, adaptive allocation at the Spark layer.
    let mut app = SparkApp::new(
        pid,
        JvmConfig::m3(1024 * GIB),
        SparkConfig::m3(),
        hibench::kmeans(),
    );

    // Let the executor cache a good chunk of its working set.
    let mut now = SimTime::ZERO;
    let tick = SimDuration::from_millis(100);
    while app.cache().len() < 100 {
        app.tick(&mut os, &disk, now, tick, 1);
        now += tick;
    }
    println!(
        "after {:.0}s: {} blocks cached, heap committed {:.1} GiB, rss {:.1} GiB",
        now.as_secs_f64(),
        app.cache().len(),
        app.jvm().committed() as f64 / GIB as f64,
        os.rss(pid) as f64 / GIB as f64,
    );

    // A low-threshold signal: fast, small yield — young collection only,
    // no blocks touched (Table 1).
    let before_blocks = app.cache().len();
    let out = app.handle_signal(ThresholdSignal::Low, &mut os, now);
    println!(
        "low signal : {:>6} ms handler, {:>6.2} GiB returned, blocks {} -> {}",
        out.duration.as_millis(),
        out.returned_to_os as f64 / GIB as f64,
        before_blocks,
        app.cache().len(),
    );

    // A high-threshold signal: Spark evicts ⅛ LRU, then the JVM runs a
    // mixed collection — more memory, more cost, future cache misses.
    let before_blocks = app.cache().len();
    let out = app.handle_signal(ThresholdSignal::High, &mut os, now);
    println!(
        "high signal: {:>6} ms handler, {:>6.2} GiB returned, blocks {} -> {}",
        out.duration.as_millis(),
        out.returned_to_os as f64 / GIB as f64,
        before_blocks,
        app.cache().len(),
    );
    println!(
        "rss after reclamation: {:.1} GiB (JVM stats: {} young, {} mixed collections)",
        os.rss(pid) as f64 / GIB as f64,
        app.jvm().stats.young_count,
        app.jvm().stats.mixed_count,
    );

    // Immediately after the high signal the adaptive allocation protocol
    // throttles growth: delayed allocations evict-and-replace in place.
    let delayed_before = app.stats.delayed_allocs;
    for _ in 0..100 {
        app.tick(&mut os, &disk, now, tick, 1);
        // Time frozen: the allow rate stays at zero.
    }
    println!(
        "allocations delayed while throttled: {}",
        app.stats.delayed_allocs - delayed_before
    );

    // Let the job run to completion with time flowing again.
    loop {
        let out = app.tick(&mut os, &disk, now, tick, 1);
        now += tick;
        if out.finished {
            break;
        }
    }
    println!(
        "job finished at {:.0}s; compute {:.0}s, spark-mm {:.0}s, gc {:.0}s, rss {} bytes",
        now.as_secs_f64(),
        app.stats.compute.as_secs_f64(),
        app.stats.spark_mm.as_secs_f64(),
        app.jvm().stats.total_pause.as_secs_f64(),
        os.rss(pid),
    );
}
