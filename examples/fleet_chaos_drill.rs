//! Fixed-seed fleet chaos drill: cluster-scale fault injection and the
//! scheduler's degradation report.
//!
//! ```text
//! cargo run --release --example fleet_chaos_drill
//! ```
//!
//! The cluster-scale sibling of `chaos_drill`: an eight-node fleet runs
//! the canonical mixed workload while a deterministic `FleetFaultPlan`
//! misbehaves underneath the scheduler — two nodes die mid-horizon, a
//! third's probe endpoint flaps long enough to be quarantined, one
//! placement decision is delayed, and the scheduler itself restarts and
//! rebuilds its candidate index from authoritative node state. The drill
//! prints the degradation report, checks the fleet oracle's recovery
//! invariants, and proves the whole run replays byte for byte — suitable
//! as a CI smoke test for fleet-level self-healing.

use m3::prelude::*;

fn main() {
    let scenario = fleet_canonical();
    let setting = Setting::m3(scenario.len());
    let mut cfg = MachineConfig::stock_64gb();
    cfg.sample_period = None;
    cfg.max_time = SimDuration::from_secs(40_000);
    let mut fleet = FleetConfig::homogeneous(8, 64 * GIB);
    fleet.rebalance_checks = 30;

    let plan = FleetFaultPlan::none()
        .with_node_crash(SimDuration::from_secs(200), 0)
        .with_node_crash(SimDuration::from_secs(300), 1)
        .with_flap(
            6,
            SimDuration::from_secs(400),
            SimDuration::from_secs(1_500),
        )
        .with_placement_delay(3, SimDuration::from_secs(180))
        .with_scheduler_restart(SimDuration::from_secs(2_400));

    println!(
        "injecting {} fleet faults into {} on 8 nodes ...",
        plan.injected_count(),
        scenario.name
    );
    let clean = run_fleet(&scenario, &setting, cfg, &fleet);
    let chaos = run_fleet_with_faults(&scenario, &setting, cfg, &fleet, &plan);

    println!("\n{:<6} {:>10} {:>10}", "job", "clean (s)", "chaos (s)");
    for i in 0..scenario.len() {
        let cell = |r: &FleetResult| {
            r.cluster.app_runtimes_s[i]
                .map(|s| format!("{s:.0}"))
                .unwrap_or_else(|| format!("{:?}", r.cluster.failures[i].unwrap()))
        };
        println!("{:<6} {:>10} {:>10}", i, cell(&clean), cell(&chaos));
    }

    let d = &chaos.degradation;
    println!("\nfleet degradation report");
    println!("  nodes lost:                       {}", d.nodes_lost);
    println!(
        "  jobs lost / rescheduled / orphaned: {} / {} / {}",
        d.jobs_lost, d.jobs_rescheduled, d.jobs_orphaned
    );
    println!(
        "  quarantine episodes:              {}",
        d.quarantine_episodes
    );
    println!(
        "  probe failures / stale decisions: {} / {}",
        d.probe_failures, d.stale_probe_decisions
    );
    println!(
        "  placements delayed (total ms):    {} ({})",
        d.placements_delayed, d.placement_delay_ms
    );
    println!(
        "  scheduler restarts (nodes re-indexed): {} ({})",
        d.scheduler_restarts, d.index_rebuild_nodes
    );
    println!("  faults unapplied:                 {}", d.faults_unapplied);

    assert_eq!(
        d.jobs_lost,
        d.jobs_rescheduled + d.jobs_orphaned,
        "every lost job must be rescheduled or explicitly orphaned"
    );
    assert!(
        chaos.violations.is_empty(),
        "the chaotic run must pass the fleet oracle: {:#?}",
        chaos.violations
    );
    let replay = FleetOracle::new(fleet.grace.as_millis()).check(&chaos.trace);
    assert!(replay.is_empty(), "independent oracle replay: {replay:#?}");
    println!("\nfleet oracle: zero violations (run + independent replay)");

    // Fixed seeds: a second run must reproduce the result byte for byte.
    let again = run_fleet_with_faults(&scenario, &setting, cfg, &fleet, &plan);
    let a = serde_json::to_string(&chaos).expect("serialize");
    let b = serde_json::to_string(&again).expect("serialize");
    assert_eq!(a, b, "fleet chaos drill must be deterministic");
    println!("replay is byte-identical: the drill is deterministic");
}
