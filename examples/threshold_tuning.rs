//! Watching the adaptive thresholds react to a synthetic load.
//!
//! ```text
//! cargo run --release --example threshold_tuning
//! ```
//!
//! Drives the monitor directly against a scripted memory curve — climb,
//! plateau near the top, pressure spike, release — and prints the low/high
//! thresholds after each phase, demonstrating §5.2's rules: thresholds rise
//! while the system stays under the top of memory, the low threshold drops
//! under sustained red, and nothing changes in the green zone.

use m3::prelude::*;

fn drive(
    monitor: &mut Monitor,
    os: &mut Kernel,
    pid: Pid,
    level_gib: u64,
    secs: u64,
    t0: u64,
) -> u64 {
    // Move the process to the requested level, then poll once a second.
    let current = os.rss(pid);
    let target = level_gib * GIB;
    if target > current {
        os.grow(pid, target - current).expect("alive");
    } else {
        os.release(pid, current - target).expect("alive");
    }
    for s in 0..secs {
        let now = SimTime::from_secs(t0 + s);
        let report = monitor.poll(os, now);
        // The process "handles" its signals instantly here; this example is
        // about the thresholds, not the reclamation.
        os.take_signals(pid);
        if !report.high_signalled.is_empty() {
            monitor.note_reclamation(pid, GIB);
        }
    }
    t0 + secs
}

fn main() {
    let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
    let pid = os.spawn("tenant");
    let mut monitor = Monitor::new(MonitorConfig::paper_64gb());
    monitor.register(pid);

    println!("phase                    usage   low   high   (GiB; top = 62)");
    let mut t = 0;
    for (label, level, secs) in [
        ("idle (green)", 10u64, 60u64),
        ("busy (yellow)", 52, 120),
        ("hot (just under high)", 56, 120),
        ("pressure spike (red)", 60, 120),
        ("released", 20, 60),
    ] {
        t = drive(&mut monitor, &mut os, pid, level, secs, t);
        let (low, high) = monitor.thresholds();
        println!(
            "{label:<24} {level:>5}  {:>5.1} {:>5.1}",
            low as f64 / GIB as f64,
            high as f64 / GIB as f64
        );
    }

    let stats = monitor.stats;
    println!(
        "\nsignals sent: {} low, {} high over {} polls",
        stats.low_signals, stats.high_signals, stats.polls
    );
    println!("note how the thresholds climbed while usage stayed under the top,");
    println!("and how they froze once the system went green again (§5.2).");
}
