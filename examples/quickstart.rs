//! Quickstart: run one workload under M3 and under a static baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a simulated 64-GB node, schedules the paper's CMW 180 workload
//! (Go-Cache, k-means, n-weight, 180 s apart), runs it once under M3 and
//! once under the Default static configuration, and prints per-application
//! runtimes and the speedup.

use m3::prelude::*;

fn main() {
    // The paper's evaluation node: 64 GB, monitor at top = 62 GB,
    // thresholds 50/55 GB, 1-second polls (§6).
    let machine_cfg = MachineConfig::m3_64gb();

    // CMW 180: a Go-Cache benchmark, then k-means, then n-weight.
    let scenario = Scenario::uniform("CMW", 180);

    println!("running {} under M3 ...", scenario.name);
    let m3 = run_scenario(&scenario, &Setting::m3(scenario.len()), machine_cfg);

    println!(
        "running {} under the Default static setting ...",
        scenario.name
    );
    let default = run_scenario(
        &scenario,
        &Setting::default_for(scenario.len()),
        machine_cfg,
    );

    println!("\n{:<12} {:>10} {:>12}", "app", "M3 (s)", "Default (s)");
    for (m, d) in m3.run.apps.iter().zip(&default.run.apps) {
        let fmt = |a: &m3::workloads::machine::AppResult| {
            if a.failed {
                "FAIL".to_string()
            } else {
                format!(
                    "{:.0}",
                    a.runtime().map(|r| r.as_secs_f64()).unwrap_or(f64::NAN)
                )
            }
        };
        println!("{:<12} {:>10} {:>12}", m.name, fmt(m), fmt(d));
    }

    let report = speedup_report(&m3, &default);
    match report.mean_speedup {
        Some(s) => println!("\nmean speedup of M3 over Default: {s:.2}x"),
        None => println!("\nDefault could not run this workload at all (INF speedup)"),
    }

    if let Some(stats) = m3.run.monitor_stats {
        println!(
            "monitor: {} polls, {} low signals, {} high signals, {} kills",
            stats.polls, stats.low_signals, stats.high_signals, stats.kills
        );
    }
}
