//! The pressure-aware fleet scheduler in a few lines.
//!
//! ```text
//! cargo run --release --example fleet_quickstart
//! ```
//!
//! Submits the canonical fleet workload (`MMWMCM 120`) to a three-node
//! fleet. Each node exports its live pressure summary (zone, distance to
//! the high/top thresholds, watchdog escalations); the scheduler places
//! every arriving job on the least-pressured node that can fit it, defers
//! jobs that would push a node past its top of memory, and migrates the
//! newest job off any node that stays red beyond the grace window. The
//! whole run is deterministic and checked against the cluster-level
//! conformance oracle.

use m3::prelude::*;

fn main() {
    let scenario = fleet_canonical();
    let setting = Setting::m3(scenario.len());
    let mut machine = MachineConfig::stock_64gb();
    machine.sample_period = None;
    machine.max_time = SimDuration::from_secs(40_000);
    let fleet = FleetConfig::homogeneous(3, 64 * GIB);

    println!(
        "fleet: {} nodes x 64 GiB, workload {}\n",
        fleet.nodes.len(),
        scenario.name
    );
    let res = run_fleet(&scenario, &setting, machine, &fleet);

    println!("job  kind  node  deferrals  migrations  runtime");
    for j in &res.jobs {
        let kind = scenario.apps[j.job].0.code();
        println!(
            "{:>3}  {:>4}  {:>4}  {:>9}  {:>10}  {}",
            j.job,
            kind,
            j.node.map_or("-".into(), |n| n.to_string()),
            j.deferrals,
            j.migrations,
            j.runtime_s
                .map_or("gave up / failed".into(), |s| format!("{s:.0} s")),
        );
    }

    let mean = res.cluster.mean_runtime_secs();
    println!(
        "\nmean runtime {} over {} completed app(s), {} failed",
        mean.mean_secs.map_or("-".into(), |s| format!("{s:.0} s")),
        mean.completed_apps,
        mean.failed_apps,
    );
    println!(
        "placement log: {} event(s); oracle violations: {}",
        res.trace.len(),
        res.violations.len(),
    );
    assert!(res.violations.is_empty(), "{:#?}", res.violations);
}
