//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unreachable in this build environment, so
//! the workspace vendors a minimal serde data model (see `vendor/serde`) and
//! this proc-macro derives its `Serialize` / `Deserialize` traits for the
//! type shapes the workspace actually uses:
//!
//! - structs with named fields,
//! - newtype structs (`struct Counter(u64);`),
//! - enums whose variants are all unit variants.
//!
//! Generics, tuple structs with more than one field, and data-carrying enum
//! variants are rejected with a compile error, which keeps the hand-written
//! token-stream parser small and honest.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// `struct S { a: T, b: U }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct S(T);` — serialized transparently as the inner value.
    Newtype,
    /// `enum E { A, B }` — serialized as the variant name string.
    UnitEnum(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{pushes}])")
        }
        Shape::Newtype => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Content::Str(\
                         ::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::map_field(c, \"{f}\")?,"))
                .collect();
            format!("::std::result::Result::Ok({name} {{ {inits} }})")
        }
        Shape::Newtype => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(c)?))")
        }
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "match c {{\n\
                 ::serde::Content::Str(s) => match s.as_str() {{\n\
                 {arms}\n\
                 other => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::DeError::new(\
                 \"expected a string for enum {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(c: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl must parse")
}

/// Parses a struct/enum item down to its name and field/variant names.
fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(crate)`).
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the `[...]` group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if matches!(iter.peek(), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    iter.next(); // the `(crate)` group
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(other) => panic!("serde_derive: unexpected token {other}"),
            None => panic!("serde_derive: ran out of tokens before struct/enum"),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if matches!(&iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type {name} is not supported by the offline stub");
    }
    let body = iter.next();
    let shape = match (kind.as_str(), body) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let fields = count_tuple_fields(g.stream());
            if fields != 1 {
                panic!(
                    "serde_derive: tuple struct {name} has {fields} fields; \
                     only newtype structs are supported"
                );
            }
            Shape::Newtype
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::UnitEnum(parse_unit_variants(&name, g.stream()))
        }
        (_, other) => panic!("serde_derive: unsupported item body for {name}: {other:?}"),
    };
    (name, shape)
}

/// Extracts field names from `a: T, b: U, ...`, skipping attributes and
/// visibility, tracking `<...>` depth so commas inside generic types do not
/// split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility in front of the field name.
        let field = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if matches!(iter.peek(), Some(TokenTree::Group(g))
                        if g.delimiter() == Delimiter::Parenthesis)
                    {
                        iter.next();
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde_derive: unexpected field token {other}"),
                None => return fields,
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field {field}, got {other:?}"),
        }
        fields.push(field);
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
}

/// Counts the comma-separated fields of a tuple struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut segment_has_tokens = false;
    let mut angle_depth = 0i32;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                segment_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                segment_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if segment_has_tokens {
                    fields += 1;
                }
                segment_has_tokens = false;
            }
            _ => segment_has_tokens = true,
        }
    }
    fields + usize::from(segment_has_tokens)
}

/// Extracts unit variant names, rejecting data-carrying variants.
fn parse_unit_variants(enum_name: &str, stream: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // variant attribute such as `#[default]`
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Ident(id)) => {
                if matches!(iter.peek(), Some(TokenTree::Group(_))) {
                    panic!(
                        "serde_derive: enum {enum_name} variant {id} carries data; \
                         only unit variants are supported"
                    );
                }
                variants.push(id.to_string());
            }
            Some(other) => panic!("serde_derive: unexpected variant token {other}"),
            None => return variants,
        }
    }
}
