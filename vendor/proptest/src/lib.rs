//! Offline stand-in for `proptest`.
//!
//! Provides deterministic random-case generation for the property tests in
//! this workspace: range/tuple/vec/oneof strategies, `prop_map`, the
//! `proptest!`/`prop_assert*` macros, and a fixed per-case RNG. There is no
//! shrinking — a failing case panics with its case number so it can be
//! replayed (generation is a pure function of the case number).

use std::marker::PhantomData;
use std::ops::Range;

/// SplitMix64 — tiny, fast, and deterministic per seed.
pub struct TestRng(u64);

impl TestRng {
    pub fn for_case(case: u32) -> Self {
        TestRng(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(case) + 1))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1) with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Object-safe generation core. `Strategy` (the user-facing trait) adds the
/// generic combinators and is blanket-implemented for every `StrategyCore`.
pub trait StrategyCore {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

pub trait Strategy: StrategyCore {
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: StrategyCore + ?Sized> Strategy for S {}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: StrategyCore, O, F: Fn(S::Value) -> O> StrategyCore for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct BoxedStrategy<T>(Box<dyn StrategyCore<Value = T>>);

impl<T> StrategyCore for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> StrategyCore for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives — the `prop_oneof!` backend.
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        Union(alternatives)
    }
}

impl<T> StrategyCore for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl StrategyCore for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty range strategy");
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl StrategyCore for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: StrategyCore),+> StrategyCore for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// `any::<T>()` — full-domain generation for primitive types.
pub trait Arbitrary: Sized {
    type Strategy: StrategyCore<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub struct FullRange<T>(PhantomData<T>);

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl StrategyCore for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange(PhantomData)
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

pub mod bool {
    //! `proptest::bool::ANY` — a fair coin.
    use super::{StrategyCore, TestRng};

    #[derive(Clone, Copy)]
    pub struct AnyBool;

    impl StrategyCore for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub const ANY: AnyBool = AnyBool;
}

pub mod collection {
    //! `proptest::collection::vec` — length drawn from a range, then that
    //! many elements from the inner strategy.
    use super::{StrategyCore, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    pub fn vec<S: StrategyCore>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: StrategyCore> StrategyCore for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed (or rejected) test case; `prop_assert*` macros return this
/// through the case closure's `Result`.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runs one generated case through the test closure. Exists (rather than
/// calling the closure inline in the `proptest!` expansion) so the closure's
/// parameter type is pinned to `S::Value` by this signature instead of being
/// inferred from usage inside the test body.
#[doc(hidden)]
pub fn run_case<S, F>(strategy: &S, rng: &mut TestRng, test: F) -> Result<(), TestCaseError>
where
    S: StrategyCore,
    F: FnOnce(S::Value) -> Result<(), TestCaseError>,
{
    test(strategy.generate(rng))
}

/// Minimal `TestRunner` for callers that drive cases by hand.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    pub fn run<S, F>(&mut self, strategy: &S, test: F) -> Result<(), TestCaseError>
    where
        S: StrategyCore,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            let mut rng = TestRng::for_case(case);
            test(strategy.generate(&mut rng))?;
        }
        Ok(())
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            // No shrinking/rejection machinery: an unmet assumption simply
            // passes the case.
            return ::std::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(case);
                let outcome = $crate::run_case(&strategy, &mut rng, |($($pat,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                });
                if let ::std::result::Result::Err(e) = outcome {
                    ::std::panic!("{} failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, StrategyCore, TestCaseError, TestRunner,
    };
}
