//! Offline stand-in for `criterion`.
//!
//! Mirrors the subset of the criterion API the workspace benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`, `Bencher::iter`/`iter_batched`)
//! with plain `Instant`-based timing: each benchmark is calibrated to run
//! for roughly 100 ms and reports mean ns/iter on stdout. No statistics,
//! plots, or baselines — just enough to keep the benches compiling and
//! producing a comparable number.

use std::time::{Duration, Instant};

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    /// (iterations, elapsed) of the measured phase.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    fn new() -> Self {
        Bencher { result: None }
    }

    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate per-iter cost.
        let mut n = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(100) || n >= 1 << 30 {
                self.result = Some((n, elapsed));
                return;
            }
            let per_iter = elapsed.as_nanos().max(1) / u128::from(n);
            let target = Duration::from_millis(100).as_nanos();
            n = (target / per_iter).clamp(u128::from(n) * 2, 1 << 30) as u64;
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut iters = 0u64;
        let mut measured = Duration::ZERO;
        while measured < Duration::from_millis(100) && iters < 1 << 20 {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.result = Some((iters, measured));
    }
}

fn report(name: &str, result: Option<(u64, Duration)>) {
    match result {
        Some((iters, elapsed)) if iters > 0 => {
            let per_iter = elapsed.as_nanos() / u128::from(iters);
            println!("{name:<40} {per_iter:>12} ns/iter ({iters} iters)");
        }
        _ => println!("{name:<40} (no measurement)"),
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, b.result);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.name, name), b.result);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
