//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored serde [`Content`] tree to JSON text (compact or
//! 2-space pretty) and parses JSON back into `Content` with a
//! recursive-descent parser, then hands it to `Deserialize`.

use serde::{Content, Deserialize, Serialize};

/// Error for both serialization (infallible today, kept for API shape)
/// and parsing/deserialization failures.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.serialize(), &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.serialize(), 0, &mut out);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::deserialize(&content)?)
}

fn write_number(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        // JSON has no NaN/Infinity; real serde_json errors here, but the
        // simulator only emits finite stats, so null is a safe sentinel.
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_number(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(c: &Content, indent: usize, out: &mut String) {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `]` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not produced by our writer;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8 in string".into()))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let c = Content::Map(vec![
            ("a".into(), Content::U64(7)),
            ("b".into(), Content::F64(1.5)),
            (
                "c".into(),
                Content::Seq(vec![Content::Null, Content::Bool(true)]),
            ),
            ("d".into(), Content::Str("hi \"there\"\n".into())),
            ("e".into(), Content::I64(-3)),
        ]);
        let text = to_string(&c).unwrap();
        let back: Content = from_str(&text).unwrap();
        assert_eq!(back, c);
        let pretty = to_string_pretty(&c).unwrap();
        let back2: Content = from_str(&pretty).unwrap();
        assert_eq!(back2, c);
    }

    #[test]
    fn integers_stay_integers() {
        let v: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(v, u64::MAX);
        let s = to_string(&u64::MAX).unwrap();
        assert_eq!(s, "18446744073709551615");
    }
}
