//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so this crate
//! provides the small slice of serde's surface the workspace uses: a
//! `Serialize`/`Deserialize` trait pair over an owned value tree
//! ([`Content`]), plus derive macros re-exported from the vendored
//! `serde_derive`. `serde_json` (also vendored) renders `Content` to JSON
//! text and parses JSON back into it.
//!
//! The data model is intentionally tiny: it distinguishes unsigned,
//! signed, and floating-point numbers so that integers round-trip exactly
//! and floats keep shortest-round-trip formatting.

pub use serde_derive::{Deserialize, Serialize};

/// An owned, self-describing value tree — the serialization target and
/// deserialization source for every type in the workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Key-value pairs in insertion order (struct fields keep their
    /// declaration order, which keeps serialized output deterministic).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up a key in a `Map`, returning `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a `Content` tree does not match the target type.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn serialize(&self) -> Content;
}

pub trait Deserialize: Sized {
    fn deserialize(c: &Content) -> Result<Self, DeError>;
}

/// Extracts and deserializes a struct field from a `Content::Map`.
/// Used by the derive macro; a missing key is an error (no defaulting).
pub fn map_field<T: Deserialize>(c: &Content, name: &str) -> Result<T, DeError> {
    match c {
        Content::Map(_) => match c.get(name) {
            Some(v) => T::deserialize(v),
            None => Err(DeError::new(format!("missing field `{name}`"))),
        },
        other => Err(DeError::new(format!(
            "expected a map with field `{name}`, got {other:?}"
        ))),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                let v = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 && *v <= u64::MAX as f64 => {
                        *v as u64
                    }
                    other => {
                        return Err(DeError::new(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(v)
                    .map_err(|_| DeError::new(format!("integer {v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                let v = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) if *v <= i64::MAX as u64 => *v as i64,
                    Content::F64(v)
                        if v.fract() == 0.0
                            && *v >= i64::MIN as f64
                            && *v <= i64::MAX as f64 =>
                    {
                        *v as i64
                    }
                    other => {
                        return Err(DeError::new(format!(
                            "expected signed integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(v)
                    .map_err(|_| DeError::new(format!("integer {v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => Err(DeError::new(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        f64::deserialize(c).map(|v| v as f32)
    }
}

impl Serialize for char {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::new(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            Some(v) => v.serialize(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::new(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::new(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Content {
        Content::Seq(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) if items.len() == 2 => {
                Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
            }
            other => Err(DeError::new(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Content {
        Content::Seq(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) if items.len() == 3 => Ok((
                A::deserialize(&items[0])?,
                B::deserialize(&items[1])?,
                C::deserialize(&items[2])?,
            )),
            other => Err(DeError::new(format!("expected 3-tuple, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn serialize(&self) -> Content {
        Content::Seq(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
            self.3.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) if items.len() == 4 => Ok((
                A::deserialize(&items[0])?,
                B::deserialize(&items[1])?,
                C::deserialize(&items[2])?,
                D::deserialize(&items[3])?,
            )),
            other => Err(DeError::new(format!("expected 4-tuple, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize, E: Serialize> Serialize
    for (A, B, C, D, E)
{
    fn serialize(&self) -> Content {
        Content::Seq(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
            self.3.serialize(),
            self.4.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize, E: Deserialize> Deserialize
    for (A, B, C, D, E)
{
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) if items.len() == 5 => Ok((
                A::deserialize(&items[0])?,
                B::deserialize(&items[1])?,
                C::deserialize(&items[2])?,
                D::deserialize(&items[3])?,
                E::deserialize(&items[4])?,
            )),
            other => Err(DeError::new(format!("expected 5-tuple, got {other:?}"))),
        }
    }
}

impl Serialize for Content {
    fn serialize(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}
