#!/usr/bin/env bash
# CI gate: build, test, lint, and check formatting for the whole workspace.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
# Chaos suite: fault injection, watchdog escalation, degradation accounting.
cargo test -q --test chaos
# Trace-oracle conformance: zero invariant violations on real runs, golden
# traces byte-identical, fast/slow world loops trace-equal. On failure the
# offending trace JSON lands in target/conformance-artifacts/.
cargo test -q --test conformance
# Fleet suite: scheduler-vs-cluster differential, golden placement log,
# cluster-oracle invariants, and the fleet placement properties.
cargo test -q --test fleet
cargo test -q --test fleet_properties
# Fixed-seed chaos drills (node- and fleet-level); each asserts its own
# replay is byte-identical and, at fleet level, zero oracle violations.
cargo run --release --example chaos_drill
cargo run --release --example fleet_chaos_drill
# Fleet-scale smoke: the scaling curve up to 512 nodes with a generous
# per-point wall-clock budget (full 10k-node curve runs out of band).
# Asserts zero oracle violations and a memoized repeat at every point.
# Writes under target/ so the committed full-curve report stays intact.
M3_FLEET_SCALE_MAX_NODES=512 M3_FLEET_SCALE_BUDGET_S=60 \
    M3_RESULTS_DIR=target/ci-results \
    cargo bench -p m3-bench --bench fleet_scale
# Fleet-chaos smoke: the MTBF sweep on a smaller fleet. Asserts zero
# oracle violations and full lost-job accounting at every point.
M3_FLEET_CHAOS_NODES=128 M3_FLEET_CHAOS_BUDGET_S=120 \
    M3_RESULTS_DIR=target/ci-results \
    cargo bench -p m3-bench --bench fleet_chaos
# Cache-trace smoke: the key-granular M3 vs Default vs static-limit sweep
# at reduced scale (the committed full-scale sweep runs 1.2M keys / 10M
# ops per point). Every point must replay oracle-clean within budget; the
# drill additionally proves byte-identical replay.
M3_CACHE_TRACE_KEYS=150000 M3_CACHE_TRACE_OPS=1200000 \
    M3_CACHE_TRACE_BUDGET_S=60 \
    M3_RESULTS_DIR=target/ci-results \
    cargo bench -p m3-bench --bench cache_trace
cargo run --release --example cache_trace_drill
# Mixed-criticality smoke: the co-location sweep at reduced batch load.
# The bench itself is the conformance step — it asserts zero oracle
# violations at every point (classified and criticality-unaware), that the
# classified scheduler holds the cache tier's SLO, and that the fleet's
# own SLO accounting agrees with external scoring.
M3_MIXED_CRIT_MAX_BATCH=4 M3_MIXED_CRIT_BUDGET_S=60 \
    M3_RESULTS_DIR=target/ci-results \
    cargo bench -p m3-bench --bench mixed_criticality
# Work-packet reclamation smoke: the fig6/fig7 packetized sweep at a
# reduced salt spread. The bench is the conformance step — it asserts
# byte-identical results at 1 vs 8 workers, zero oracle violations
# (including the reclaim.packet.* ordering and byte-conservation
# invariants) at every point, and every enqueued packet finished.
M3_RECLAIM_PACKETS_SALTS=4 M3_RECLAIM_PACKETS_BUDGET_S=60 \
    M3_RESULTS_DIR=target/ci-results \
    cargo bench -p m3-bench --bench reclaim_packets
cargo clippy -- -D warnings
cargo fmt --check
