#!/usr/bin/env bash
# CI gate: build, test, lint, and check formatting for the whole workspace.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy -- -D warnings
cargo fmt --check
