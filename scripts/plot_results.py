#!/usr/bin/env python3
"""Plot the JSON series that `cargo bench --workspace` writes to results/.

Produces one PNG per figure in results/plots/. Requires matplotlib:

    pip install matplotlib
    python3 scripts/plot_results.py
"""
import json
import os
import sys

RESULTS = os.path.join(os.path.dirname(__file__), "..", "results")
OUT = os.path.join(RESULTS, "plots")


def load(fig):
    """Loads a figure's series from its BENCH_<fig>.json sweep report."""
    path = os.path.join(RESULTS, f"BENCH_{fig}.json")
    if not os.path.exists(path):
        print(f"  (skipping {fig}: run `cargo bench -p m3-bench` first)")
        return None
    with open(path) as f:
        return json.load(f)["results"]


def fig1(plt):
    series = load("fig1_elasticity")
    if series is None:
        return
    for job, data in zip(("kmeans", "pagerank"), series):
        heaps = [p["heap_gib"] for p in data]
        mm = [p["spark_mm_s"] for p in data]
        gc = [p["gc_pause_s"] for p in data]
        rest = [p["total_s"] - p["spark_mm_s"] - p["gc_pause_s"] for p in data]
        fig, ax = plt.subplots()
        ax.bar(heaps, rest, width=2.4, label="runtime")
        ax.bar(heaps, mm, width=2.4, bottom=rest, label="Spark MM")
        ax.bar(heaps, gc, width=2.4, bottom=[r + m for r, m in zip(rest, mm)], label="GC pause")
        ax.set_xlabel("maximum JVM heap size (GiB)")
        ax.set_ylabel("job completion time (s)")
        ax.set_title(f"Figure 1 — {job}")
        ax.legend()
        fig.savefig(os.path.join(OUT, f"fig1_{job}.png"), dpi=150)
        print(f"  wrote fig1_{job}.png")


def fig5(plt):
    data = load("fig5_speedup")
    if data is None:
        return
    names = [r["workload"] for r in data]
    for key, label in [
        ("vs_ows", "vs Oracle with Spark configuration"),
        ("vs_oracle", "vs Oracle"),
        ("vs_global_optimal", "vs Globally Optimal"),
    ]:
        vals = [r[key] if r[key] is not None else 0 for r in data]
        fig, ax = plt.subplots(figsize=(9, 4))
        ax.bar(names, vals)
        ax.axhline(1.0, color="k", linewidth=0.8)
        ax.set_ylabel(f"M3 speedup {label}")
        ax.set_title("Figure 5")
        plt.xticks(rotation=45, ha="right")
        fig.tight_layout()
        fig.savefig(os.path.join(OUT, f"fig5_{key}.png"), dpi=150)
        print(f"  wrote fig5_{key}.png")


def fleet_chaos(plt):
    rows = load("fleet_chaos")
    if rows is None:
        return
    # MTBF 0 encodes the fault-free control point; plot it at the far
    # right of a descending-MTBF (rising failure rate) axis.
    labeled = [("∞" if r["mtbf_s"] == 0 else str(r["mtbf_s"]), r) for r in rows]
    labeled.sort(key=lambda kv: -kv[1]["mtbf_s"] if kv[1]["mtbf_s"] else -(10**12))
    names = [k for k, _ in labeled]
    completion = [r["completion_rate"] * 100.0 for _, r in labeled]
    runtime = [r["mean_runtime_s"] or 0.0 for _, r in labeled]
    fig, ax = plt.subplots()
    ax.plot(names, completion, marker="o", color="tab:blue", label="completion rate")
    ax.set_xlabel("node MTBF (s)")
    ax.set_ylabel("job completion rate (%)", color="tab:blue")
    ax.set_ylim(0, 105)
    ax2 = ax.twinx()
    ax2.plot(names, runtime, marker="s", color="tab:red", label="mean runtime")
    ax2.set_ylabel("mean job runtime (s)", color="tab:red")
    ax.set_title(f"Fleet chaos — {labeled[0][1]['nodes']} nodes, self-healing scheduler")
    fig.tight_layout()
    fig.savefig(os.path.join(OUT, "fleet_chaos.png"), dpi=150)
    print("  wrote fleet_chaos.png")


def cache_trace(plt):
    rows = load("cache_trace")
    if rows is None:
        return
    patterns = list(dict.fromkeys(r["pattern"] for r in rows))
    policies = list(dict.fromkeys(r["policy"] for r in rows))
    by_point = {(r["pattern"], r["policy"]): r for r in rows}
    width = 0.8 / len(policies)
    xs = range(len(patterns))

    # Panel 1: hit ratio per pattern, grouped by policy; killed runs hatched.
    fig, ax = plt.subplots(figsize=(8, 4))
    for i, policy in enumerate(policies):
        pts = [by_point[(p, policy)] for p in patterns]
        pos = [x + (i - (len(policies) - 1) / 2) * width for x in xs]
        bars = ax.bar(pos, [r["hit_ratio"] for r in pts], width=width, label=policy)
        for bar, r in zip(bars, pts):
            if r["killed"]:
                bar.set_hatch("//")
                ax.annotate(
                    "OOM", (bar.get_x() + bar.get_width() / 2, bar.get_height()),
                    ha="center", va="bottom", fontsize=8,
                )
    ax.set_xticks(list(xs))
    ax.set_xticklabels(patterns)
    ax.set_ylabel("GET hit ratio")
    ax.set_ylim(0, 1.05)
    ax.set_title(
        f"Cache trace — {rows[0]['keys']:,} keys, {rows[0]['ops']:,} ops/point"
        " (hatched = OOM-killed)"
    )
    ax.legend()
    fig.tight_layout()
    fig.savefig(os.path.join(OUT, "cache_trace_hit_ratio.png"), dpi=150)
    print("  wrote cache_trace_hit_ratio.png")

    # Panel 2: peak RSS per point against node physical memory.
    fig, ax = plt.subplots(figsize=(8, 4))
    for i, policy in enumerate(policies):
        pts = [by_point[(p, policy)] for p in patterns]
        pos = [x + (i - (len(policies) - 1) / 2) * width for x in xs]
        ax.bar(pos, [r["peak_rss_gib"] for r in pts], width=width, label=policy)
    ax.axhline(rows[0]["phys_gib"], color="k", linewidth=0.8, linestyle="--")
    ax.annotate(
        f"phys {rows[0]['phys_gib']:.1f} GiB", (0, rows[0]["phys_gib"]),
        va="bottom", fontsize=8,
    )
    ax.set_xticks(list(xs))
    ax.set_xticklabels(patterns)
    ax.set_ylabel("peak RSS (GiB)")
    ax.set_title("Cache trace — peak residency vs node physical memory")
    ax.legend()
    fig.tight_layout()
    fig.savefig(os.path.join(OUT, "cache_trace_peak_rss.png"), dpi=150)
    print("  wrote cache_trace_peak_rss.png")


def main():
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")
    os.makedirs(OUT, exist_ok=True)
    fig1(plt)
    fig5(plt)
    fleet_chaos(plt)
    cache_trace(plt)
    print(f"plots in {os.path.abspath(OUT)}")


if __name__ == "__main__":
    main()
