//! A HotSpot-G1-like managed runtime model.
//!
//! The model tracks four byte pools inside a committed heap obtained from the
//! simulated OS:
//!
//! ```text
//! committed = young_used + old_live + old_garbage + free
//! ```
//!
//! - `young_used` — bytes allocated since the last young collection;
//! - `old_live` — application-*pinned* data (Spark's cached blocks live
//!   here; they die only when the application explicitly frees them);
//! - `old_garbage` — dead old-generation bytes awaiting a mixed or full
//!   collection (includes young survivors, which in the workloads we model
//!   are short-lived task data that dies before the next mixed cycle);
//! - `free` — committed but unused space (free G1 regions).
//!
//! Two properties of the real JVM that the paper leans on are modelled
//! explicitly. First, a *stock* JVM never returns free regions to the OS —
//! its RSS is its high-water mark (paper Fig. 2). With
//! [`JvmConfig::return_to_os`] set (the paper's ~200-line JVM modification),
//! freed regions are `madvise`d back immediately. Second, the JVM maintains
//! an internal growth *watermark* independent of the max heap size
//! (footnote 2): each time occupancy crosses it, a concurrent cycle + mixed
//! collection runs and the watermark rises, so even an effectively unbounded
//! heap keeps paying a GC cost.

use m3_os::{Kernel, Pid};
use m3_sim::clock::SimDuration;
use m3_sim::trace::{GcLayer, TraceData};
use m3_sim::units::{GIB, MIB, PAGE_SIZE};
use serde::{Deserialize, Serialize};

use crate::gc::{GcCostModel, GcKind, GcStats};
use crate::RuntimeError;

/// Static configuration of a JVM instance (the paper's tuning surface).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct JvmConfig {
    /// `-Xmx`: the static maximum heap size.
    pub max_heap: u64,
    /// Region/commit granularity for OS interactions.
    pub commit_chunk: u64,
    /// Fraction of transient young bytes that survive a young collection
    /// (they are promoted and die in the old generation).
    pub survival_rate: f64,
    /// Young generation capacity as a fraction of the effective heap.
    pub young_fraction: f64,
    /// Lower/upper clamps on the young generation capacity.
    pub young_min: u64,
    /// Upper clamp on the young generation capacity.
    pub young_max: u64,
    /// Occupancy fraction of the effective heap that triggers a mixed
    /// collection (G1's initiating-heap-occupancy percent).
    pub ihop: f64,
    /// Fraction of old garbage a single mixed collection reclaims.
    pub mixed_yield: f64,
    /// Initial internal growth watermark (footnote 2).
    pub initial_watermark: u64,
    /// Multiplier applied to the watermark after each watermark-triggered
    /// collection.
    pub watermark_growth: f64,
    /// Garbage-proportional pacing for effectively-unbounded heaps (the M3
    /// JVM): a mixed cycle runs once old garbage reaches this fraction of
    /// the live set. Ignored by bounded stock heaps, which pace on IHOP.
    pub garbage_ratio: f64,
    /// If true (the paper's modified JVM), freed regions are returned to the
    /// OS with `madvise` as soon as they are collected.
    pub return_to_os: bool,
    /// GC pause cost model.
    pub costs: GcCostModel,
}

impl JvmConfig {
    /// A configuration matching the paper's stock JVM with the given
    /// `-Xmx`.
    pub fn stock(max_heap: u64) -> Self {
        JvmConfig {
            max_heap,
            commit_chunk: 256 * MIB,
            survival_rate: 0.08,
            young_fraction: 0.60,
            young_min: 64 * MIB,
            young_max: 4 * GIB,
            ihop: 0.45,
            mixed_yield: 0.90,
            // A stock JVM is greedy from the start: the heap expands to the
            // static maximum and garbage accumulates to the IHOP before any
            // mixed cycle (the paper's Problem 2).
            initial_watermark: max_heap,
            watermark_growth: 1.3,
            garbage_ratio: 0.30,
            return_to_os: false,
            costs: GcCostModel::default(),
        }
    }

    /// The paper's M3-modified JVM: effectively unbounded max heap (growth
    /// is governed by M3 signals instead) and immediate `madvise` of freed
    /// regions.
    pub fn m3(ceiling: u64) -> Self {
        JvmConfig {
            return_to_os: true,
            // Footnote 2's growth watermark: with an effectively unbounded
            // maximum, heap usage is paced by a rising internal watermark,
            // each crossing paying one mixed cycle.
            initial_watermark: 2 * GIB,
            ..JvmConfig::stock(ceiling)
        }
    }
}

/// Outcome of one collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcOutcome {
    /// Which collection ran.
    pub kind: GcKind,
    /// Stop-the-world pause charged to the mutator.
    pub pause: SimDuration,
    /// Bytes freed inside the heap.
    pub reclaimed: u64,
    /// Bytes returned to the OS (`0` for a stock JVM).
    pub returned_to_os: u64,
}

/// Outcome of an allocation request (which may have triggered collections).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocCost {
    /// Total mutator time consumed (GC pauses + commit overhead).
    pub pause: SimDuration,
    /// Bytes returned to the OS by collections this allocation triggered.
    pub returned_to_os: u64,
}

/// A G1-like JVM instance bound to one simulated process.
#[derive(Debug, Clone)]
pub struct Jvm {
    cfg: JvmConfig,
    pid: Pid,
    committed: u64,
    young_used: u64,
    old_live: u64,
    old_garbage: u64,
    watermark: u64,
    /// Collection statistics (figure 1's GC-pause bars read these).
    pub stats: GcStats,
}

impl Jvm {
    /// Creates a JVM for process `pid`. No memory is committed until the
    /// first allocation.
    pub fn new(pid: Pid, cfg: JvmConfig) -> Self {
        let watermark = cfg.initial_watermark.min(cfg.max_heap);
        Jvm {
            cfg,
            pid,
            committed: 0,
            young_used: 0,
            old_live: 0,
            old_garbage: 0,
            watermark,
            stats: GcStats::default(),
        }
    }

    /// The configuration this JVM was built with.
    pub fn config(&self) -> &JvmConfig {
        &self.cfg
    }

    /// The owning process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Bytes committed from the OS (the JVM's RSS contribution).
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Bytes in use (young + old live + old garbage).
    pub fn used(&self) -> u64 {
        self.young_used + self.old_live + self.old_garbage
    }

    /// Committed-but-unused bytes (free regions).
    pub fn free(&self) -> u64 {
        self.committed - self.used()
    }

    /// Application-pinned live bytes.
    pub fn pinned(&self) -> u64 {
        self.old_live
    }

    /// Dead old-generation bytes awaiting collection.
    pub fn garbage(&self) -> u64 {
        self.old_garbage
    }

    /// Current young-generation occupancy.
    pub fn young_used(&self) -> u64 {
        self.young_used
    }

    /// The internal growth watermark (footnote 2).
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// The effective heap bound: the static max, tempered by the watermark.
    fn effective_cap(&self) -> u64 {
        self.watermark.min(self.cfg.max_heap)
    }

    /// Young generation capacity under the current effective heap.
    ///
    /// Like real G1, the young generation expands into whatever heap the old
    /// generation is not using (up to `young_fraction`, G1's default maximum
    /// of 60 %). This is the paper's Problem 2: a stock JVM "will greedily
    /// use up its entire max heap size before aggressively performing GC",
    /// so to the OS most of a big `-Xmx` looks in-use even though it is
    /// garbage. Under M3 the same expansion is tamed by threshold signals
    /// (young collections) instead of by the static maximum.
    pub fn young_capacity(&self) -> u64 {
        let old_used = self.old_live + self.old_garbage;
        let head = self.effective_cap().saturating_sub(old_used);
        let target = (head as f64 * self.cfg.young_fraction) as u64;
        target.clamp(self.cfg.young_min, self.cfg.young_max)
    }

    /// Grows committed memory so at least `bytes` of free space exist,
    /// bounded by the max heap. Returns whether enough free space exists
    /// afterwards.
    fn ensure_free(&mut self, os: &mut Kernel, bytes: u64) -> bool {
        if self.free() >= bytes {
            return true;
        }
        let need = bytes - self.free();
        let chunked = need.div_ceil(self.cfg.commit_chunk) * self.cfg.commit_chunk;
        let headroom = self.cfg.max_heap.saturating_sub(self.committed);
        let grow = chunked.min(headroom).max(need.min(headroom));
        if grow < need {
            return false;
        }
        os.grow(self.pid, grow).expect("jvm process must be alive");
        self.committed += grow;
        self.free() >= bytes
    }

    /// Releases free regions back to the OS if configured to (the paper's
    /// modification `madvise`s "whenever a heap region is freed"), keeping
    /// one commit chunk of slack for allocation velocity. Only whole pages
    /// can be `madvise`d, so the amount is rounded down to page granularity.
    fn maybe_return_free(&mut self, os: &mut Kernel) -> u64 {
        let releasable = self.releasable();
        if releasable == 0 {
            return 0;
        }
        os.release(self.pid, releasable)
            .expect("jvm process must be alive");
        self.committed -= releasable;
        self.stats.returned_to_os += releasable;
        releasable
    }

    /// Bytes [`Jvm::maybe_return_free`] would give back right now: free heap
    /// beyond one commit chunk of slack, page-aligned, zero when returning
    /// is disabled. Pure — the release packet's cost estimator reads it.
    pub fn releasable(&self) -> u64 {
        if !self.cfg.return_to_os {
            return 0;
        }
        self.free().saturating_sub(self.cfg.commit_chunk) / PAGE_SIZE * PAGE_SIZE
    }

    /// The young collection *phase*: evacuates survivors to the old
    /// generation and frees the rest of the young space, without touching
    /// the OS. The `gc_young` work packet runs exactly this; the Release
    /// bucket (or the monolithic [`Jvm::young_gc`] wrapper) hands the freed
    /// regions back afterwards.
    pub fn young_collect(&mut self, os: &mut Kernel) -> GcOutcome {
        let survivors = (self.young_used as f64 * self.cfg.survival_rate) as u64;
        let reclaimed = self.young_used - survivors;
        let pause = self.cfg.costs.pause(survivors, survivors, reclaimed);
        self.young_used = 0;
        self.old_garbage += survivors;
        self.stats.record(GcKind::Young, pause, reclaimed);
        os.record_trace_with(self.pid, || TraceData::Gc {
            layer: GcLayer::Young,
            reclaimed,
            returned: 0,
            pause_ms: pause.as_millis(),
        });
        GcOutcome {
            kind: GcKind::Young,
            pause,
            reclaimed,
            returned_to_os: 0,
        }
    }

    /// Pure estimate of the bytes [`Jvm::young_collect`] would reclaim.
    pub fn young_collect_estimate(&self) -> u64 {
        let survivors = (self.young_used as f64 * self.cfg.survival_rate) as u64;
        self.young_used - survivors
    }

    /// The old-generation trace/evacuate *phase* of a mixed collection
    /// (the `gc_old` work packet): reclaims `mixed_yield` of the
    /// accumulated old garbage, without touching the OS.
    pub fn old_collect(&mut self, os: &mut Kernel) -> GcOutcome {
        let old_reclaimed = (self.old_garbage as f64 * self.cfg.mixed_yield) as u64;
        self.old_garbage -= old_reclaimed;
        // Concurrent marking precedes this; the pause pays remembered-set
        // scanning plus evacuation of live data out of the sparsest regions
        // (a small slice of the live set).
        let copied = (self.old_live as f64 * 0.05) as u64;
        let pause = self.cfg.costs.pause(self.old_live, copied, old_reclaimed);
        self.stats.record(GcKind::Mixed, pause, old_reclaimed);
        os.record_trace_with(self.pid, || TraceData::Gc {
            layer: GcLayer::Mixed,
            reclaimed: old_reclaimed,
            returned: 0,
            pause_ms: pause.as_millis(),
        });
        GcOutcome {
            kind: GcKind::Mixed,
            pause,
            reclaimed: old_reclaimed,
            returned_to_os: 0,
        }
    }

    /// Pure estimate of the bytes [`Jvm::old_collect`] would reclaim.
    pub fn old_collect_estimate(&self) -> u64 {
        (self.old_garbage as f64 * self.cfg.mixed_yield) as u64
    }

    /// The full-heap compact *phase* (the `gc_full` work packet): every
    /// dead old byte is reclaimed and the live set compacted, without
    /// touching the OS.
    pub fn full_collect(&mut self, os: &mut Kernel) -> GcOutcome {
        let reclaimed = self.old_garbage;
        self.old_garbage = 0;
        let pause = self
            .cfg
            .costs
            .pause(self.old_live, self.old_live, reclaimed);
        self.stats.record(GcKind::Full, pause, reclaimed);
        os.record_trace_with(self.pid, || TraceData::Gc {
            layer: GcLayer::Full,
            reclaimed,
            returned: 0,
            pause_ms: pause.as_millis(),
        });
        GcOutcome {
            kind: GcKind::Full,
            pause,
            reclaimed,
            returned_to_os: 0,
        }
    }

    /// Releases all currently releasable free heap to the OS (the
    /// `madvise` work packet of the Release bucket). Returns the bytes
    /// given back. Deferring every release to one batched call at the end
    /// of a drain returns exactly as many bytes as the incremental
    /// per-collection releases would have: with `al()` the page-alignment,
    /// `al(x) + al((x - al(x)) + d) = al(x + d)`.
    pub fn release_to_os(&mut self, os: &mut Kernel) -> u64 {
        self.maybe_return_free(os)
    }

    /// Performs a young collection: the young phase plus an immediate
    /// release of freed regions (when configured).
    pub fn young_gc(&mut self, os: &mut Kernel) -> GcOutcome {
        let mut out = self.young_collect(os);
        out.returned_to_os = self.maybe_return_free(os);
        out
    }

    /// Performs a mixed collection: a young collection plus evacuation of a
    /// slice of old regions, reclaiming most accumulated old garbage.
    pub fn mixed_gc(&mut self, os: &mut Kernel) -> GcOutcome {
        let young = self.young_collect(os);
        let old = self.old_collect(os);
        let returned = self.maybe_return_free(os);
        GcOutcome {
            kind: GcKind::Mixed,
            pause: old.pause + young.pause,
            reclaimed: old.reclaimed + young.reclaimed,
            returned_to_os: returned,
        }
    }

    /// Performs a full stop-the-world collection: everything dead is
    /// reclaimed and the live set is compacted.
    pub fn full_gc(&mut self, os: &mut Kernel) -> GcOutcome {
        let young = self.young_collect(os);
        let full = self.full_collect(os);
        let returned = self.maybe_return_free(os);
        GcOutcome {
            kind: GcKind::Full,
            pause: full.pause + young.pause,
            reclaimed: full.reclaimed + young.reclaimed,
            returned_to_os: returned,
        }
    }

    /// Minimum reclaimable old garbage required before a watermark-triggered
    /// collection is worthwhile (prevents no-yield GC storms on a live-heavy
    /// heap; real G1 similarly skips mixed collections whose candidate
    /// regions are below the heap-waste threshold).
    fn min_mixed_yield(&self) -> u64 {
        (self.cfg.commit_chunk / 2).max((self.effective_cap() as f64 * 0.02) as u64)
    }

    /// Checks the internal growth watermark (footnote 2).
    ///
    /// A *bounded* stock heap paces on G1's IHOP: a mixed cycle once
    /// old-generation occupancy (live + garbage — young is handled by young
    /// collections) crosses `ihop × max_heap`, which is exactly the greedy
    /// fill-then-collect behaviour of §2.2 Problem 2.
    ///
    /// An *effectively unbounded* heap (the M3 JVM) paces on the live set
    /// instead: each time usage grows a `garbage_ratio` past the live data,
    /// a mixed cycle runs and the internal watermark rises to track it —
    /// footnote 2's ever-rising watermark, with GC cost that never reaches
    /// zero no matter the ceiling.
    fn check_watermark(&mut self, os: &mut Kernel, cost: &mut AllocCost) {
        if self.cfg.return_to_os {
            let trigger = ((self.old_live as f64) * self.cfg.garbage_ratio) as u64;
            let trigger = trigger.max(self.min_mixed_yield());
            while self.old_garbage >= trigger {
                let pre_used = self.used();
                let out = self.mixed_gc(os);
                cost.pause += out.pause;
                cost.returned_to_os += out.returned_to_os;
                let next = (pre_used as f64 * self.cfg.watermark_growth) as u64;
                self.watermark = self.watermark.max(next).min(self.cfg.max_heap);
            }
            return;
        }
        while self.old_live + self.old_garbage
            >= (self.effective_cap() as f64 * self.cfg.ihop) as u64
            && self.old_garbage >= self.min_mixed_yield()
        {
            let out = self.mixed_gc(os);
            cost.pause += out.pause;
            cost.returned_to_os += out.returned_to_os;
            if self.watermark < self.cfg.max_heap {
                let next = (self.watermark as f64 * self.cfg.watermark_growth) as u64;
                self.watermark = next.min(self.cfg.max_heap);
            } else {
                // At the static maximum the trigger cannot move; one
                // collection per crossing is all G1 would do.
                break;
            }
        }
    }

    /// Allocates short-lived (task/transient) bytes in the young generation.
    ///
    /// May trigger young/mixed/full collections. Fails with
    /// [`RuntimeError::HeapExhausted`] only when the heap is at its static
    /// maximum and almost fully live — the caller (an elastic application)
    /// must evict pinned data and retry.
    pub fn alloc_transient(
        &mut self,
        os: &mut Kernel,
        bytes: u64,
    ) -> Result<AllocCost, RuntimeError> {
        let mut cost = AllocCost::default();
        if self.young_used + bytes > self.young_capacity() {
            let out = self.young_gc(os);
            cost.pause += out.pause;
            cost.returned_to_os += out.returned_to_os;
        }
        self.reserve(os, bytes, &mut cost)?;
        self.young_used += bytes;
        self.check_watermark(os, &mut cost);
        Ok(cost)
    }

    /// Allocates long-lived application-pinned bytes (cached blocks) directly
    /// in the old generation. The bytes stay live until
    /// [`Jvm::free_pinned`].
    pub fn alloc_pinned(&mut self, os: &mut Kernel, bytes: u64) -> Result<AllocCost, RuntimeError> {
        let mut cost = AllocCost::default();
        self.reserve(os, bytes, &mut cost)?;
        self.old_live += bytes;
        self.check_watermark(os, &mut cost);
        Ok(cost)
    }

    /// Marks `bytes` of pinned data dead (application-level eviction). The
    /// space is reclaimed by the next mixed or full collection.
    pub fn free_pinned(&mut self, bytes: u64) {
        let bytes = bytes.min(self.old_live);
        self.old_live -= bytes;
        self.old_garbage += bytes;
    }

    /// Evicts `bytes_out` of pinned data and immediately reuses the space
    /// for `bytes_in` of new pinned data, without growing the heap.
    ///
    /// This models the delayed-allocation path of §4.2: "the evicted memory
    /// is not returned to the OS; instead it is replaced with the newly
    /// allocated data" — and likewise stock Spark's behaviour at its static
    /// maximum ("perform eviction until enough space is created, such that
    /// usage does not increase past maximum size"). Any excess of `bytes_in`
    /// over `bytes_out` goes through the normal allocation path.
    pub fn replace_pinned(
        &mut self,
        os: &mut Kernel,
        bytes_out: u64,
        bytes_in: u64,
    ) -> Result<AllocCost, RuntimeError> {
        let evicted = bytes_out.min(self.old_live);
        self.old_live -= evicted;
        let reused = evicted.min(bytes_in);
        // Space reused in place stays live; eviction overshoot is garbage.
        self.old_live += reused;
        self.old_garbage += evicted - reused;
        let remainder = bytes_in - reused;
        if remainder > 0 {
            self.alloc_pinned(os, remainder)
        } else {
            Ok(AllocCost::default())
        }
    }

    /// Makes `bytes` of free space available, escalating young → grow →
    /// mixed → full, or fails if the static maximum is truly exhausted.
    fn reserve(
        &mut self,
        os: &mut Kernel,
        bytes: u64,
        cost: &mut AllocCost,
    ) -> Result<(), RuntimeError> {
        if self.ensure_free(os, bytes) {
            return Ok(());
        }
        let out = self.mixed_gc(os);
        cost.pause += out.pause;
        cost.returned_to_os += out.returned_to_os;
        if self.ensure_free(os, bytes) {
            return Ok(());
        }
        let out = self.full_gc(os);
        cost.pause += out.pause;
        cost.returned_to_os += out.returned_to_os;
        if self.ensure_free(os, bytes) {
            return Ok(());
        }
        Err(RuntimeError::HeapExhausted)
    }

    /// Shuts the JVM down, returning all committed memory to the OS.
    pub fn shutdown(&mut self, os: &mut Kernel) {
        if os.is_alive(self.pid) {
            os.release(self.pid, self.committed)
                .expect("alive process releases cleanly");
        }
        self.committed = 0;
        self.young_used = 0;
        self.old_live = 0;
        self.old_garbage = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_os::KernelConfig;

    fn setup(max_heap: u64) -> (Kernel, Jvm) {
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let pid = os.spawn("jvm");
        let jvm = Jvm::new(pid, JvmConfig::stock(max_heap));
        (os, jvm)
    }

    fn run_churn(jvm: &mut Jvm, os: &mut Kernel, blocks: u64, each: u64) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for _ in 0..blocks {
            total += jvm.alloc_transient(os, each).expect("fits").pause;
        }
        total
    }

    fn setup_m3(ceiling: u64) -> (Kernel, Jvm) {
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let pid = os.spawn("jvm-m3");
        let jvm = Jvm::new(pid, JvmConfig::m3(ceiling));
        (os, jvm)
    }

    #[test]
    fn invariant_holds_through_operations() {
        let (mut os, mut jvm) = setup(8 * GIB);
        jvm.alloc_transient(&mut os, 100 * MIB).unwrap();
        jvm.alloc_pinned(&mut os, GIB).unwrap();
        jvm.free_pinned(512 * MIB);
        jvm.young_gc(&mut os);
        jvm.mixed_gc(&mut os);
        assert_eq!(
            jvm.committed(),
            jvm.young_used() + jvm.pinned() + jvm.garbage() + jvm.free()
        );
        assert_eq!(os.rss(jvm.pid()), jvm.committed());
    }

    #[test]
    fn commit_grows_lazily_in_chunks() {
        let (mut os, mut jvm) = setup(8 * GIB);
        assert_eq!(jvm.committed(), 0);
        jvm.alloc_transient(&mut os, MIB).unwrap();
        assert_eq!(jvm.committed(), 256 * MIB, "one commit chunk");
    }

    #[test]
    fn young_gc_reclaims_and_promotes() {
        let (mut os, mut jvm) = setup(8 * GIB);
        jvm.alloc_transient(&mut os, 100 * MIB).unwrap();
        let out = jvm.young_gc(&mut os);
        assert_eq!(out.kind, GcKind::Young);
        assert_eq!(jvm.young_used(), 0);
        let survivors = (100.0 * MIB as f64 * 0.08) as u64;
        assert_eq!(jvm.garbage(), survivors);
        assert_eq!(out.reclaimed, 100 * MIB - survivors);
        assert!(out.pause > SimDuration::ZERO);
    }

    #[test]
    fn mixed_gc_clears_most_old_garbage() {
        let (mut os, mut jvm) = setup(8 * GIB);
        jvm.alloc_pinned(&mut os, GIB).unwrap();
        jvm.free_pinned(GIB);
        assert_eq!(jvm.garbage(), GIB);
        let out = jvm.mixed_gc(&mut os);
        assert_eq!(out.kind, GcKind::Mixed);
        assert!(jvm.garbage() < GIB / 8, "mixed should reclaim ~90%");
        assert!(out.reclaimed >= (GIB as f64 * 0.9) as u64 - MIB);
    }

    #[test]
    fn full_gc_clears_all_garbage_but_costs_more() {
        let (mut os, mut jvm) = setup(16 * GIB);
        jvm.alloc_pinned(&mut os, 4 * GIB).unwrap();
        jvm.free_pinned(2 * GIB);
        let mut jvm2 = jvm.clone();
        let mixed = jvm.mixed_gc(&mut os);
        let full = jvm2.full_gc(&mut os);
        assert_eq!(jvm2.garbage(), 0);
        assert!(
            full.pause > mixed.pause,
            "full {} vs mixed {}",
            full.pause,
            mixed.pause
        );
    }

    #[test]
    fn stock_jvm_holds_committed_memory() {
        let (mut os, mut jvm) = setup(8 * GIB);
        jvm.alloc_pinned(&mut os, 2 * GIB).unwrap();
        jvm.free_pinned(2 * GIB);
        jvm.full_gc(&mut os);
        // Everything is dead and collected, yet RSS stays at the peak.
        assert!(jvm.committed() >= 2 * GIB);
        assert_eq!(os.rss(jvm.pid()), jvm.committed());
    }

    #[test]
    fn m3_jvm_returns_freed_memory() {
        let (mut os, mut jvm) = setup_m3(62 * GIB);
        jvm.alloc_pinned(&mut os, 2 * GIB).unwrap();
        jvm.free_pinned(2 * GIB);
        let out = jvm.full_gc(&mut os);
        assert!(
            out.returned_to_os > GIB,
            "freed regions must go back to the OS"
        );
        assert!(jvm.committed() < GIB, "only allocation slack retained");
        assert_eq!(os.rss(jvm.pid()), jvm.committed());
    }

    #[test]
    fn small_heap_means_more_gc_for_same_allocation() {
        // The elasticity of Fig. 1: the same live set and allocation stream
        // under a smaller -Xmx → more collections and more total pause.
        let mut pauses = Vec::new();
        for heap in [2 * GIB, 8 * GIB] {
            let (mut os, mut jvm) = setup(heap);
            jvm.alloc_pinned(&mut os, GIB / 2).unwrap();
            let mut total = SimDuration::ZERO;
            for _ in 0..2000 {
                let c = jvm.alloc_transient(&mut os, 4 * MIB).unwrap();
                total += c.pause;
            }
            pauses.push(total);
        }
        assert!(
            pauses[0] > pauses[1],
            "2GiB heap GC {} should exceed 8GiB heap GC {}",
            pauses[0],
            pauses[1]
        );
    }

    #[test]
    fn watermark_triggers_gc_even_with_huge_heap() {
        // Footnote 2: PageRank pays ≥328 s of GC regardless of max heap.
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let pid = os.spawn("jvm-m3");
        let mut jvm = Jvm::new(pid, JvmConfig::m3(1024 * GIB));
        let wm0 = jvm.watermark();
        // A PageRank-like heap: a multi-GiB live set plus heavy churn.
        jvm.alloc_pinned(&mut os, 4 * GIB).unwrap();
        run_churn(&mut jvm, &mut os, 12_000, 2 * MIB);
        assert!(jvm.stats.total_count() > 0, "GC must still run");
        assert!(jvm.watermark() > wm0, "watermark must rise after triggers");
    }

    #[test]
    fn stock_jvm_is_greedy_with_large_max_heap() {
        // Problem 2 (§2.2): a stock JVM greedily fills its -Xmx with young
        // space and garbage before collecting aggressively; to the OS the
        // memory appears in use.
        let (mut os, mut jvm) = setup(32 * GIB);
        jvm.alloc_pinned(&mut os, 4 * GIB).unwrap();
        run_churn(&mut jvm, &mut os, 1500, 128 * MIB);
        assert!(
            jvm.committed() > 16 * GIB,
            "committed {} should balloon toward the static maximum",
            jvm.committed()
        );
    }

    #[test]
    fn heap_exhaustion_surfaces_to_caller() {
        let (mut os, mut jvm) = setup(GIB);
        // Fill the heap with live data; no GC can help.
        jvm.alloc_pinned(&mut os, (0.9 * GIB as f64) as u64)
            .unwrap();
        let err = jvm.alloc_pinned(&mut os, GIB / 2).unwrap_err();
        assert_eq!(err, RuntimeError::HeapExhausted);
        // Evicting pinned data makes the allocation succeed again.
        jvm.free_pinned(GIB / 2);
        assert!(jvm.alloc_pinned(&mut os, GIB / 4).is_ok());
    }

    #[test]
    fn replace_pinned_does_not_grow_heap() {
        let (mut os, mut jvm) = setup(8 * GIB);
        jvm.alloc_pinned(&mut os, 2 * GIB).unwrap();
        let committed = jvm.committed();
        let live = jvm.pinned();
        jvm.replace_pinned(&mut os, 256 * MIB, 256 * MIB).unwrap();
        assert_eq!(jvm.committed(), committed, "in-place replacement");
        assert_eq!(jvm.pinned(), live);
        assert_eq!(jvm.garbage(), 0);
    }

    #[test]
    fn replace_pinned_overshoot_becomes_garbage() {
        let (mut os, mut jvm) = setup(8 * GIB);
        jvm.alloc_pinned(&mut os, 2 * GIB).unwrap();
        jvm.replace_pinned(&mut os, 512 * MIB, 128 * MIB).unwrap();
        assert_eq!(jvm.pinned(), 2 * GIB - 384 * MIB);
        assert_eq!(jvm.garbage(), 384 * MIB);
    }

    #[test]
    fn replace_pinned_shortfall_allocates() {
        let (mut os, mut jvm) = setup(8 * GIB);
        jvm.alloc_pinned(&mut os, GIB).unwrap();
        jvm.replace_pinned(&mut os, 128 * MIB, 512 * MIB).unwrap();
        assert_eq!(jvm.pinned(), GIB + 384 * MIB);
    }

    #[test]
    fn shutdown_releases_everything() {
        let (mut os, mut jvm) = setup(8 * GIB);
        jvm.alloc_pinned(&mut os, GIB).unwrap();
        jvm.shutdown(&mut os);
        assert_eq!(jvm.committed(), 0);
        assert_eq!(os.rss(jvm.pid()), 0);
    }

    #[test]
    fn reserve_escalates_to_full_gc() {
        // A heap full of garbage: the allocation path must escalate through
        // mixed to full collection rather than fail.
        let (mut os, mut jvm) = setup(2 * GIB);
        jvm.alloc_pinned(&mut os, GIB).unwrap();
        jvm.free_pinned(GIB);
        // Mixed reclaims 90%; ask for more than that to force the full GC.
        jvm.alloc_pinned(&mut os, 2 * GIB - 256 * MIB).unwrap();
        assert!(jvm.stats.full_count + jvm.stats.mixed_count >= 1);
        assert!(jvm.committed() <= 2 * GIB);
    }

    #[test]
    fn replace_pinned_on_empty_heap_allocates() {
        let (mut os, mut jvm) = setup(4 * GIB);
        jvm.replace_pinned(&mut os, 512 * MIB, 256 * MIB).unwrap();
        assert_eq!(
            jvm.pinned(),
            256 * MIB,
            "nothing to evict, plain allocation"
        );
    }

    #[test]
    fn gc_outcomes_report_reclaimed_bytes() {
        let (mut os, mut jvm) = setup(8 * GIB);
        jvm.alloc_transient(&mut os, 512 * MIB).unwrap();
        let out = jvm.young_gc(&mut os);
        assert_eq!(
            out.reclaimed,
            512 * MIB - (512.0 * MIB as f64 * 0.08) as u64
        );
        assert_eq!(jvm.stats.reclaimed_bytes, out.reclaimed);
    }

    #[test]
    fn collect_phases_compose_to_monolithic_mixed_gc() {
        // The packetized path (young + old collect phases, one batched
        // release) must leave the heap bit-identical to the monolithic
        // mixed_gc and return the same bytes to the OS.
        // Kernel is not Clone, so drive two identically-constructed worlds.
        let (mut os, mut jvm) = setup_m3(62 * GIB);
        jvm.alloc_pinned(&mut os, 2 * GIB).unwrap();
        jvm.alloc_transient(&mut os, 512 * MIB).unwrap();
        jvm.free_pinned(GIB);
        let (mut os2, mut packetized) = setup_m3(62 * GIB);
        packetized.alloc_pinned(&mut os2, 2 * GIB).unwrap();
        packetized.alloc_transient(&mut os2, 512 * MIB).unwrap();
        packetized.free_pinned(GIB);

        let mono = jvm.mixed_gc(&mut os);

        let young = packetized.young_collect(&mut os2);
        let old = packetized.old_collect(&mut os2);
        let returned = packetized.release_to_os(&mut os2);

        assert_eq!(mono.reclaimed, young.reclaimed + old.reclaimed);
        assert_eq!(mono.pause, young.pause + old.pause);
        assert_eq!(mono.returned_to_os, returned);
        assert_eq!(jvm.committed(), packetized.committed());
        assert_eq!(jvm.free(), packetized.free());
        assert_eq!(jvm.garbage(), packetized.garbage());
        assert_eq!(os.rss(jvm.pid()), os2.rss(packetized.pid()));
    }

    #[test]
    fn collect_estimates_match_actual_phase_yield() {
        let (mut os, mut jvm) = setup_m3(62 * GIB);
        jvm.alloc_pinned(&mut os, GIB).unwrap();
        jvm.alloc_transient(&mut os, 300 * MIB).unwrap();
        jvm.free_pinned(512 * MIB);
        let young_est = jvm.young_collect_estimate();
        assert_eq!(jvm.young_collect(&mut os).reclaimed, young_est);
        let old_est = jvm.old_collect_estimate();
        assert_eq!(jvm.old_collect(&mut os).reclaimed, old_est);
    }

    #[test]
    fn young_capacity_scales_with_heap_and_clamps() {
        let (_, small) = setup(GIB);
        let (_, big) = setup(64 * GIB);
        assert!(small.young_capacity() >= 64 * MIB);
        assert_eq!(big.young_capacity(), 4 * GIB, "clamped at young_max");
        assert!(small.young_capacity() <= big.young_capacity());
    }
}
