//! Managed-runtime substrates for the M3 reproduction.
//!
//! The paper modifies three memory-managing runtimes to participate in M3
//! (§4, §6): the HotSpot JVM with the Garbage-first collector, the Go
//! runtime, and Memcached's `malloc` (replaced by `jemalloc`). This crate
//! rebuilds each as an accounting-level model that preserves the properties
//! M3 exercises:
//!
//! - **heap-size ↔ GC-time elasticity** — a smaller heap means more frequent
//!   and therefore more total collection work (paper Fig. 1's GC bars);
//! - **memory retention** — a stock JVM *holds onto* freed regions rather
//!   than returning them to the OS (Fig. 2), while the M3-modified runtimes
//!   `madvise` freed regions back immediately;
//! - **the reclamation menu** — young vs mixed vs full collections trade
//!   speed against bytes reclaimed (§3), which is exactly what the two
//!   threshold signals choose between;
//! - **the growth watermark** — even with an unbounded max heap the JVM GCs
//!   each time usage crosses an internal watermark, then raises it
//!   (footnote 2), so GC cost never falls to zero.
//!
//! Cost models are deliberately simple (affine in bytes scanned/copied) and
//! are calibrated in one place ([`gc::GcCostModel`]); the workloads crate
//! only ever compares *shapes* across configurations, never absolute times.

pub mod gc;
pub mod golang;
pub mod jvm;
pub mod native;

pub use gc::{GcCostModel, GcKind, GcStats};
pub use golang::{GoConfig, GoRuntime};
pub use jvm::{Jvm, JvmConfig};
pub use native::{AllocatorKind, NativeAllocator};

/// Errors surfaced by runtime allocation paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeError {
    /// The allocation cannot fit even after collecting everything: the heap
    /// is at its static maximum and (almost) fully live. Elastic applications
    /// respond by evicting their own data and retrying — exactly what
    /// unmodified Spark does when its block cache hits the static limit.
    HeapExhausted,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::HeapExhausted => write!(f, "heap exhausted at static maximum"),
        }
    }
}

impl std::error::Error for RuntimeError {}
