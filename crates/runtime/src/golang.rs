//! A Go-runtime-like managed runtime model.
//!
//! Go has no static max heap; instead the `GOGC` environment variable paces
//! collection: a GC cycle starts whenever the heap has grown by `GOGC`
//! percent over the live bytes at the end of the previous cycle (§2.2,
//! problem 1). Freed spans are returned to the OS by a background scavenger
//! only after sitting idle for five minutes; the paper's ~50-line
//! modification `madvise`s them back as soon as they are collected (§4.1).

use m3_os::{Kernel, Pid};
use m3_sim::clock::{SimDuration, SimTime};
use m3_sim::trace::{GcLayer, TraceData};
use m3_sim::units::{MIB, PAGE_SIZE};
use serde::{Deserialize, Serialize};

use crate::gc::{GcCostModel, GcKind, GcStats};

/// Static configuration of a Go runtime instance.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GoConfig {
    /// `GOGC`: percentage growth over the last cycle's live set that
    /// triggers the next collection (default 100).
    pub gogc: u64,
    /// Commit granularity for OS interactions.
    pub commit_chunk: u64,
    /// Scavenger delay before idle free spans are returned to the OS
    /// (stock Go: 5 minutes).
    pub scavenge_delay: SimDuration,
    /// If true (the paper's modification), freed spans are returned to the
    /// OS immediately after collection instead of waiting for the scavenger.
    pub return_immediately: bool,
    /// Minimum heap-live floor below which GC is not triggered (Go's 4 MiB
    /// minimum heap, scaled up for server workloads).
    pub min_trigger: u64,
    /// GC cost model.
    pub costs: GcCostModel,
}

impl GoConfig {
    /// Stock Go 1.11 with the given `GOGC`.
    pub fn stock(gogc: u64) -> Self {
        GoConfig {
            gogc,
            commit_chunk: 64 * MIB,
            scavenge_delay: SimDuration::from_mins(5),
            return_immediately: false,
            min_trigger: 16 * MIB,
            // Go's collector is concurrent: the mutator pays short
            // stop-the-world phases plus assist work, a small fraction of
            // the full scan cost a stop-the-world collector would charge.
            costs: GcCostModel {
                base_ms: 5,
                copy_ms_per_mib: 0.0,
                scan_ms_per_mib: 0.01,
                sweep_ms_per_mib: 0.005,
            },
        }
    }

    /// The paper's M3-modified Go runtime (immediate `madvise`).
    pub fn m3(gogc: u64) -> Self {
        GoConfig {
            return_immediately: true,
            ..GoConfig::stock(gogc)
        }
    }
}

/// Outcome of one Go GC cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoGcOutcome {
    /// Stop-the-world equivalent cost charged to the mutator. (Go's GC is
    /// mostly concurrent; the model charges its mutator-assist plus STW
    /// phases as a single pause.)
    pub pause: SimDuration,
    /// Bytes freed inside the heap.
    pub reclaimed: u64,
    /// Bytes returned to the OS (immediately, in M3 mode).
    pub returned_to_os: u64,
}

/// A Go runtime instance bound to one simulated process.
#[derive(Debug, Clone)]
pub struct GoRuntime {
    cfg: GoConfig,
    pid: Pid,
    committed: u64,
    live: u64,
    garbage: u64,
    /// Live bytes at the end of the previous cycle (the GOGC baseline).
    last_gc_live: u64,
    /// When the current idle free space became free (scavenger clock).
    free_since: Option<SimTime>,
    /// Collection statistics.
    pub stats: GcStats,
}

impl GoRuntime {
    /// Creates a Go runtime for process `pid`.
    pub fn new(pid: Pid, cfg: GoConfig) -> Self {
        GoRuntime {
            cfg,
            pid,
            committed: 0,
            live: 0,
            garbage: 0,
            last_gc_live: cfg.min_trigger,
            free_since: None,
            stats: GcStats::default(),
        }
    }

    /// The owning process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The configuration this runtime was built with.
    pub fn config(&self) -> &GoConfig {
        &self.cfg
    }

    /// Bytes committed from the OS.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Live (reachable) heap bytes.
    pub fn live(&self) -> u64 {
        self.live
    }

    /// Dead heap bytes awaiting collection.
    pub fn garbage(&self) -> u64 {
        self.garbage
    }

    /// Committed-but-unused bytes (free spans).
    pub fn free(&self) -> u64 {
        self.committed - self.live - self.garbage
    }

    /// The heap size at which the next GC cycle triggers.
    pub fn gc_trigger(&self) -> u64 {
        let base = self.last_gc_live.max(self.cfg.min_trigger);
        base + base * self.cfg.gogc / 100
    }

    /// Allocates `bytes` of heap data, growing the committed heap as needed
    /// and running a GC cycle if the GOGC trigger is crossed.
    pub fn alloc(&mut self, os: &mut Kernel, bytes: u64, now: SimTime) -> GoGcOutcome {
        let mut outcome = GoGcOutcome {
            pause: SimDuration::ZERO,
            reclaimed: 0,
            returned_to_os: 0,
        };
        if self.free() < bytes {
            let need = bytes - self.free();
            let grow = need.div_ceil(self.cfg.commit_chunk) * self.cfg.commit_chunk;
            os.grow(self.pid, grow).expect("go process must be alive");
            self.committed += grow;
        }
        self.live += bytes;
        if self.live + self.garbage >= self.gc_trigger() {
            let gc = self.gc(os, now);
            outcome.pause += gc.pause;
            outcome.reclaimed += gc.reclaimed;
            outcome.returned_to_os += gc.returned_to_os;
        }
        outcome
    }

    /// Marks `bytes` of live data dead (application frees / evictions).
    pub fn free_bytes(&mut self, bytes: u64) {
        let bytes = bytes.min(self.live);
        self.live -= bytes;
        self.garbage += bytes;
    }

    /// The mark/sweep *phase* (the `gc_go` work packet): reclaims all heap
    /// garbage without touching the OS. The Release bucket (or the
    /// monolithic [`GoRuntime::gc`] wrapper) hands free spans back.
    pub fn collect(&mut self, os: &mut Kernel) -> GoGcOutcome {
        let reclaimed = self.garbage;
        let pause = self.cfg.costs.pause(self.live, 0, reclaimed);
        self.garbage = 0;
        self.last_gc_live = self.live;
        self.stats.record(GcKind::Full, pause, reclaimed);
        os.record_trace_with(self.pid, || TraceData::Gc {
            layer: GcLayer::Go,
            reclaimed,
            returned: 0,
            pause_ms: pause.as_millis(),
        });
        GoGcOutcome {
            pause,
            reclaimed,
            returned_to_os: 0,
        }
    }

    /// Pure estimate of the bytes [`GoRuntime::collect`] would reclaim.
    pub fn collect_estimate(&self) -> u64 {
        self.garbage
    }

    /// Bytes a release would give back right now: free spans beyond one
    /// commit chunk of slack, page-aligned. Pure — the release packet's
    /// cost estimator reads it.
    pub fn releasable(&self) -> u64 {
        self.free().saturating_sub(self.cfg.commit_chunk) / PAGE_SIZE * PAGE_SIZE
    }

    /// Releases all free spans to the OS now (the `madvise` work packet of
    /// the Release bucket). Returns the bytes given back.
    pub fn release_to_os(&mut self, os: &mut Kernel) -> u64 {
        let returned = self.release_free(os);
        if returned > 0 {
            self.free_since = None;
        }
        returned
    }

    /// Starts the scavenger clock on the current idle free spans (the
    /// stock-Go half of a collection that does not return immediately).
    pub fn note_idle_free(&mut self, now: SimTime) {
        if self.free() > 0 && self.free_since.is_none() {
            self.free_since = Some(now);
        }
    }

    /// Runs a GC cycle now, regardless of the trigger (the paper's policy
    /// runs this on both threshold signals; M3 also exposes it via
    /// `runtime.GC()`).
    pub fn gc(&mut self, os: &mut Kernel, now: SimTime) -> GoGcOutcome {
        let mut out = self.collect(os);
        if self.cfg.return_immediately {
            out.returned_to_os = self.release_free(os);
        } else {
            self.note_idle_free(now);
        }
        out
    }

    /// Background scavenger: returns idle free spans to the OS once they
    /// have been idle for the configured delay. The world loop calls this
    /// periodically; it is a no-op in `return_immediately` mode (nothing is
    /// left to scavenge).
    pub fn scavenge(&mut self, os: &mut Kernel, now: SimTime) -> u64 {
        match self.free_since {
            Some(t0) if now.saturating_since(t0) >= self.cfg.scavenge_delay => {
                self.free_since = None;
                self.release_free(os)
            }
            _ => 0,
        }
    }

    /// Releases all free spans to the OS, keeping one commit chunk of slack.
    /// Rounded down to page granularity (`madvise` operates on whole pages).
    fn release_free(&mut self, os: &mut Kernel) -> u64 {
        let releasable = self.free().saturating_sub(self.cfg.commit_chunk) / PAGE_SIZE * PAGE_SIZE;
        if releasable == 0 {
            return 0;
        }
        os.release(self.pid, releasable)
            .expect("go process must be alive");
        self.committed -= releasable;
        self.stats.returned_to_os += releasable;
        releasable
    }

    /// Shuts the runtime down, returning all committed memory to the OS.
    pub fn shutdown(&mut self, os: &mut Kernel) {
        if os.is_alive(self.pid) {
            os.release(self.pid, self.committed)
                .expect("alive process releases cleanly");
        }
        self.committed = 0;
        self.live = 0;
        self.garbage = 0;
        self.free_since = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_os::KernelConfig;
    use m3_sim::units::GIB;

    fn setup(cfg: GoConfig) -> (Kernel, GoRuntime) {
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let pid = os.spawn("go");
        (os, GoRuntime::new(pid, cfg))
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn gogc_paces_collection() {
        let (mut os, mut go) = setup(GoConfig::stock(100));
        let mut gcs = 0;
        for _ in 0..64 {
            go.alloc(&mut os, 8 * MIB, t(0));
            go.free_bytes(8 * MIB); // everything is short-lived
            gcs = go.stats.total_count();
        }
        assert!(gcs > 1, "GOGC=100 must GC repeatedly on a churning heap");
        // Higher GOGC → fewer collections for the same allocation stream.
        let (mut os2, mut go2) = setup(GoConfig::stock(800));
        for _ in 0..64 {
            go2.alloc(&mut os2, 8 * MIB, t(0));
            go2.free_bytes(8 * MIB);
        }
        assert!(go2.stats.total_count() < gcs);
    }

    #[test]
    fn gc_trigger_tracks_live_set() {
        let (mut os, mut go) = setup(GoConfig::stock(100));
        go.alloc(&mut os, 100 * MIB, t(0));
        go.gc(&mut os, t(0));
        // After a cycle with 100 MiB live, next trigger is 200 MiB.
        assert_eq!(go.gc_trigger(), 200 * MIB);
    }

    #[test]
    fn stock_go_scavenges_after_delay() {
        let (mut os, mut go) = setup(GoConfig::stock(100));
        go.alloc(&mut os, GIB, t(0));
        go.free_bytes(GIB);
        go.gc(&mut os, t(10));
        let before = go.committed();
        assert!(before >= GIB, "freed spans stay committed at first");
        assert_eq!(go.scavenge(&mut os, t(10 + 60)), 0, "too early");
        let returned = go.scavenge(&mut os, t(10 + 301));
        assert!(returned > 0, "5-minute scavenger must fire");
        assert!(go.committed() < before);
        assert_eq!(os.rss(go.pid()), go.committed());
    }

    #[test]
    fn m3_go_returns_immediately() {
        let (mut os, mut go) = setup(GoConfig::m3(100));
        go.alloc(&mut os, GIB, t(0));
        go.free_bytes(GIB);
        let out = go.gc(&mut os, t(0));
        assert!(out.returned_to_os > GIB / 2);
        assert!(go.committed() <= go.config().commit_chunk + go.live() + go.garbage());
    }

    #[test]
    fn gc_without_pressure_still_possible() {
        // §2.2: Go "can still be performed unnecessarily when memory is
        // abundant" — forcing a cycle works at any time.
        let (mut os, mut go) = setup(GoConfig::stock(100));
        go.alloc(&mut os, 10 * MIB, t(0));
        let out = go.gc(&mut os, t(0));
        assert_eq!(out.reclaimed, 0);
        assert!(out.pause > SimDuration::ZERO);
    }

    #[test]
    fn accounting_invariant() {
        let (mut os, mut go) = setup(GoConfig::m3(200));
        for i in 0..32 {
            go.alloc(&mut os, 16 * MIB, t(i));
            if i % 3 == 0 {
                go.free_bytes(20 * MIB);
            }
        }
        assert_eq!(go.committed(), go.live() + go.garbage() + go.free());
        assert_eq!(os.rss(go.pid()), go.committed());
    }

    #[test]
    fn shutdown_releases_everything() {
        let (mut os, mut go) = setup(GoConfig::stock(100));
        go.alloc(&mut os, GIB, t(0));
        go.shutdown(&mut os);
        assert_eq!(go.committed(), 0);
        assert_eq!(os.rss(go.pid()), 0);
    }

    #[test]
    fn scavenge_is_idempotent() {
        let (mut os, mut go) = setup(GoConfig::stock(100));
        go.alloc(&mut os, GIB, t(0));
        go.free_bytes(GIB);
        go.gc(&mut os, t(0));
        let first = go.scavenge(&mut os, t(400));
        assert!(first > 0);
        assert_eq!(go.scavenge(&mut os, t(800)), 0, "nothing left to return");
    }

    #[test]
    fn m3_go_scavenger_is_a_noop() {
        let (mut os, mut go) = setup(GoConfig::m3(100));
        go.alloc(&mut os, GIB, t(0));
        go.free_bytes(GIB);
        go.gc(&mut os, t(0)); // returned immediately
        assert_eq!(go.scavenge(&mut os, t(1000)), 0);
    }
}
