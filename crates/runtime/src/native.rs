//! Native allocator models (`malloc` vs `jemalloc`).
//!
//! Memcached uses `malloc`/`free` by default, which keeps freed memory in
//! the process arena instead of returning it to the OS; the paper swaps in
//! `jemalloc`, which `madvise`s freed page runs back (§4.1). Both behaviours
//! are modelled here so the evaluation can show why the substitution matters.

use m3_os::{Kernel, Pid};
use serde::{Deserialize, Serialize};

/// Which allocator the process links against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocatorKind {
    /// glibc `malloc`: freed memory stays in the arena (RSS is sticky).
    Malloc,
    /// `jemalloc`: freed page runs are returned to the OS promptly.
    Jemalloc,
}

/// A native allocator bound to one simulated process.
#[derive(Debug, Clone)]
pub struct NativeAllocator {
    kind: AllocatorKind,
    pid: Pid,
    in_use: u64,
    arena_free: u64,
    /// Total bytes ever returned to the OS.
    pub returned_to_os: u64,
}

impl NativeAllocator {
    /// Creates an allocator of the given kind for process `pid`.
    pub fn new(pid: Pid, kind: AllocatorKind) -> Self {
        NativeAllocator {
            kind,
            pid,
            in_use: 0,
            arena_free: 0,
            returned_to_os: 0,
        }
    }

    /// The allocator kind.
    pub fn kind(&self) -> AllocatorKind {
        self.kind
    }

    /// The owning process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Live (application-held) bytes.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Freed bytes retained in the arena (zero for jemalloc).
    pub fn arena_free(&self) -> u64 {
        self.arena_free
    }

    /// The process RSS contribution of this allocator.
    pub fn rss(&self) -> u64 {
        self.in_use + self.arena_free
    }

    /// Allocates `bytes`, reusing arena free space before growing the
    /// process.
    pub fn alloc(&mut self, os: &mut Kernel, bytes: u64) {
        let from_arena = bytes.min(self.arena_free);
        self.arena_free -= from_arena;
        let fresh = bytes - from_arena;
        if fresh > 0 {
            os.grow(self.pid, fresh)
                .expect("native process must be alive");
        }
        self.in_use += bytes;
    }

    /// Frees `bytes` (saturating at the in-use amount). Under `Malloc` the
    /// bytes stay in the arena; under `Jemalloc` they are returned to the OS.
    pub fn free(&mut self, os: &mut Kernel, bytes: u64) {
        let bytes = bytes.min(self.in_use);
        self.in_use -= bytes;
        match self.kind {
            AllocatorKind::Malloc => self.arena_free += bytes,
            AllocatorKind::Jemalloc => {
                os.release(self.pid, bytes)
                    .expect("native process must be alive");
                self.returned_to_os += bytes;
            }
        }
    }

    /// Shuts down, returning everything to the OS.
    pub fn shutdown(&mut self, os: &mut Kernel) {
        if os.is_alive(self.pid) {
            os.release(self.pid, self.rss())
                .expect("alive process releases cleanly");
        }
        self.in_use = 0;
        self.arena_free = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_os::KernelConfig;
    use m3_sim::units::{GIB, MIB};

    fn setup(kind: AllocatorKind) -> (Kernel, NativeAllocator) {
        let mut os = Kernel::new(KernelConfig::with_total(8 * GIB));
        let pid = os.spawn("native");
        (os, NativeAllocator::new(pid, kind))
    }

    #[test]
    fn malloc_keeps_freed_memory_resident() {
        let (mut os, mut a) = setup(AllocatorKind::Malloc);
        a.alloc(&mut os, GIB);
        a.free(&mut os, GIB);
        assert_eq!(a.in_use(), 0);
        assert_eq!(a.arena_free(), GIB);
        assert_eq!(os.rss(a.pid()), GIB, "RSS is sticky under malloc");
    }

    #[test]
    fn jemalloc_returns_freed_memory() {
        let (mut os, mut a) = setup(AllocatorKind::Jemalloc);
        a.alloc(&mut os, GIB);
        a.free(&mut os, GIB);
        assert_eq!(a.rss(), 0);
        assert_eq!(os.rss(a.pid()), 0);
        assert_eq!(a.returned_to_os, GIB);
    }

    #[test]
    fn malloc_reuses_arena_before_growing() {
        let (mut os, mut a) = setup(AllocatorKind::Malloc);
        a.alloc(&mut os, 100 * MIB);
        a.free(&mut os, 100 * MIB);
        let rss_before = os.rss(a.pid());
        a.alloc(&mut os, 60 * MIB);
        assert_eq!(os.rss(a.pid()), rss_before, "no growth needed");
        assert_eq!(a.arena_free(), 40 * MIB);
        a.alloc(&mut os, 80 * MIB);
        assert!(os.rss(a.pid()) > rss_before, "arena exhausted, must grow");
    }

    #[test]
    fn free_saturates_at_in_use() {
        let (mut os, mut a) = setup(AllocatorKind::Jemalloc);
        a.alloc(&mut os, MIB);
        a.free(&mut os, 10 * MIB);
        assert_eq!(a.in_use(), 0);
        assert_eq!(os.rss(a.pid()), 0);
    }

    #[test]
    fn shutdown_clears_rss() {
        let (mut os, mut a) = setup(AllocatorKind::Malloc);
        a.alloc(&mut os, GIB);
        a.free(&mut os, GIB / 2);
        a.shutdown(&mut os);
        assert_eq!(os.rss(a.pid()), 0);
        assert_eq!(a.rss(), 0);
    }
}
