//! Garbage-collection kinds, cost model and statistics.
//!
//! The two M3 threshold signals pick points on a speed-versus-yield curve
//! (§3): a *young* collection is fast but reclaims only newly allocated
//! garbage; a *mixed* collection also evacuates old regions; a *full*
//! collection scans the entire heap. The cost model is affine in the bytes
//! scanned and copied, which is the first-order behaviour of real
//! stop-the-world collectors.

use m3_sim::clock::SimDuration;
use m3_sim::histogram::DurationHistogram;
use m3_sim::units::MIB;
use serde::{Deserialize, Serialize};

/// The kind of collection performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GcKind {
    /// Young-generation-only evacuation (fast, small yield).
    Young,
    /// Young + a slice of old regions ("mixed" in G1 terms).
    Mixed,
    /// Whole-heap stop-the-world collection.
    Full,
}

/// Pause-time cost model for stop-the-world collections.
///
/// All rates are milliseconds per MiB; `base_ms` covers root scanning and
/// safepoint overhead that every pause pays regardless of heap size.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GcCostModel {
    /// Fixed per-pause overhead (roots, safepoint), in ms.
    pub base_ms: u64,
    /// Cost of copying surviving bytes, ms per MiB.
    pub copy_ms_per_mib: f64,
    /// Cost of scanning live bytes (marking/remembered sets), ms per MiB.
    pub scan_ms_per_mib: f64,
    /// Cost of sweeping garbage bytes, ms per MiB (cheap).
    pub sweep_ms_per_mib: f64,
}

impl Default for GcCostModel {
    fn default() -> Self {
        // Calibrated against HotSpot G1 on server-class hardware: copying a
        // GiB of survivors costs on the order of a few hundred ms; a full GC
        // of a ~30 GiB mostly-live heap costs tens of seconds.
        GcCostModel {
            base_ms: 15,
            copy_ms_per_mib: 0.35,
            // Marking is concurrent in G1; pauses only pay remembered-set
            // and root-region work proportional to the live set.
            scan_ms_per_mib: 0.02,
            sweep_ms_per_mib: 0.01,
        }
    }
}

impl GcCostModel {
    /// Pause time for a collection that scans `scanned` live bytes, copies
    /// `copied` surviving bytes and sweeps `swept` garbage bytes.
    pub fn pause(&self, scanned: u64, copied: u64, swept: u64) -> SimDuration {
        let ms = self.base_ms as f64
            + self.scan_ms_per_mib * (scanned as f64 / MIB as f64)
            + self.copy_ms_per_mib * (copied as f64 / MIB as f64)
            + self.sweep_ms_per_mib * (swept as f64 / MIB as f64);
        SimDuration::from_millis(ms.round() as u64)
    }
}

/// Accumulated collection statistics for one runtime instance.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GcStats {
    /// Number of young collections.
    pub young_count: u64,
    /// Number of mixed collections.
    pub mixed_count: u64,
    /// Number of full collections.
    pub full_count: u64,
    /// Collections that actually freed bytes inside the heap. A collection
    /// with zero yield still pays its pause (and still counts in the
    /// per-kind counters above); tracking the effective subset separately
    /// exposes how much of the GC effort under pressure was wasted motion.
    pub effective_collections: u64,
    /// Total stop-the-world pause time.
    pub total_pause: SimDuration,
    /// Total bytes reclaimed (freed inside the heap).
    pub reclaimed_bytes: u64,
    /// Total bytes returned to the OS via `madvise`.
    pub returned_to_os: u64,
    /// Distribution of individual pause times (for tail-latency reporting).
    pub pauses: DurationHistogram,
}

impl GcStats {
    /// Records one collection.
    pub fn record(&mut self, kind: GcKind, pause: SimDuration, reclaimed: u64) {
        match kind {
            GcKind::Young => self.young_count += 1,
            GcKind::Mixed => self.mixed_count += 1,
            GcKind::Full => self.full_count += 1,
        }
        if reclaimed > 0 {
            self.effective_collections += 1;
        }
        self.total_pause += pause;
        self.reclaimed_bytes += reclaimed;
        self.pauses.record(pause);
    }

    /// Total number of collections of any kind, effective or not.
    pub fn total_count(&self) -> u64 {
        self.young_count + self.mixed_count + self.full_count
    }

    /// Collections that paid a pause without freeing anything.
    pub fn wasted_collections(&self) -> u64 {
        self.total_count() - self.effective_collections
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_sim::units::GIB;

    #[test]
    fn pause_grows_with_work() {
        let m = GcCostModel::default();
        let small = m.pause(100 * MIB, 10 * MIB, 100 * MIB);
        let big = m.pause(10 * GIB, GIB, 10 * GIB);
        assert!(big > small);
        assert!(small.as_millis() >= m.base_ms);
    }

    #[test]
    fn empty_pause_is_base_cost() {
        let m = GcCostModel::default();
        assert_eq!(m.pause(0, 0, 0).as_millis(), m.base_ms);
    }

    #[test]
    fn copy_dominates_sweep() {
        let m = GcCostModel::default();
        let copy_heavy = m.pause(0, GIB, 0);
        let sweep_heavy = m.pause(0, 0, GIB);
        assert!(copy_heavy.as_millis() > 10 * sweep_heavy.as_millis());
    }

    #[test]
    fn full_gc_of_large_live_heap_costs_tens_of_seconds() {
        let m = GcCostModel::default();
        // 30 GiB live heap scanned and half copied: should be 10s-60s class.
        let pause = m.pause(30 * GIB, 15 * GIB, 5 * GIB);
        assert!(pause.as_secs() >= 5, "got {pause}");
        assert!(pause.as_secs() <= 120, "got {pause}");
    }

    #[test]
    fn stats_accumulate() {
        let mut s = GcStats::default();
        s.record(GcKind::Young, SimDuration::from_millis(10), 100);
        s.record(GcKind::Mixed, SimDuration::from_millis(50), 400);
        s.record(GcKind::Full, SimDuration::from_millis(500), 900);
        assert_eq!(s.young_count, 1);
        assert_eq!(s.mixed_count, 1);
        assert_eq!(s.full_count, 1);
        assert_eq!(s.total_count(), 3);
        assert_eq!(s.effective_collections, 3);
        assert_eq!(s.wasted_collections(), 0);
        assert_eq!(s.total_pause.as_millis(), 560);
        assert_eq!(s.reclaimed_bytes, 1400);
        assert_eq!(s.pauses.count(), 3);
        assert_eq!(s.pauses.max().as_millis(), 500);
    }

    #[test]
    fn zero_yield_collections_count_but_are_not_effective() {
        let mut s = GcStats::default();
        s.record(GcKind::Young, SimDuration::from_millis(10), 0);
        s.record(GcKind::Young, SimDuration::from_millis(10), 64);
        s.record(GcKind::Mixed, SimDuration::from_millis(40), 0);
        assert_eq!(s.total_count(), 3, "zero-yield collections still count");
        assert_eq!(s.effective_collections, 1);
        assert_eq!(s.wasted_collections(), 2);
        assert_eq!(
            s.total_pause.as_millis(),
            60,
            "wasted collections still pay their pause"
        );
        assert_eq!(s.reclaimed_bytes, 64);
    }
}
