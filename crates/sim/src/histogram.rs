//! A log-bucketed duration histogram.
//!
//! GC pauses span four orders of magnitude (a 15 ms young collection to a
//! 30 s full compaction), so the runtime layers record them in
//! exponentially sized buckets. Quantiles are approximate (bucket upper
//! bound), which is all the tail-latency reporting needs.

use crate::clock::SimDuration;
use serde::{Deserialize, Serialize};

/// Number of buckets: bucket `i` holds durations in
/// `[2^i, 2^(i+1)) − 1` milliseconds, with bucket 0 holding `< 2 ms` and
/// the last bucket holding everything larger.
const BUCKETS: usize = 24;

/// A histogram of durations with power-of-two millisecond buckets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DurationHistogram {
    counts: Vec<u64>,
    total: u64,
    max_ms: u64,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        DurationHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            max_ms: 0,
        }
    }
}

impl DurationHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        DurationHistogram::default()
    }

    fn bucket_of(ms: u64) -> usize {
        ((64 - ms.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// The inclusive upper bound of bucket `i`, in ms.
    fn bucket_upper(i: usize) -> u64 {
        if i + 1 >= BUCKETS {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        let ms = d.as_millis();
        self.counts[Self::bucket_of(ms)] += 1;
        self.total += 1;
        self.max_ms = self.max_ms.max(ms);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The largest recorded duration.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_millis(self.max_ms)
    }

    /// Approximate quantile (`q` in `[0, 1]`): the upper bound of the
    /// bucket containing the q-th recorded value, clamped to the observed
    /// maximum. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return None;
        }
        let rank = ((self.total as f64 * q).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(SimDuration::from_millis(
                    Self::bucket_upper(i).min(self.max_ms),
                ));
            }
        }
        Some(self.max())
    }

    /// Approximate 99th-percentile duration.
    pub fn p99(&self) -> Option<SimDuration> {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &DurationHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max_ms = self.max_ms.max(other.max_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn empty_histogram() {
        let h = DurationHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.p99(), None);
    }

    #[test]
    fn records_and_counts() {
        let mut h = DurationHistogram::new();
        for v in [1, 10, 100, 1000, 10_000] {
            h.record(ms(v));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), ms(10_000));
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = DurationHistogram::new();
        for v in 1..=1000u64 {
            h.record(ms(v));
        }
        let p50 = h.quantile(0.5).unwrap().as_millis();
        // Bucketed: the median (500) lands in the [512, 1023] bucket's
        // upper region or the [256,511] bucket — allow the bracket.
        assert!((255..=1023).contains(&p50), "p50 = {p50}");
        let p99 = h.p99().unwrap().as_millis();
        assert!((478..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0).unwrap(), ms(1000));
    }

    #[test]
    fn quantile_upper_bound_clamps_to_max() {
        let mut h = DurationHistogram::new();
        h.record(ms(5)); // bucket [4,7]
        assert_eq!(h.quantile(0.5).unwrap(), ms(5), "clamped to observed max");
    }

    #[test]
    fn huge_durations_saturate_last_bucket() {
        let mut h = DurationHistogram::new();
        h.record(SimDuration::from_secs(100_000));
        assert_eq!(h.count(), 1);
        assert_eq!(h.p99().unwrap(), SimDuration::from_secs(100_000));
    }

    #[test]
    fn merge_combines() {
        let mut a = DurationHistogram::new();
        let mut b = DurationHistogram::new();
        a.record(ms(10));
        b.record(ms(10_000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), ms(10_000));
        assert!(a.p99().unwrap() >= ms(8192));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_range_checked() {
        DurationHistogram::new().quantile(1.5);
    }
}
