//! Deterministic discrete-time simulation substrate for the M3 reproduction.
//!
//! Every other crate in the workspace builds on this one. It provides:
//!
//! - [`clock`]: millisecond-resolution simulated time ([`SimTime`],
//!   [`SimDuration`]) with no dependency on wall-clock time.
//! - [`rng`]: a seedable, splittable pseudo-random number generator
//!   ([`SimRng`]) so every experiment is reproducible bit-for-bit.
//! - [`queue`]: a stable-order future-event queue ([`EventQueue`]) used for
//!   delayed application starts, monitor polls and timeouts.
//! - [`metrics`]: counters, gauges and time series used to capture the memory
//!   profiles that the paper's figures plot.
//! - [`trace`]: a structured event log (signals sent, GCs performed,
//!   evictions, ...) used by tests and the experiment harness.
//! - [`stats`]: small numeric helpers (mean, percentiles, ratios) shared by
//!   the benchmark harness.
//! - [`units`]: byte-size constants and pretty-printing.
//!
//! The simulation style is *time-stepped co-simulation*: a world object owns
//! the kernel and all processes, and advances them tick by tick. This crate
//! deliberately contains no `Rc`/`RefCell` world plumbing — it only provides
//! the deterministic building blocks, keeping ownership simple in the layers
//! above.

pub mod clock;
pub mod histogram;
pub mod metrics;
pub mod parallel;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod trace;
pub mod units;

pub use clock::{SimDuration, SimTime};
pub use histogram::DurationHistogram;
pub use metrics::{Counter, Gauge, TimeSeries};
pub use parallel::{parallel_map, worker_threads};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use trace::{
    CandidateInfo, EvictReason, GcLayer, PacketBucket, SigKind, ThresholdSide, TraceData,
    TraceEvent, TraceLog, TraceZone,
};
