//! Typed end-to-end event tracing.
//!
//! Tests, the experiment harness and the conformance oracle assert on *what
//! happened* (a young GC ran before Spark evicted; the monitor signalled
//! exactly the processes Algorithm 1 selected) rather than scraping logs.
//! Components append [`TraceEvent`]s to a shared [`TraceLog`]; each event
//! carries a typed [`TraceData`] payload so a replay oracle can recompute
//! the paper's formulas from the recorded inputs instead of parsing strings.
//!
//! Every payload maps to a stable dotted *kind* string (e.g. `"gc.young"`,
//! `"signal.high"`, `"evict.blocks"`); the prefix-query helpers
//! ([`TraceLog::of_kind`], [`TraceLog::happened_before`], ...) operate on
//! those kinds, so existing string-based assertions keep working.

use crate::clock::SimTime;
use serde::{map_field, Content, DeError, Deserialize, Serialize};

/// Monitor zone as recorded in a trace (mirrors `m3-core`'s `Zone` without
/// depending on it; `m3-sim` sits below `m3-core` in the crate stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceZone {
    /// Usage below the low threshold.
    Green,
    /// Usage between the low and high thresholds.
    Yellow,
    /// Usage between the high threshold and the top of memory.
    Red,
    /// Usage above the top of memory.
    AboveTop,
}

/// Which notification a signal event carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SigKind {
    /// Low-threshold (early-warning) signal.
    Low,
    /// High-threshold (severe-pressure) signal.
    High,
    /// Kill signal.
    Kill,
}

/// Which threshold a `ThresholdAdjust` event moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThresholdSide {
    /// The low threshold.
    Low,
    /// The high threshold.
    High,
}

/// Why an application-layer eviction ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictReason {
    /// Responding to a low-threshold signal (Table 1).
    LowSignal,
    /// Responding to a high-threshold signal (Table 1).
    HighSignal,
    /// Making room under a static capacity limit.
    Capacity,
    /// A delayed allocation evicting to satisfy itself (§4.2).
    AdmissionDelay,
}

/// Which collection a `Gc` event reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GcLayer {
    /// JVM young collection.
    Young,
    /// JVM mixed collection.
    Mixed,
    /// JVM full collection.
    Full,
    /// Go runtime GC cycle.
    Go,
}

/// Ordered work bucket of the reclamation packet scheduler. A bucket opens
/// only after every packet in all earlier buckets has finished, encoding the
/// paper's top-down order at packet granularity: upper layers mark bytes
/// dead (`Prepare`), runtimes trace and sweep them (`Collect`), and madvise
/// batches return the freed pages (`Release`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PacketBucket {
    /// Application/framework-layer work that marks bytes dead: block-cache
    /// and slab evictions (Table 1's upper rows).
    Prepare,
    /// Runtime-layer collection work: young scan/evacuate, old-generation
    /// trace, full compaction, Go mark/sweep.
    Collect,
    /// OS-layer release work: batched `madvise` of the pages the collection
    /// freed.
    Release,
}

impl PacketBucket {
    /// All buckets in opening order.
    pub const ALL: [PacketBucket; 3] = [
        PacketBucket::Prepare,
        PacketBucket::Collect,
        PacketBucket::Release,
    ];

    /// Stable name used in traces and reports.
    pub fn name(&self) -> &'static str {
        match self {
            PacketBucket::Prepare => "prepare",
            PacketBucket::Collect => "collect",
            PacketBucket::Release => "release",
        }
    }
}

/// Job criticality class for mixed-criticality scheduling (SARA/MURS:
/// pressure decisions must respect criticality, not just memory posture).
///
/// Lives in `m3-sim` so trace events, the monitor, the fleet scheduler and
/// the oracle all share one definition. The derived `Ord` runs from least to
/// most expendable is NOT implied — use [`Criticality::expendability`] for
/// victim ordering.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum Criticality {
    /// Latency-critical serving tier: killed/evicted last, never disturbed
    /// by early-warning reclamation.
    LatencyCritical,
    /// Ordinary job: the paper's behaviour, unchanged.
    #[default]
    Standard,
    /// Batch analytics: absorbs pressure first (earlier/larger evictions,
    /// first in the kill ordering, preemptible by critical admissions).
    Batch,
}

impl Criticality {
    /// All classes, least expendable first.
    pub const ALL: [Criticality; 3] = [
        Criticality::LatencyCritical,
        Criticality::Standard,
        Criticality::Batch,
    ];

    /// Stable name used in traces and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Criticality::LatencyCritical => "latency_critical",
            Criticality::Standard => "standard",
            Criticality::Batch => "batch",
        }
    }

    /// Parses a stable name back into a class.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "latency_critical" => Some(Criticality::LatencyCritical),
            "standard" => Some(Criticality::Standard),
            "batch" => Some(Criticality::Batch),
            _ => None,
        }
    }

    /// How readily this class is sacrificed under pressure: higher values
    /// are killed, evicted, and preempted before lower ones.
    pub fn expendability(&self) -> u8 {
        match self {
            Criticality::LatencyCritical => 0,
            Criticality::Standard => 1,
            Criticality::Batch => 2,
        }
    }
}

/// One Algorithm 1 candidate as the monitor saw it at selection time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidateInfo {
    /// The candidate process.
    pub pid: u64,
    /// When the process was spawned, ms.
    pub spawned_at_ms: u64,
    /// Resident set size at selection time, bytes.
    pub rss: u64,
    /// Expected reclamation on a high signal, bytes.
    pub expected_reclaim: u64,
    /// The candidate's criticality class.
    pub crit: Criticality,
}

/// The typed payload of one traced event.
///
/// Each variant serializes as a flat map whose `"kind"` entry is the stable
/// dotted string returned by [`TraceData::kind`]; signal, threshold, GC and
/// allocation-gate variants encode their discriminating sub-field in the
/// kind itself (`"signal.high"`, `"gc.young"`, `"alloc.delay"`, ...).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceData {
    /// A process was spawned.
    ProcSpawn {
        /// Display name of the process.
        name: String,
    },
    /// A process was respawned reusing an existing pid.
    ProcRespawn {
        /// Display name of the process.
        name: String,
    },
    /// A process exited normally.
    ProcExit,
    /// A process was killed.
    ProcKill,
    /// The kernel OOM killer chose this victim.
    OomKill,
    /// A threshold/kill signal was delivered to the process.
    SignalSent {
        /// Which signal.
        sig: SigKind,
    },
    /// A signal was dropped by a faulty bus.
    SignalDropped {
        /// Which signal.
        sig: SigKind,
    },
    /// A signal was delayed by a laggy bus.
    SignalDelayed {
        /// Which signal.
        sig: SigKind,
    },
    /// Memory was returned to the OS (`madvise(MADV_FREE)`-equivalent).
    Madvise {
        /// Bytes actually released.
        bytes: u64,
    },
    /// One monitor poll completed (§5): the zone it classified, the
    /// thresholds in force, and every pid it signalled or killed this poll.
    MonitorPoll {
        /// The zone the poll classified usage into.
        zone: TraceZone,
        /// Memory usage observed, bytes.
        used: u64,
        /// Low threshold after this poll's adjustment, bytes.
        low: u64,
        /// High threshold after this poll's adjustment, bytes.
        high: u64,
        /// True when the poll ran on stale/degraded meminfo.
        degraded: bool,
        /// Pids sent a low signal this poll, in send order.
        low_signalled: Vec<u64>,
        /// Pids sent a high signal this poll, in send order.
        high_signalled: Vec<u64>,
        /// Pids killed this poll, in kill order.
        killed: Vec<u64>,
    },
    /// The monitor's zone changed between polls.
    ZoneChange {
        /// Previous zone.
        from: TraceZone,
        /// New zone.
        to: TraceZone,
    },
    /// An adaptive threshold moved (§5.2).
    ThresholdAdjust {
        /// Which threshold moved.
        side: ThresholdSide,
        /// Value before, bytes.
        old: u64,
        /// Value after, bytes.
        new: u64,
    },
    /// Algorithm 1 ran (§5.1).
    Selection {
        /// The sort order used.
        order: String,
        /// Reclamation target, bytes.
        target: u64,
        /// True for the above-top signal-everyone escalation.
        all: bool,
        /// The unsorted candidate set the algorithm saw.
        candidates: Vec<CandidateInfo>,
        /// The selected pids, in signalling order.
        selected: Vec<u64>,
    },
    /// The watchdog suppressed a high signal during backoff cooldown (§6).
    WatchdogSkip,
    /// The watchdog escalated an unresponsive process into backoff.
    WatchdogEscalate {
        /// The new backoff length, polls.
        backoff: u64,
    },
    /// The watchdog re-signalled after a full cooldown.
    WatchdogResignal {
        /// The backoff length that just elapsed, polls.
        backoff: u64,
    },
    /// The monitor killed a process to get back under top (§6).
    MonitorKill {
        /// The victim's RSS at kill time, bytes.
        rss: u64,
    },
    /// An application signal handler started.
    HandlerStart {
        /// Which signal it is handling.
        sig: SigKind,
    },
    /// An application signal handler finished.
    HandlerEnd {
        /// Which signal it handled.
        sig: SigKind,
        /// Handler wall time (the §4.2 epoch length), ms.
        duration_ms: u64,
        /// Bytes the whole stack returned to the OS.
        returned: u64,
    },
    /// A framework-layer block-cache eviction (Spark, Table 1).
    EvictBlocks {
        /// Cached blocks before eviction.
        before: u64,
        /// Blocks evicted.
        evicted: u64,
        /// Bytes freed (marked dead in the layer below).
        bytes: u64,
        /// Why the eviction ran.
        reason: EvictReason,
    },
    /// A cache-layer slab eviction (Go-Cache/Memcached, Table 1).
    EvictSlabs {
        /// Resident slabs before eviction.
        before: u64,
        /// Slabs evicted.
        evicted: u64,
        /// Items evicted.
        items: u64,
        /// Bytes freed (marked dead in the layer below).
        bytes: u64,
        /// Why the eviction ran.
        reason: EvictReason,
    },
    /// Per-slab-class detail of a signal-driven cache eviction; a group of
    /// these immediately precedes the aggregate [`TraceData::EvictSlabs`]
    /// they sum to (key-granular runs only).
    EvictClass {
        /// Chunk size of the slab class, bytes.
        chunk: u64,
        /// Slabs the class held before eviction.
        before: u64,
        /// Slabs evicted from the class.
        evicted: u64,
        /// Live items removed with them.
        items: u64,
        /// Bytes freed (whole slabs).
        bytes: u64,
        /// Why the eviction ran.
        reason: EvictReason,
    },
    /// Cumulative key-granular cache statistics (trace workloads): emitted
    /// periodically during the measured phase and once at completion.
    CacheStats {
        /// Requests completed.
        requests: u64,
        /// GET hits.
        hits: u64,
        /// GET misses (including negative lookups).
        misses: u64,
        /// Negative lookups among the misses.
        negative: u64,
        /// SETs applied.
        sets: u64,
        /// DELETEs applied.
        deletes: u64,
        /// Inserts delayed by the adaptive protocol.
        delayed: u64,
        /// Items evicted by capacity pressure.
        capacity_items: u64,
        /// Resident bytes (whole slabs).
        resident_bytes: u64,
        /// Live items.
        live_items: u64,
        /// Simulated milliseconds since the measured phase began.
        serve_ms: u64,
    },
    /// A runtime-layer collection ran.
    Gc {
        /// Which collection.
        layer: GcLayer,
        /// Bytes freed inside the heap.
        reclaimed: u64,
        /// Bytes returned to the OS by this collection.
        returned: u64,
        /// Stop-the-world pause charged to the mutator, ms.
        pause_ms: u64,
    },
    /// One adaptive-allocation gate decision (§4.2, per-allocation form).
    AllocGate {
        /// True if this allocation was delayed (evict first).
        delayed: bool,
        /// The allow rate at decision time.
        rate: f64,
        /// Time since the last high signal, ms.
        elapsed_ms: u64,
        /// Epoch length (time handling the last high signal), ms.
        epoch_ms: u64,
        /// `NUM_epochs` of the protocol instance.
        num_epochs: u32,
        /// Recovery curve name (`"Linear"`, `"Exponential"`, `"Step"`).
        curve: String,
    },
    /// One adaptive-allocation batched gate decision (§4.2, batched form).
    AllocBatch {
        /// Allocation attempts in the batch.
        n: u64,
        /// How many of them were delayed.
        delayed: u64,
        /// The allow rate at decision time.
        rate: f64,
        /// Time since the last high signal, ms.
        elapsed_ms: u64,
        /// Epoch length, ms.
        epoch_ms: u64,
        /// `NUM_epochs` of the protocol instance.
        num_epochs: u32,
        /// Recovery curve name.
        curve: String,
    },
    /// The fleet scheduler probed one node's live pressure summary (the
    /// event's `pid` is the node index).
    FleetPressure {
        /// The probed node.
        node: u64,
        /// The node's zone at probe time.
        zone: TraceZone,
        /// Committed bytes observed on the node.
        used: u64,
        /// Summed demand estimates of the node's assigned unfinished jobs
        /// (what admission ranks against when it exceeds `used`).
        reserved: u64,
        /// The node's high threshold at probe time.
        high: u64,
        /// The node's top of memory.
        top: u64,
        /// Watchdog escalations accumulated on the node so far.
        escalations: u64,
    },
    /// The fleet scheduler admitted a job and placed it onto a node (the
    /// event's `pid` is the job index).
    FleetPlace {
        /// The placed job (scenario schedule index).
        job: u64,
        /// The target node.
        node: u64,
        /// The node's committed bytes at admission time.
        used: u64,
        /// The job's estimated peak demand, bytes.
        demand: u64,
        /// The target node's top of memory.
        top: u64,
    },
    /// Admission control found no feasible node and deferred the job.
    FleetDefer {
        /// The deferred job.
        job: u64,
        /// How many admission attempts the job has made so far.
        attempt: u64,
        /// When the job will retry, ms.
        retry_at_ms: u64,
    },
    /// Red-zone rebalancing migrated a job off a node armed beyond the
    /// grace window.
    FleetMigrate {
        /// The migrated job.
        job: u64,
        /// The armed source node.
        from: u64,
        /// The target node.
        to: u64,
        /// How long the source had been observed red, ms.
        red_for_ms: u64,
    },
    /// A job exhausted its deferral budget and was reported unplaceable.
    FleetGiveUp {
        /// The rejected job.
        job: u64,
        /// Admission attempts made before giving up.
        attempts: u64,
        /// The job's estimated peak demand, bytes (lets the oracle check no
        /// probed node could in fact have admitted the job).
        demand: u64,
    },
    /// A whole node crashed; every job resident on it died mid-run (the
    /// event's `pid` is the node index).
    FleetNodeLost {
        /// The dead node.
        node: u64,
        /// Jobs that were alive on the node when it died.
        jobs_lost: u64,
    },
    /// A job lost to node death was re-queued for placement (`requeued`)
    /// or found its retry budget exhausted (the event's `pid` is the job).
    FleetReschedule {
        /// The lost job.
        job: u64,
        /// The node that died under it.
        from: u64,
        /// Node-loss incidents this job has now survived.
        retries: u64,
        /// When the job re-enters the arrival queue, ms (0 when not
        /// requeued).
        retry_at_ms: u64,
        /// True if the job re-enters the queue; false if the retry budget
        /// is exhausted and a give-up record follows.
        requeued: bool,
    },
    /// A node's probe endpoint health changed its quarantine state (the
    /// event's `pid` is the node index).
    FleetQuarantine {
        /// The node entering or leaving quarantine.
        node: u64,
        /// True on quarantine entry, false on re-admission.
        entered: bool,
        /// The probe streak that triggered the transition: consecutive
        /// failures on entry, consecutive healthy probes on exit.
        streak: u64,
    },
    /// The fleet scheduler recorded a job's criticality class and latency
    /// SLO at submission time (the event's `pid` is the job index).
    SchedClassAssign {
        /// The classified job.
        job: u64,
        /// Its criticality class.
        crit: Criticality,
        /// Its latency SLO, ms (0 = no SLO).
        slo_ms: u64,
    },
    /// A critical admission preempted a lower-criticality resident's
    /// reservation instead of deferring (the event's `pid` is the admitted
    /// job).
    SchedClassPreempt {
        /// The admitted job.
        job: u64,
        /// The admitted job's class.
        crit: Criticality,
        /// The preempted resident.
        victim: u64,
        /// The preempted resident's class.
        victim_crit: Criticality,
        /// The node the preemption happened on.
        node: u64,
    },
    /// Per-job SLO accounting emitted when a job leaves the fleet (the
    /// event's `pid` is the job index).
    SchedClassSlo {
        /// The finished job.
        job: u64,
        /// Its criticality class.
        crit: Criticality,
        /// Its latency SLO, ms (0 = no SLO).
        slo_ms: u64,
        /// Wall time from submission to completion, ms.
        runtime_ms: u64,
        /// Time spent stalled (deferred/queued) rather than running, ms.
        stall_ms: u64,
        /// Whether the SLO was met (vacuously true without one).
        met: bool,
    },
    /// The monitor killed a process with criticality context: the victim's
    /// class and the not-yet-killed candidate set it was chosen from (the
    /// event's `pid` is the victim; one event per kill, paired with the
    /// plain `monitor.kill`).
    KillClass {
        /// The victim's criticality class.
        crit: Criticality,
        /// The alive candidates the victim was chosen from, victim included.
        candidates: Vec<CandidateInfo>,
    },
    /// A reclamation work packet entered its bucket (one drain's packets
    /// are all enqueued before any executes; ids are drain-local).
    PacketEnqueue {
        /// Drain-local packet id.
        packet: u64,
        /// Stable packet-kind name (`"evict_blocks"`, `"gc_young"`, ...).
        pkind: String,
        /// The bucket the packet was placed in.
        bucket: PacketBucket,
        /// Ids of packets that must finish before this one may start.
        deps: Vec<u64>,
    },
    /// A reclamation work packet began executing.
    PacketStart {
        /// Drain-local packet id.
        packet: u64,
        /// The packet's bucket.
        bucket: PacketBucket,
        /// The drain wave (execution round) the packet ran in.
        wave: u64,
    },
    /// A reclamation work packet finished executing.
    PacketFinish {
        /// Drain-local packet id.
        packet: u64,
        /// The packet's bucket.
        bucket: PacketBucket,
        /// Bytes the packet reclaimed in its own layer (evicted or freed
        /// inside the heap); sums to the aggregate `evict.*`/`gc.*` bytes
        /// of the same handler window.
        bytes: u64,
        /// Bytes the packet returned to the OS (madvise); sums to the
        /// window's `mem.madvise` bytes.
        returned: u64,
        /// Execution cost charged to the mutator, ms.
        duration_ms: u64,
    },
    /// A ready bucket held a packet back because a dependency had not
    /// finished yet (the packet waits at least one more wave).
    PacketStall {
        /// Drain-local packet id of the stalled packet.
        packet: u64,
        /// The unfinished dependency it is waiting on.
        waiting_on: u64,
        /// The wave that skipped it.
        wave: u64,
    },
}

impl TraceData {
    /// The stable dotted kind string for this payload.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceData::ProcSpawn { .. } => "proc.spawn",
            TraceData::ProcRespawn { .. } => "proc.respawn",
            TraceData::ProcExit => "proc.exit",
            TraceData::ProcKill => "proc.kill",
            TraceData::OomKill => "oom.kill",
            TraceData::SignalSent { sig } => match sig {
                SigKind::Low => "signal.low",
                SigKind::High => "signal.high",
                SigKind::Kill => "signal.kill",
            },
            TraceData::SignalDropped { .. } => "signal.dropped",
            TraceData::SignalDelayed { .. } => "signal.delayed",
            TraceData::Madvise { .. } => "mem.madvise",
            TraceData::MonitorPoll { .. } => "monitor.poll",
            TraceData::ZoneChange { .. } => "monitor.zone",
            TraceData::ThresholdAdjust { side, .. } => match side {
                ThresholdSide::Low => "threshold.adjust.low",
                ThresholdSide::High => "threshold.adjust.high",
            },
            TraceData::Selection { .. } => "monitor.select",
            TraceData::WatchdogSkip => "watchdog.skip",
            TraceData::WatchdogEscalate { .. } => "watchdog.escalate",
            TraceData::WatchdogResignal { .. } => "watchdog.resignal",
            TraceData::MonitorKill { .. } => "monitor.kill",
            TraceData::HandlerStart { .. } => "handler.start",
            TraceData::HandlerEnd { .. } => "handler.end",
            TraceData::EvictBlocks { .. } => "evict.blocks",
            TraceData::EvictSlabs { .. } => "evict.slabs",
            TraceData::EvictClass { .. } => "evict.class",
            TraceData::CacheStats { .. } => "cache.stats",
            TraceData::Gc { layer, .. } => match layer {
                GcLayer::Young => "gc.young",
                GcLayer::Mixed => "gc.mixed",
                GcLayer::Full => "gc.full",
                GcLayer::Go => "gc.go",
            },
            TraceData::AllocGate { delayed, .. } => {
                if *delayed {
                    "alloc.delay"
                } else {
                    "alloc.admit"
                }
            }
            TraceData::AllocBatch { .. } => "alloc.batch",
            TraceData::FleetPressure { .. } => "fleet.pressure",
            TraceData::FleetPlace { .. } => "fleet.place",
            TraceData::FleetDefer { .. } => "fleet.defer",
            TraceData::FleetMigrate { .. } => "fleet.migrate",
            TraceData::FleetGiveUp { .. } => "fleet.giveup",
            TraceData::FleetNodeLost { .. } => "fleet.node_lost",
            TraceData::FleetReschedule { .. } => "fleet.reschedule",
            TraceData::FleetQuarantine { .. } => "fleet.quarantine",
            TraceData::SchedClassAssign { .. } => "sched.class.assign",
            TraceData::SchedClassPreempt { .. } => "sched.class.preempt",
            TraceData::SchedClassSlo { .. } => "sched.class.slo",
            TraceData::KillClass { .. } => "kill.class",
            TraceData::PacketEnqueue { .. } => "reclaim.packet.enqueue",
            TraceData::PacketStart { .. } => "reclaim.packet.start",
            TraceData::PacketFinish { .. } => "reclaim.packet.finish",
            TraceData::PacketStall { .. } => "reclaim.packet.stall",
        }
    }

    /// The payload's named fields, in declaration order.
    fn fields(&self) -> Vec<(String, Content)> {
        fn f(name: &str, v: Content) -> (String, Content) {
            (name.to_string(), v)
        }
        match self {
            TraceData::ProcSpawn { name } | TraceData::ProcRespawn { name } => {
                vec![f("name", name.serialize())]
            }
            TraceData::ProcExit
            | TraceData::ProcKill
            | TraceData::OomKill
            | TraceData::WatchdogSkip => vec![],
            TraceData::SignalSent { sig }
            | TraceData::SignalDropped { sig }
            | TraceData::SignalDelayed { sig }
            | TraceData::HandlerStart { sig } => vec![f("sig", sig.serialize())],
            TraceData::Madvise { bytes } => vec![f("bytes", bytes.serialize())],
            TraceData::MonitorPoll {
                zone,
                used,
                low,
                high,
                degraded,
                low_signalled,
                high_signalled,
                killed,
            } => vec![
                f("zone", zone.serialize()),
                f("used", used.serialize()),
                f("low", low.serialize()),
                f("high", high.serialize()),
                f("degraded", degraded.serialize()),
                f("low_signalled", low_signalled.serialize()),
                f("high_signalled", high_signalled.serialize()),
                f("killed", killed.serialize()),
            ],
            TraceData::ZoneChange { from, to } => {
                vec![f("from", from.serialize()), f("to", to.serialize())]
            }
            TraceData::ThresholdAdjust { side, old, new } => vec![
                f("side", side.serialize()),
                f("old", old.serialize()),
                f("new", new.serialize()),
            ],
            TraceData::Selection {
                order,
                target,
                all,
                candidates,
                selected,
            } => vec![
                f("order", order.serialize()),
                f("target", target.serialize()),
                f("all", all.serialize()),
                f("candidates", candidates.serialize()),
                f("selected", selected.serialize()),
            ],
            TraceData::WatchdogEscalate { backoff } | TraceData::WatchdogResignal { backoff } => {
                vec![f("backoff", backoff.serialize())]
            }
            TraceData::MonitorKill { rss } => vec![f("rss", rss.serialize())],
            TraceData::HandlerEnd {
                sig,
                duration_ms,
                returned,
            } => vec![
                f("sig", sig.serialize()),
                f("duration_ms", duration_ms.serialize()),
                f("returned", returned.serialize()),
            ],
            TraceData::EvictBlocks {
                before,
                evicted,
                bytes,
                reason,
            } => vec![
                f("before", before.serialize()),
                f("evicted", evicted.serialize()),
                f("bytes", bytes.serialize()),
                f("reason", reason.serialize()),
            ],
            TraceData::EvictSlabs {
                before,
                evicted,
                items,
                bytes,
                reason,
            } => vec![
                f("before", before.serialize()),
                f("evicted", evicted.serialize()),
                f("items", items.serialize()),
                f("bytes", bytes.serialize()),
                f("reason", reason.serialize()),
            ],
            TraceData::EvictClass {
                chunk,
                before,
                evicted,
                items,
                bytes,
                reason,
            } => vec![
                f("chunk", chunk.serialize()),
                f("before", before.serialize()),
                f("evicted", evicted.serialize()),
                f("items", items.serialize()),
                f("bytes", bytes.serialize()),
                f("reason", reason.serialize()),
            ],
            TraceData::CacheStats {
                requests,
                hits,
                misses,
                negative,
                sets,
                deletes,
                delayed,
                capacity_items,
                resident_bytes,
                live_items,
                serve_ms,
            } => vec![
                f("requests", requests.serialize()),
                f("hits", hits.serialize()),
                f("misses", misses.serialize()),
                f("negative", negative.serialize()),
                f("sets", sets.serialize()),
                f("deletes", deletes.serialize()),
                f("delayed", delayed.serialize()),
                f("capacity_items", capacity_items.serialize()),
                f("resident_bytes", resident_bytes.serialize()),
                f("live_items", live_items.serialize()),
                f("serve_ms", serve_ms.serialize()),
            ],
            TraceData::Gc {
                layer,
                reclaimed,
                returned,
                pause_ms,
            } => vec![
                f("layer", layer.serialize()),
                f("reclaimed", reclaimed.serialize()),
                f("returned", returned.serialize()),
                f("pause_ms", pause_ms.serialize()),
            ],
            TraceData::AllocGate {
                delayed,
                rate,
                elapsed_ms,
                epoch_ms,
                num_epochs,
                curve,
            } => vec![
                f("delayed", delayed.serialize()),
                f("rate", rate.serialize()),
                f("elapsed_ms", elapsed_ms.serialize()),
                f("epoch_ms", epoch_ms.serialize()),
                f("num_epochs", num_epochs.serialize()),
                f("curve", curve.serialize()),
            ],
            TraceData::AllocBatch {
                n,
                delayed,
                rate,
                elapsed_ms,
                epoch_ms,
                num_epochs,
                curve,
            } => vec![
                f("n", n.serialize()),
                f("delayed", delayed.serialize()),
                f("rate", rate.serialize()),
                f("elapsed_ms", elapsed_ms.serialize()),
                f("epoch_ms", epoch_ms.serialize()),
                f("num_epochs", num_epochs.serialize()),
                f("curve", curve.serialize()),
            ],
            TraceData::FleetPressure {
                node,
                zone,
                used,
                reserved,
                high,
                top,
                escalations,
            } => vec![
                f("node", node.serialize()),
                f("zone", zone.serialize()),
                f("used", used.serialize()),
                f("reserved", reserved.serialize()),
                f("high", high.serialize()),
                f("top", top.serialize()),
                f("escalations", escalations.serialize()),
            ],
            TraceData::FleetPlace {
                job,
                node,
                used,
                demand,
                top,
            } => vec![
                f("job", job.serialize()),
                f("node", node.serialize()),
                f("used", used.serialize()),
                f("demand", demand.serialize()),
                f("top", top.serialize()),
            ],
            TraceData::FleetDefer {
                job,
                attempt,
                retry_at_ms,
            } => vec![
                f("job", job.serialize()),
                f("attempt", attempt.serialize()),
                f("retry_at_ms", retry_at_ms.serialize()),
            ],
            TraceData::FleetMigrate {
                job,
                from,
                to,
                red_for_ms,
            } => vec![
                f("job", job.serialize()),
                f("from", from.serialize()),
                f("to", to.serialize()),
                f("red_for_ms", red_for_ms.serialize()),
            ],
            TraceData::FleetGiveUp {
                job,
                attempts,
                demand,
            } => vec![
                f("job", job.serialize()),
                f("attempts", attempts.serialize()),
                f("demand", demand.serialize()),
            ],
            TraceData::FleetNodeLost { node, jobs_lost } => vec![
                f("node", node.serialize()),
                f("jobs_lost", jobs_lost.serialize()),
            ],
            TraceData::FleetReschedule {
                job,
                from,
                retries,
                retry_at_ms,
                requeued,
            } => vec![
                f("job", job.serialize()),
                f("from", from.serialize()),
                f("retries", retries.serialize()),
                f("retry_at_ms", retry_at_ms.serialize()),
                f("requeued", requeued.serialize()),
            ],
            TraceData::FleetQuarantine {
                node,
                entered,
                streak,
            } => vec![
                f("node", node.serialize()),
                f("entered", entered.serialize()),
                f("streak", streak.serialize()),
            ],
            TraceData::SchedClassAssign { job, crit, slo_ms } => vec![
                f("job", job.serialize()),
                f("crit", crit.serialize()),
                f("slo_ms", slo_ms.serialize()),
            ],
            TraceData::SchedClassPreempt {
                job,
                crit,
                victim,
                victim_crit,
                node,
            } => vec![
                f("job", job.serialize()),
                f("crit", crit.serialize()),
                f("victim", victim.serialize()),
                f("victim_crit", victim_crit.serialize()),
                f("node", node.serialize()),
            ],
            TraceData::SchedClassSlo {
                job,
                crit,
                slo_ms,
                runtime_ms,
                stall_ms,
                met,
            } => vec![
                f("job", job.serialize()),
                f("crit", crit.serialize()),
                f("slo_ms", slo_ms.serialize()),
                f("runtime_ms", runtime_ms.serialize()),
                f("stall_ms", stall_ms.serialize()),
                f("met", met.serialize()),
            ],
            TraceData::KillClass { crit, candidates } => vec![
                f("crit", crit.serialize()),
                f("candidates", candidates.serialize()),
            ],
            TraceData::PacketEnqueue {
                packet,
                pkind,
                bucket,
                deps,
            } => vec![
                f("packet", packet.serialize()),
                f("pkind", pkind.serialize()),
                f("bucket", bucket.serialize()),
                f("deps", deps.serialize()),
            ],
            TraceData::PacketStart {
                packet,
                bucket,
                wave,
            } => vec![
                f("packet", packet.serialize()),
                f("bucket", bucket.serialize()),
                f("wave", wave.serialize()),
            ],
            TraceData::PacketFinish {
                packet,
                bucket,
                bytes,
                returned,
                duration_ms,
            } => vec![
                f("packet", packet.serialize()),
                f("bucket", bucket.serialize()),
                f("bytes", bytes.serialize()),
                f("returned", returned.serialize()),
                f("duration_ms", duration_ms.serialize()),
            ],
            TraceData::PacketStall {
                packet,
                waiting_on,
                wave,
            } => vec![
                f("packet", packet.serialize()),
                f("waiting_on", waiting_on.serialize()),
                f("wave", wave.serialize()),
            ],
        }
    }
}

impl Serialize for TraceData {
    fn serialize(&self) -> Content {
        let mut m = vec![("kind".to_string(), Content::Str(self.kind().to_string()))];
        m.extend(self.fields());
        Content::Map(m)
    }
}

impl Deserialize for TraceData {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        let kind: String = map_field(c, "kind")?;
        let data = match kind.as_str() {
            "proc.spawn" => TraceData::ProcSpawn {
                name: map_field(c, "name")?,
            },
            "proc.respawn" => TraceData::ProcRespawn {
                name: map_field(c, "name")?,
            },
            "proc.exit" => TraceData::ProcExit,
            "proc.kill" => TraceData::ProcKill,
            "oom.kill" => TraceData::OomKill,
            "signal.low" | "signal.high" | "signal.kill" => TraceData::SignalSent {
                sig: map_field(c, "sig")?,
            },
            "signal.dropped" => TraceData::SignalDropped {
                sig: map_field(c, "sig")?,
            },
            "signal.delayed" => TraceData::SignalDelayed {
                sig: map_field(c, "sig")?,
            },
            "mem.madvise" => TraceData::Madvise {
                bytes: map_field(c, "bytes")?,
            },
            "monitor.poll" => TraceData::MonitorPoll {
                zone: map_field(c, "zone")?,
                used: map_field(c, "used")?,
                low: map_field(c, "low")?,
                high: map_field(c, "high")?,
                degraded: map_field(c, "degraded")?,
                low_signalled: map_field(c, "low_signalled")?,
                high_signalled: map_field(c, "high_signalled")?,
                killed: map_field(c, "killed")?,
            },
            "monitor.zone" => TraceData::ZoneChange {
                from: map_field(c, "from")?,
                to: map_field(c, "to")?,
            },
            "threshold.adjust.low" | "threshold.adjust.high" => TraceData::ThresholdAdjust {
                side: map_field(c, "side")?,
                old: map_field(c, "old")?,
                new: map_field(c, "new")?,
            },
            "monitor.select" => TraceData::Selection {
                order: map_field(c, "order")?,
                target: map_field(c, "target")?,
                all: map_field(c, "all")?,
                candidates: map_field(c, "candidates")?,
                selected: map_field(c, "selected")?,
            },
            "watchdog.skip" => TraceData::WatchdogSkip,
            "watchdog.escalate" => TraceData::WatchdogEscalate {
                backoff: map_field(c, "backoff")?,
            },
            "watchdog.resignal" => TraceData::WatchdogResignal {
                backoff: map_field(c, "backoff")?,
            },
            "monitor.kill" => TraceData::MonitorKill {
                rss: map_field(c, "rss")?,
            },
            "handler.start" => TraceData::HandlerStart {
                sig: map_field(c, "sig")?,
            },
            "handler.end" => TraceData::HandlerEnd {
                sig: map_field(c, "sig")?,
                duration_ms: map_field(c, "duration_ms")?,
                returned: map_field(c, "returned")?,
            },
            "evict.blocks" => TraceData::EvictBlocks {
                before: map_field(c, "before")?,
                evicted: map_field(c, "evicted")?,
                bytes: map_field(c, "bytes")?,
                reason: map_field(c, "reason")?,
            },
            "evict.slabs" => TraceData::EvictSlabs {
                before: map_field(c, "before")?,
                evicted: map_field(c, "evicted")?,
                items: map_field(c, "items")?,
                bytes: map_field(c, "bytes")?,
                reason: map_field(c, "reason")?,
            },
            "evict.class" => TraceData::EvictClass {
                chunk: map_field(c, "chunk")?,
                before: map_field(c, "before")?,
                evicted: map_field(c, "evicted")?,
                items: map_field(c, "items")?,
                bytes: map_field(c, "bytes")?,
                reason: map_field(c, "reason")?,
            },
            "cache.stats" => TraceData::CacheStats {
                requests: map_field(c, "requests")?,
                hits: map_field(c, "hits")?,
                misses: map_field(c, "misses")?,
                negative: map_field(c, "negative")?,
                sets: map_field(c, "sets")?,
                deletes: map_field(c, "deletes")?,
                delayed: map_field(c, "delayed")?,
                capacity_items: map_field(c, "capacity_items")?,
                resident_bytes: map_field(c, "resident_bytes")?,
                live_items: map_field(c, "live_items")?,
                serve_ms: map_field(c, "serve_ms")?,
            },
            "gc.young" | "gc.mixed" | "gc.full" | "gc.go" => TraceData::Gc {
                layer: map_field(c, "layer")?,
                reclaimed: map_field(c, "reclaimed")?,
                returned: map_field(c, "returned")?,
                pause_ms: map_field(c, "pause_ms")?,
            },
            "alloc.delay" | "alloc.admit" => TraceData::AllocGate {
                delayed: map_field(c, "delayed")?,
                rate: map_field(c, "rate")?,
                elapsed_ms: map_field(c, "elapsed_ms")?,
                epoch_ms: map_field(c, "epoch_ms")?,
                num_epochs: map_field(c, "num_epochs")?,
                curve: map_field(c, "curve")?,
            },
            "alloc.batch" => TraceData::AllocBatch {
                n: map_field(c, "n")?,
                delayed: map_field(c, "delayed")?,
                rate: map_field(c, "rate")?,
                elapsed_ms: map_field(c, "elapsed_ms")?,
                epoch_ms: map_field(c, "epoch_ms")?,
                num_epochs: map_field(c, "num_epochs")?,
                curve: map_field(c, "curve")?,
            },
            "fleet.pressure" => TraceData::FleetPressure {
                node: map_field(c, "node")?,
                zone: map_field(c, "zone")?,
                used: map_field(c, "used")?,
                reserved: map_field(c, "reserved")?,
                high: map_field(c, "high")?,
                top: map_field(c, "top")?,
                escalations: map_field(c, "escalations")?,
            },
            "fleet.place" => TraceData::FleetPlace {
                job: map_field(c, "job")?,
                node: map_field(c, "node")?,
                used: map_field(c, "used")?,
                demand: map_field(c, "demand")?,
                top: map_field(c, "top")?,
            },
            "fleet.defer" => TraceData::FleetDefer {
                job: map_field(c, "job")?,
                attempt: map_field(c, "attempt")?,
                retry_at_ms: map_field(c, "retry_at_ms")?,
            },
            "fleet.migrate" => TraceData::FleetMigrate {
                job: map_field(c, "job")?,
                from: map_field(c, "from")?,
                to: map_field(c, "to")?,
                red_for_ms: map_field(c, "red_for_ms")?,
            },
            "fleet.giveup" => TraceData::FleetGiveUp {
                job: map_field(c, "job")?,
                attempts: map_field(c, "attempts")?,
                demand: map_field(c, "demand")?,
            },
            "fleet.node_lost" => TraceData::FleetNodeLost {
                node: map_field(c, "node")?,
                jobs_lost: map_field(c, "jobs_lost")?,
            },
            "fleet.reschedule" => TraceData::FleetReschedule {
                job: map_field(c, "job")?,
                from: map_field(c, "from")?,
                retries: map_field(c, "retries")?,
                retry_at_ms: map_field(c, "retry_at_ms")?,
                requeued: map_field(c, "requeued")?,
            },
            "fleet.quarantine" => TraceData::FleetQuarantine {
                node: map_field(c, "node")?,
                entered: map_field(c, "entered")?,
                streak: map_field(c, "streak")?,
            },
            "sched.class.assign" => TraceData::SchedClassAssign {
                job: map_field(c, "job")?,
                crit: map_field(c, "crit")?,
                slo_ms: map_field(c, "slo_ms")?,
            },
            "sched.class.preempt" => TraceData::SchedClassPreempt {
                job: map_field(c, "job")?,
                crit: map_field(c, "crit")?,
                victim: map_field(c, "victim")?,
                victim_crit: map_field(c, "victim_crit")?,
                node: map_field(c, "node")?,
            },
            "sched.class.slo" => TraceData::SchedClassSlo {
                job: map_field(c, "job")?,
                crit: map_field(c, "crit")?,
                slo_ms: map_field(c, "slo_ms")?,
                runtime_ms: map_field(c, "runtime_ms")?,
                stall_ms: map_field(c, "stall_ms")?,
                met: map_field(c, "met")?,
            },
            "kill.class" => TraceData::KillClass {
                crit: map_field(c, "crit")?,
                candidates: map_field(c, "candidates")?,
            },
            "reclaim.packet.enqueue" => TraceData::PacketEnqueue {
                packet: map_field(c, "packet")?,
                pkind: map_field(c, "pkind")?,
                bucket: map_field(c, "bucket")?,
                deps: map_field(c, "deps")?,
            },
            "reclaim.packet.start" => TraceData::PacketStart {
                packet: map_field(c, "packet")?,
                bucket: map_field(c, "bucket")?,
                wave: map_field(c, "wave")?,
            },
            "reclaim.packet.finish" => TraceData::PacketFinish {
                packet: map_field(c, "packet")?,
                bucket: map_field(c, "bucket")?,
                bytes: map_field(c, "bytes")?,
                returned: map_field(c, "returned")?,
                duration_ms: map_field(c, "duration_ms")?,
            },
            "reclaim.packet.stall" => TraceData::PacketStall {
                packet: map_field(c, "packet")?,
                waiting_on: map_field(c, "waiting_on")?,
                wave: map_field(c, "wave")?,
            },
            other => return Err(DeError::new(format!("unknown trace kind `{other}`"))),
        };
        Ok(data)
    }
}

/// One traced event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When the event happened.
    pub t: SimTime,
    /// The process the event concerns (0 for system-wide events).
    pub pid: u64,
    /// The typed payload.
    pub data: TraceData,
}

impl TraceEvent {
    /// The event's stable dotted kind string.
    pub fn kind(&self) -> &'static str {
        self.data.kind()
    }
}

impl Serialize for TraceEvent {
    fn serialize(&self) -> Content {
        let mut m = vec![
            ("t".to_string(), self.t.serialize()),
            ("pid".to_string(), Content::U64(self.pid)),
        ];
        match self.data.serialize() {
            Content::Map(fields) => m.extend(fields),
            other => m.push(("data".to_string(), other)),
        }
        Content::Map(m)
    }
}

impl Deserialize for TraceEvent {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        Ok(TraceEvent {
            t: map_field(c, "t")?,
            pid: map_field(c, "pid")?,
            data: TraceData::deserialize(c)?,
        })
    }
}

/// An append-only in-memory event log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl TraceLog {
    /// Creates an enabled, empty log.
    pub fn new() -> Self {
        TraceLog {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a disabled log that drops all events (for benchmark runs).
    /// Its backing `Vec` never allocates: [`TraceLog::record`] and
    /// [`TraceLog::record_with`] return before touching it.
    pub fn disabled() -> Self {
        TraceLog {
            events: Vec::new(),
            enabled: false,
        }
    }

    /// True when events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an event (no-op when disabled).
    pub fn record(&mut self, t: SimTime, pid: u64, data: TraceData) {
        if self.enabled {
            self.events.push(TraceEvent { t, pid, data });
        }
    }

    /// Appends an event built lazily: `make` runs only when the log is
    /// enabled, so hot paths pay nothing for tracing when it is off.
    pub fn record_with(&mut self, t: SimTime, pid: u64, make: impl FnOnce() -> TraceData) {
        if self.enabled {
            self.events.push(TraceEvent {
                t,
                pid,
                data: make(),
            });
        }
    }

    /// All events, in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events whose kind starts with `prefix`.
    pub fn of_kind<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events
            .iter()
            .filter(move |e| e.kind().starts_with(prefix))
    }

    /// Number of events whose kind starts with `prefix`.
    pub fn count(&self, prefix: &str) -> usize {
        self.of_kind(prefix).count()
    }

    /// The first event of the given kind prefix, if any.
    pub fn first(&self, prefix: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.kind().starts_with(prefix))
    }

    /// The last event of the given kind prefix, if any.
    pub fn last(&self, prefix: &str) -> Option<&TraceEvent> {
        self.events
            .iter()
            .rev()
            .find(|e| e.kind().starts_with(prefix))
    }

    /// True if an event with kind-prefix `a` occurs before one with `b`.
    ///
    /// Returns `false` if either never occurs.
    pub fn happened_before(&self, a: &str, b: &str) -> bool {
        let ia = self.events.iter().position(|e| e.kind().starts_with(a));
        let ib = self.events.iter().position(|e| e.kind().starts_with(b));
        matches!((ia, ib), (Some(x), Some(y)) if x < y)
    }

    /// Discards all recorded events (keeps the enabled flag).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn gc(layer: GcLayer, reclaimed: u64) -> TraceData {
        TraceData::Gc {
            layer,
            reclaimed,
            returned: 0,
            pause_ms: 1,
        }
    }

    #[test]
    fn records_and_queries() {
        let mut log = TraceLog::new();
        log.record(t(1), 10, gc(GcLayer::Young, 5));
        log.record(t(2), 10, gc(GcLayer::Mixed, 9));
        log.record(t(3), 11, TraceData::SignalSent { sig: SigKind::High });
        assert_eq!(log.len(), 3);
        assert_eq!(log.count("gc"), 2);
        assert_eq!(log.count("gc.young"), 1);
        assert!(matches!(
            log.first("gc").unwrap().data,
            TraceData::Gc { reclaimed: 5, .. }
        ));
        assert_eq!(log.last("gc").unwrap().kind(), "gc.mixed");
        assert_eq!(log.count("signal.high"), 1);
    }

    #[test]
    fn ordering_queries() {
        let mut log = TraceLog::new();
        log.record(
            t(1),
            1,
            TraceData::EvictBlocks {
                before: 8,
                evicted: 1,
                bytes: 100,
                reason: EvictReason::HighSignal,
            },
        );
        log.record(t(2), 1, gc(GcLayer::Mixed, 50));
        assert!(log.happened_before("evict", "gc"));
        assert!(!log.happened_before("gc", "evict"));
        assert!(!log.happened_before("gc", "never"));
        assert!(!log.happened_before("never", "gc"));
    }

    #[test]
    fn disabled_log_drops_events_without_allocating() {
        let mut log = TraceLog::disabled();
        log.record(t(1), 1, gc(GcLayer::Young, 0));
        log.record_with(t(2), 1, || unreachable!("closure must not run"));
        assert!(log.is_empty());
        assert_eq!(log.events.capacity(), 0, "disabled log never allocates");
        assert!(!log.is_enabled());
    }

    #[test]
    fn record_with_is_lazy_only_when_disabled() {
        let mut log = TraceLog::new();
        log.record_with(t(1), 1, || gc(GcLayer::Go, 7));
        assert_eq!(log.len(), 1);
        assert_eq!(log.first("gc.go").unwrap().pid, 1);
    }

    #[test]
    fn clear_resets() {
        let mut log = TraceLog::new();
        log.record(t(1), 1, TraceData::ProcExit);
        log.clear();
        assert!(log.is_empty());
        log.record(t(2), 1, TraceData::ProcKill);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn kind_strings_are_stable() {
        let cases: Vec<(TraceData, &str)> = vec![
            (TraceData::ProcSpawn { name: "x".into() }, "proc.spawn"),
            (TraceData::SignalSent { sig: SigKind::Low }, "signal.low"),
            (TraceData::SignalSent { sig: SigKind::Kill }, "signal.kill"),
            (TraceData::Madvise { bytes: 1 }, "mem.madvise"),
            (
                TraceData::ThresholdAdjust {
                    side: ThresholdSide::High,
                    old: 1,
                    new: 2,
                },
                "threshold.adjust.high",
            ),
            (
                TraceData::EvictClass {
                    chunk: 1024,
                    before: 10,
                    evicted: 1,
                    items: 7,
                    bytes: 1 << 20,
                    reason: EvictReason::LowSignal,
                },
                "evict.class",
            ),
            (
                TraceData::CacheStats {
                    requests: 100,
                    hits: 90,
                    misses: 10,
                    negative: 5,
                    sets: 7,
                    deletes: 3,
                    delayed: 2,
                    capacity_items: 1,
                    resident_bytes: 1 << 20,
                    live_items: 42,
                    serve_ms: 1000,
                },
                "cache.stats",
            ),
            (gc(GcLayer::Full, 0), "gc.full"),
            (
                TraceData::AllocGate {
                    delayed: true,
                    rate: 0.5,
                    elapsed_ms: 1,
                    epoch_ms: 2,
                    num_epochs: 1,
                    curve: "Linear".into(),
                },
                "alloc.delay",
            ),
            (
                TraceData::FleetPressure {
                    node: 0,
                    zone: TraceZone::Green,
                    used: 1,
                    reserved: 4,
                    high: 2,
                    top: 3,
                    escalations: 0,
                },
                "fleet.pressure",
            ),
            (
                TraceData::FleetPlace {
                    job: 0,
                    node: 1,
                    used: 2,
                    demand: 3,
                    top: 4,
                },
                "fleet.place",
            ),
            (
                TraceData::FleetDefer {
                    job: 0,
                    attempt: 1,
                    retry_at_ms: 2,
                },
                "fleet.defer",
            ),
            (
                TraceData::FleetMigrate {
                    job: 0,
                    from: 1,
                    to: 2,
                    red_for_ms: 3,
                },
                "fleet.migrate",
            ),
            (
                TraceData::FleetGiveUp {
                    job: 0,
                    attempts: 3,
                    demand: 5,
                },
                "fleet.giveup",
            ),
            (
                TraceData::FleetNodeLost {
                    node: 4,
                    jobs_lost: 2,
                },
                "fleet.node_lost",
            ),
            (
                TraceData::FleetReschedule {
                    job: 0,
                    from: 4,
                    retries: 1,
                    retry_at_ms: 90_000,
                    requeued: true,
                },
                "fleet.reschedule",
            ),
            (
                TraceData::FleetQuarantine {
                    node: 4,
                    entered: true,
                    streak: 2,
                },
                "fleet.quarantine",
            ),
            (
                TraceData::SchedClassAssign {
                    job: 0,
                    crit: Criticality::LatencyCritical,
                    slo_ms: 5000,
                },
                "sched.class.assign",
            ),
            (
                TraceData::SchedClassPreempt {
                    job: 0,
                    crit: Criticality::LatencyCritical,
                    victim: 1,
                    victim_crit: Criticality::Batch,
                    node: 2,
                },
                "sched.class.preempt",
            ),
            (
                TraceData::SchedClassSlo {
                    job: 0,
                    crit: Criticality::Standard,
                    slo_ms: 0,
                    runtime_ms: 900,
                    stall_ms: 0,
                    met: true,
                },
                "sched.class.slo",
            ),
            (
                TraceData::KillClass {
                    crit: Criticality::Batch,
                    candidates: vec![],
                },
                "kill.class",
            ),
            (
                TraceData::PacketEnqueue {
                    packet: 0,
                    pkind: "evict_blocks".into(),
                    bucket: PacketBucket::Prepare,
                    deps: vec![],
                },
                "reclaim.packet.enqueue",
            ),
            (
                TraceData::PacketStart {
                    packet: 1,
                    bucket: PacketBucket::Collect,
                    wave: 1,
                },
                "reclaim.packet.start",
            ),
            (
                TraceData::PacketFinish {
                    packet: 1,
                    bucket: PacketBucket::Collect,
                    bytes: 1 << 20,
                    returned: 0,
                    duration_ms: 15,
                },
                "reclaim.packet.finish",
            ),
            (
                TraceData::PacketStall {
                    packet: 2,
                    waiting_on: 1,
                    wave: 1,
                },
                "reclaim.packet.stall",
            ),
        ];
        for (data, kind) in cases {
            assert_eq!(data.kind(), kind);
        }
    }

    #[test]
    fn criticality_names_round_trip_and_order_expendability() {
        for c in Criticality::ALL {
            assert_eq!(Criticality::from_name(c.name()), Some(c));
        }
        assert_eq!(Criticality::from_name("frobnicate"), None);
        assert_eq!(Criticality::default(), Criticality::Standard);
        assert!(
            Criticality::Batch.expendability() > Criticality::Standard.expendability()
                && Criticality::Standard.expendability()
                    > Criticality::LatencyCritical.expendability(),
            "batch dies first, latency-critical last"
        );
    }

    #[test]
    fn events_round_trip_through_serde() {
        let mut log = TraceLog::new();
        log.record(
            t(1),
            0,
            TraceData::MonitorPoll {
                zone: TraceZone::Red,
                used: 100,
                low: 50,
                high: 80,
                degraded: false,
                low_signalled: vec![],
                high_signalled: vec![3, 4],
                killed: vec![],
            },
        );
        log.record(
            t(2),
            0,
            TraceData::Selection {
                order: "NewestFirst".into(),
                target: 20,
                all: false,
                candidates: vec![CandidateInfo {
                    pid: 3,
                    spawned_at_ms: 0,
                    rss: 100,
                    expected_reclaim: 25,
                    crit: Criticality::Standard,
                }],
                selected: vec![3],
            },
        );
        log.record(
            t(3),
            3,
            TraceData::AllocBatch {
                n: 10,
                delayed: 4,
                rate: 0.6,
                elapsed_ms: 600,
                epoch_ms: 1000,
                num_epochs: 1,
                curve: "Linear".into(),
            },
        );
        log.record(
            t(4),
            0,
            TraceData::FleetPressure {
                node: 2,
                zone: TraceZone::Yellow,
                used: 10,
                reserved: 15,
                high: 20,
                top: 30,
                escalations: 1,
            },
        );
        log.record(
            t(5),
            0,
            TraceData::FleetPlace {
                job: 1,
                node: 2,
                used: 10,
                demand: 5,
                top: 30,
            },
        );
        log.record(
            t(6),
            0,
            TraceData::FleetMigrate {
                job: 1,
                from: 2,
                to: 0,
                red_for_ms: 9000,
            },
        );
        log.record(
            t(7),
            2,
            TraceData::FleetNodeLost {
                node: 2,
                jobs_lost: 1,
            },
        );
        log.record(
            t(8),
            1,
            TraceData::FleetReschedule {
                job: 1,
                from: 2,
                retries: 1,
                retry_at_ms: 9_500,
                requeued: true,
            },
        );
        log.record(
            t(9),
            0,
            TraceData::FleetQuarantine {
                node: 0,
                entered: false,
                streak: 3,
            },
        );
        log.record(
            t(10),
            1,
            TraceData::SchedClassAssign {
                job: 1,
                crit: Criticality::Batch,
                slo_ms: 0,
            },
        );
        log.record(
            t(11),
            0,
            TraceData::SchedClassPreempt {
                job: 0,
                crit: Criticality::LatencyCritical,
                victim: 1,
                victim_crit: Criticality::Batch,
                node: 2,
            },
        );
        log.record(
            t(12),
            0,
            TraceData::SchedClassSlo {
                job: 0,
                crit: Criticality::LatencyCritical,
                slo_ms: 4000,
                runtime_ms: 3500,
                stall_ms: 120,
                met: true,
            },
        );
        log.record(
            t(13),
            5,
            TraceData::KillClass {
                crit: Criticality::Batch,
                candidates: vec![CandidateInfo {
                    pid: 5,
                    spawned_at_ms: 100,
                    rss: 64,
                    expected_reclaim: 6,
                    crit: Criticality::Batch,
                }],
            },
        );
        log.record(
            t(14),
            3,
            TraceData::PacketEnqueue {
                packet: 2,
                pkind: "gc_old".into(),
                bucket: PacketBucket::Collect,
                deps: vec![1],
            },
        );
        log.record(
            t(14),
            3,
            TraceData::PacketStall {
                packet: 2,
                waiting_on: 1,
                wave: 0,
            },
        );
        log.record(
            t(14),
            3,
            TraceData::PacketStart {
                packet: 2,
                bucket: PacketBucket::Collect,
                wave: 1,
            },
        );
        log.record(
            t(14),
            3,
            TraceData::PacketFinish {
                packet: 2,
                bucket: PacketBucket::Collect,
                bytes: 4096,
                returned: 0,
                duration_ms: 7,
            },
        );
        let c = log.serialize();
        let back = TraceLog::deserialize(&c).expect("round trip");
        assert_eq!(back.len(), log.len());
        for (a, b) in log.events().iter().zip(back.events()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn serialized_event_is_flat_with_kind_first() {
        let ev = TraceEvent {
            t: t(5),
            pid: 7,
            data: TraceData::Madvise { bytes: 4096 },
        };
        let c = ev.serialize();
        let serde::Content::Map(entries) = &c else {
            panic!("expected map");
        };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["t", "pid", "kind", "bytes"]);
    }
}
