//! Structured event tracing.
//!
//! Tests and the experiment harness assert on *what happened* (a young GC ran
//! before Spark evicted; the monitor signalled exactly the selected
//! processes) rather than scraping logs. Components append [`TraceEvent`]s to
//! a shared [`TraceLog`], which offers simple query helpers.

use crate::clock::SimTime;
use serde::{Deserialize, Serialize};

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When the event happened.
    pub t: SimTime,
    /// The process the event concerns (0 for system-wide events).
    pub pid: u64,
    /// Event kind, e.g. `"gc.young"`, `"signal.high"`, `"evict.blocks"`.
    pub kind: String,
    /// Free-form detail (bytes reclaimed, block count, ...).
    pub detail: String,
}

/// An append-only in-memory event log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl TraceLog {
    /// Creates an enabled, empty log.
    pub fn new() -> Self {
        TraceLog {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a disabled log that drops all events (for benchmark runs).
    pub fn disabled() -> Self {
        TraceLog {
            events: Vec::new(),
            enabled: false,
        }
    }

    /// Appends an event (no-op when disabled).
    pub fn record(
        &mut self,
        t: SimTime,
        pid: u64,
        kind: impl Into<String>,
        detail: impl Into<String>,
    ) {
        if self.enabled {
            self.events.push(TraceEvent {
                t,
                pid,
                kind: kind.into(),
                detail: detail.into(),
            });
        }
    }

    /// All events, in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events whose kind starts with `prefix`.
    pub fn of_kind<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events
            .iter()
            .filter(move |e| e.kind.starts_with(prefix))
    }

    /// Number of events whose kind starts with `prefix`.
    pub fn count(&self, prefix: &str) -> usize {
        self.of_kind(prefix).count()
    }

    /// The first event of the given kind prefix, if any.
    pub fn first(&self, prefix: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.kind.starts_with(prefix))
    }

    /// The last event of the given kind prefix, if any.
    pub fn last(&self, prefix: &str) -> Option<&TraceEvent> {
        self.events
            .iter()
            .rev()
            .find(|e| e.kind.starts_with(prefix))
    }

    /// True if an event with kind-prefix `a` occurs before one with `b`.
    ///
    /// Returns `false` if either never occurs.
    pub fn happened_before(&self, a: &str, b: &str) -> bool {
        let ia = self.events.iter().position(|e| e.kind.starts_with(a));
        let ib = self.events.iter().position(|e| e.kind.starts_with(b));
        matches!((ia, ib), (Some(x), Some(y)) if x < y)
    }

    /// Discards all recorded events (keeps the enabled flag).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn records_and_queries() {
        let mut log = TraceLog::new();
        log.record(t(1), 10, "gc.young", "freed=5");
        log.record(t(2), 10, "gc.mixed", "freed=9");
        log.record(t(3), 11, "signal.high", "");
        assert_eq!(log.len(), 3);
        assert_eq!(log.count("gc"), 2);
        assert_eq!(log.count("gc.young"), 1);
        assert_eq!(log.first("gc").unwrap().detail, "freed=5");
        assert_eq!(log.last("gc").unwrap().kind, "gc.mixed");
    }

    #[test]
    fn ordering_queries() {
        let mut log = TraceLog::new();
        log.record(t(1), 1, "evict.blocks", "");
        log.record(t(2), 1, "gc.mixed", "");
        assert!(log.happened_before("evict", "gc"));
        assert!(!log.happened_before("gc", "evict"));
        assert!(!log.happened_before("gc", "never"));
        assert!(!log.happened_before("never", "gc"));
    }

    #[test]
    fn disabled_log_drops_events() {
        let mut log = TraceLog::disabled();
        log.record(t(1), 1, "gc.young", "");
        assert!(log.is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut log = TraceLog::new();
        log.record(t(1), 1, "x", "");
        log.clear();
        assert!(log.is_empty());
        log.record(t(2), 1, "y", "");
        assert_eq!(log.len(), 1);
    }
}
