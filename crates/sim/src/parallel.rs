//! Deterministic worker-pool primitives.
//!
//! [`parallel_map`] applies a function to a batch of items on a pool of
//! worker threads and returns the results **in submission order**, so a
//! caller observes exactly the serial behaviour, only sooner. It lives in
//! `m3-sim` (below every other crate) because two layers share it: the
//! experiment harness fans independent simulation runs out through it, and
//! the reclamation packet scheduler in `m3-core` uses it to cost packet
//! waves. Both are sound for the same reason: the mapped function is pure,
//! so the merged result is bit-identical for any worker count.

use std::sync::Mutex;

/// Number of worker threads the harness fans out to: the `M3_JOBS`
/// environment variable when set to a positive integer, otherwise the
/// host's available parallelism (1 if that cannot be determined).
pub fn worker_threads() -> usize {
    if let Ok(v) = std::env::var("M3_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item on a pool of `workers` threads and returns the
/// results **in submission order**. Workers pull jobs from a shared queue
/// (so long and short runs balance), and a `workers <= 1` or single-item
/// call degrades to a plain serial map with no threads spawned.
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue = Mutex::new(items.into_iter().enumerate());
    let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();
    let (queue, f) = (&queue, &f);
    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            let tx = tx.clone();
            s.spawn(move || loop {
                // Take the lock only long enough to pull the next job.
                let job = queue.lock().expect("job queue poisoned").next();
                let Some((idx, item)) = job else { break };
                if tx.send((idx, f(item))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (idx, r) in rx {
            out[idx] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every submitted job produces a result"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_submission_order() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for workers in [1, 2, 8] {
            assert_eq!(parallel_map(items.clone(), workers, |x| x * 3 + 1), expect);
        }
    }

    #[test]
    fn parallel_map_handles_empty_input() {
        let out: Vec<u64> = parallel_map(Vec::<u64>::new(), 4, |x| x);
        assert!(out.is_empty());
    }
}
