//! Simulated time.
//!
//! All time in the simulation is expressed in integer milliseconds since the
//! start of the run. Nothing in the workspace reads the wall clock; the
//! paper's one-second monitor polling period, its 180–480 s job scheduling
//! delays, and Go's five-minute scavenger are all expressed in [`SimDuration`]
//! and advanced explicitly by the world loop.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time, in milliseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Raw milliseconds since the start of the run.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since the start of the run (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Seconds since the start of the run as a float, for plotting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Raw milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Duration scaled by a non-negative float, rounding to nearest ms.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or not finite.
    pub fn mul_f64(self, f: f64) -> SimDuration {
        assert!(
            f.is_finite() && f >= 0.0,
            "scale must be finite and non-negative"
        );
        SimDuration((self.0 as f64 * f).round() as u64)
    }

    /// The ratio of this duration to `other`, or `None` if `other` is zero.
    pub fn ratio(self, other: SimDuration) -> Option<f64> {
        if other.0 == 0 {
            None
        } else {
            Some(self.0 as f64 / other.0 as f64)
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "time went backwards");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// A monotonically advancing simulated clock.
///
/// The world loop owns one `Clock` and advances it by the tick length each
/// iteration; everything else receives `now` as a parameter.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Clock { now: SimTime::ZERO }
    }

    /// The current instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `dt` and returns the new instant.
    pub fn advance(&mut self, dt: SimDuration) -> SimTime {
        self.now += dt;
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(3);
        assert_eq!(t.as_millis(), 3000);
        assert_eq!(t.as_secs(), 3);
        let t2 = t + SimDuration::from_millis(500);
        assert_eq!(t2.as_millis(), 3500);
        assert_eq!(t2 - t, SimDuration::from_millis(500));
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2000);
        assert_eq!(SimDuration::from_mins(5).as_secs(), 300);
        assert!(SimDuration::ZERO.is_zero());
    }

    #[test]
    fn duration_scaling_and_ratio() {
        let d = SimDuration::from_millis(1000);
        assert_eq!(d.mul_f64(2.5).as_millis(), 2500);
        assert_eq!(d.ratio(SimDuration::from_millis(4000)), Some(0.25));
        assert_eq!(d.ratio(SimDuration::ZERO), None);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_scale_panics() {
        let _ = SimDuration::from_millis(10).mul_f64(-1.0);
    }

    #[test]
    fn saturating_ops() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(3)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimDuration::from_millis(10));
        c.advance(SimDuration::from_millis(15));
        assert_eq!(c.now().as_millis(), 25);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }

    #[test]
    fn min_max_helpers() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimTime::from_secs(1).max(SimTime::from_secs(4)),
            SimTime::from_secs(4)
        );
    }
}
