//! A deterministic future-event queue.
//!
//! The world loop schedules future work — delayed job starts, monitor polls,
//! the kill-escalation timeout — as events with a due time, and pops
//! everything that has become due each tick. Ties are broken by insertion
//! order so runs are reproducible regardless of the heap's internal layout.

use crate::clock::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<E> {
    due: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the earliest
        // due time (then the lowest sequence number) popped first.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-ordered queue of future events with stable FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use m3_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(5), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop_due(SimTime::from_secs(2)), vec!["sooner"]);
/// assert_eq!(q.pop_due(SimTime::from_secs(10)), vec!["later"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to become due at `due`.
    pub fn schedule(&mut self, due: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { due, seq, event });
    }

    /// The due time of the earliest pending event, if any.
    pub fn next_due(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.due)
    }

    /// Pops every event with `due <= now`, in due order (FIFO within a tie).
    pub fn pop_due(&mut self, now: SimTime) -> Vec<E> {
        let mut out = Vec::new();
        while matches!(self.heap.peek(), Some(e) if e.due <= now) {
            out.push(self.heap.pop().expect("peeked entry must pop").event);
        }
        out
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_due_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c');
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        assert_eq!(q.pop_due(SimTime::from_secs(10)), vec!['a', 'b', 'c']);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.schedule(t, i);
        }
        assert_eq!(q.pop_due(t), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn only_due_events_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "early");
        q.schedule(SimTime::from_secs(5), "late");
        assert_eq!(q.pop_due(SimTime::from_secs(1)), vec!["early"]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_due(), Some(SimTime::from_secs(5)));
        assert!(q.pop_due(SimTime::from_secs(4)).is_empty());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_due(), None);
        assert!(q.pop_due(SimTime::from_secs(100)).is_empty());
    }

    #[test]
    fn interleaved_scheduling_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), 1);
        assert_eq!(q.pop_due(SimTime::from_secs(2)), vec![1]);
        q.schedule(SimTime::from_secs(1), 2); // in the past relative to pops
        q.schedule(SimTime::from_secs(3), 3);
        assert_eq!(q.pop_due(SimTime::from_secs(3)), vec![2, 3]);
    }
}
