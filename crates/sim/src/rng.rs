//! Deterministic pseudo-random number generation.
//!
//! The reproduction must be bit-for-bit repeatable across runs and platforms,
//! so the simulation core uses its own small xoshiro256++ implementation
//! seeded through SplitMix64 instead of depending on `rand`'s default
//! thread-local entropy. (`rand` is still used by the benchmark harness for
//! convenience APIs; it is always seeded from a [`SimRng`].)

/// A seedable, splittable PRNG (xoshiro256++ seeded via SplitMix64).
///
/// # Examples
///
/// ```
/// use m3_sim::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child generator.
    ///
    /// Used to give each simulated process its own stream so that adding a
    /// process never perturbs the random sequence of another.
    pub fn split(&mut self, label: u64) -> SimRng {
        let seed = self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::new(seed)
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so results are unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's nearly-divisionless unbiased bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.gen_range(hi - lo)
    }

    /// A uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// A sample from `Exp(1/mean)`, i.e. exponential with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        let u = 1.0 - self.gen_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn split_streams_are_independent_of_later_parent_use() {
        let mut parent1 = SimRng::new(99);
        let mut child1 = parent1.split(1);
        let mut parent2 = SimRng::new(99);
        let mut child2 = parent2.split(1);
        // Consuming the parent after the split must not affect the child.
        let _ = parent2.next_u64();
        for _ in 0..32 {
            assert_eq!(child1.next_u64(), child2.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = SimRng::new(5);
        for _ in 0..10_000 {
            assert!(r.gen_range(13) < 13);
        }
        for _ in 0..10_000 {
            let v = r.gen_range_in(100, 110);
            assert!((100..110).contains(&v));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = SimRng::new(11);
        let mut counts = [0u64; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.gen_range(8) as usize] += 1;
        }
        let expected = n / 8;
        for c in counts {
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < expected / 10,
                "bucket count {c} too far from expected {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SimRng::new(0).gen_range(0);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} should be near 0.5");
    }

    #[test]
    fn gen_exp_has_requested_mean() {
        let mut r = SimRng::new(17);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.gen_exp(4.0)).sum::<f64>() / n as f64;
        assert!(
            (mean - 4.0).abs() < 0.15,
            "sample mean {mean} should be near 4"
        );
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SimRng::new(23);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!((0..100).all(|_| r.gen_bool(2.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(31);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
