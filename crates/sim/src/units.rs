//! Byte-size units and pretty printing.
//!
//! Sizes throughout the workspace are plain `u64` byte counts; this module
//! provides the constants the paper speaks in (GB of heap, 4 KiB pages) plus
//! helpers for rendering them in harness output.

/// One kibibyte.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;
/// The simulated page size (4 KiB, matching Linux on x86-64).
pub const PAGE_SIZE: u64 = 4 * KIB;

/// Converts a byte count to whole pages, rounding up.
pub const fn bytes_to_pages(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

/// Converts a page count to bytes.
pub const fn pages_to_bytes(pages: u64) -> u64 {
    pages * PAGE_SIZE
}

/// Rounds a byte count up to a multiple of the page size.
pub const fn page_align_up(bytes: u64) -> u64 {
    bytes_to_pages(bytes) * PAGE_SIZE
}

/// Converts a byte count to fractional GiB for plotting.
pub fn bytes_to_gib(bytes: u64) -> f64 {
    bytes as f64 / GIB as f64
}

/// Converts fractional GiB to a byte count (rounding to nearest byte).
///
/// # Panics
///
/// Panics if `gib` is negative or not finite.
pub fn gib_to_bytes(gib: f64) -> u64 {
    assert!(
        gib.is_finite() && gib >= 0.0,
        "size must be finite and non-negative"
    );
    (gib * GIB as f64).round() as u64
}

/// Formats a byte count with a human-readable suffix (e.g. `1.50 GiB`).
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= GIB {
        format!("{:.2} GiB", bytes as f64 / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.2} MiB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.2} KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_relate() {
        assert_eq!(MIB, 1024 * KIB);
        assert_eq!(GIB, 1024 * MIB);
        assert_eq!(PAGE_SIZE, 4096);
    }

    #[test]
    fn page_conversions_round_up() {
        assert_eq!(bytes_to_pages(0), 0);
        assert_eq!(bytes_to_pages(1), 1);
        assert_eq!(bytes_to_pages(PAGE_SIZE), 1);
        assert_eq!(bytes_to_pages(PAGE_SIZE + 1), 2);
        assert_eq!(pages_to_bytes(3), 3 * PAGE_SIZE);
        assert_eq!(page_align_up(5000), 2 * PAGE_SIZE);
        assert_eq!(page_align_up(4096), 4096);
    }

    #[test]
    fn gib_round_trip() {
        assert_eq!(gib_to_bytes(2.0), 2 * GIB);
        assert!((bytes_to_gib(3 * GIB) - 3.0).abs() < 1e-12);
        let b = gib_to_bytes(1.25);
        assert!((bytes_to_gib(b) - 1.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_gib_panics() {
        gib_to_bytes(-1.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2 * KIB), "2.00 KiB");
        assert_eq!(fmt_bytes(3 * MIB / 2), "1.50 MiB");
        assert_eq!(fmt_bytes(5 * GIB), "5.00 GiB");
    }
}
