//! Counters, gauges and time series.
//!
//! The paper's figures are memory profiles: physical memory per process,
//! thresholds, and signal marks, sampled over time. [`TimeSeries`] captures
//! exactly that; [`Counter`] and [`Gauge`] accumulate scalar statistics such
//! as GC pause time or blocks evicted.

use crate::clock::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A monotonically increasing event/quantity counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one to the counter.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// The accumulated value.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// An instantaneous value that can move both ways (e.g. resident bytes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gauge {
    value: u64,
    peak: u64,
}

impl Gauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge, tracking the high-water mark.
    pub fn set(&mut self, v: u64) {
        self.value = v;
        self.peak = self.peak.max(v);
    }

    /// Adds to the gauge.
    pub fn add(&mut self, n: u64) {
        self.set(self.value + n);
    }

    /// Subtracts from the gauge, saturating at zero.
    pub fn sub(&mut self, n: u64) {
        self.value = self.value.saturating_sub(n);
    }

    /// The current value.
    pub fn get(self) -> u64 {
        self.value
    }

    /// The historical maximum.
    pub fn peak(self) -> u64 {
        self.peak
    }
}

/// One sample of a time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// When the sample was taken.
    pub t: SimTime,
    /// The sampled value.
    pub v: f64,
}

/// A named sequence of `(time, value)` samples.
///
/// # Examples
///
/// ```
/// use m3_sim::{SimTime, TimeSeries};
///
/// let mut s = TimeSeries::new("rss");
/// s.push(SimTime::from_secs(1), 10.0);
/// s.push(SimTime::from_secs(2), 20.0);
/// assert_eq!(s.mean(), Some(15.0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Human-readable series name (used as the figure legend label).
    pub name: String,
    /// The samples, in non-decreasing time order.
    pub samples: Vec<Sample>,
}

impl TimeSeries {
    /// Creates an empty series with the given legend name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// Creates an empty series with room for `capacity` samples, so a world
    /// loop that knows its sampling horizon can avoid regrowth on the hot
    /// path.
    pub fn with_capacity(name: impl Into<String>, capacity: usize) -> Self {
        TimeSeries {
            name: name.into(),
            samples: Vec::with_capacity(capacity),
        }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `t` precedes the last sample's time.
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.samples.last().is_none_or(|s| s.t <= t),
            "samples must be pushed in time order"
        );
        self.samples.push(Sample { t, v });
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean of the values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().map(|s| s.v).sum::<f64>() / self.samples.len() as f64)
    }

    /// Maximum value, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|s| s.v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// The latest value, or `None` if empty.
    pub fn last(&self) -> Option<f64> {
        self.samples.last().map(|s| s.v)
    }

    /// Time-weighted average over the sampled interval (trapezoid-free:
    /// each sample holds until the next one, matching 1 Hz polling).
    pub fn time_weighted_mean(&self) -> Option<f64> {
        if self.samples.len() < 2 {
            return self.mean();
        }
        let mut area = 0.0;
        let mut total = SimDuration::ZERO;
        for w in self.samples.windows(2) {
            let dt = w[1].t - w[0].t;
            area += w[0].v * dt.as_secs_f64();
            total += dt;
        }
        if total.is_zero() {
            self.mean()
        } else {
            Some(area / total.as_secs_f64())
        }
    }

    /// Fraction of samples strictly above `threshold`.
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| s.v > threshold).count() as f64 / self.samples.len() as f64
    }
}

/// A mark on a memory profile, e.g. "high-threshold signal sent at t".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mark {
    /// When the event happened.
    pub t: SimTime,
    /// Event kind label (e.g. `"low-signal"`).
    pub kind: String,
}

/// A bundle of series and marks constituting one figure panel.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Profile {
    /// All series, keyed by insertion order.
    pub series: Vec<TimeSeries>,
    /// Point events overlaid on the series (signal arrows in the paper).
    pub marks: Vec<Mark>,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Profile::default()
    }

    /// Returns the series with the given name, creating it if absent.
    pub fn series_mut(&mut self, name: &str) -> &mut TimeSeries {
        if let Some(i) = self.series.iter().position(|s| s.name == name) {
            return &mut self.series[i];
        }
        self.series.push(TimeSeries::new(name));
        self.series.last_mut().expect("just pushed")
    }

    /// Like [`Profile::series_mut`], but a series created by this call is
    /// pre-sized for `capacity` samples (an existing series is returned
    /// unchanged).
    pub fn reserve_series(&mut self, name: &str, capacity: usize) -> &mut TimeSeries {
        if let Some(i) = self.series.iter().position(|s| s.name == name) {
            return &mut self.series[i];
        }
        self.series.push(TimeSeries::with_capacity(name, capacity));
        self.series.last_mut().expect("just pushed")
    }

    /// Looks up a series by name.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Records a point event.
    pub fn mark(&mut self, t: SimTime, kind: impl Into<String>) {
        self.marks.push(Mark {
            t,
            kind: kind.into(),
        });
    }

    /// Number of marks of the given kind.
    pub fn marks_of(&self, kind: &str) -> usize {
        self.marks.iter().filter(|m| m.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_tracks_peak() {
        let mut g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(12);
        assert_eq!(g.get(), 3);
        assert_eq!(g.peak(), 15);
        g.sub(100);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn series_stats() {
        let mut s = TimeSeries::new("x");
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.max(), None);
        for (i, v) in [1.0, 3.0, 2.0].iter().enumerate() {
            s.push(SimTime::from_secs(i as u64), *v);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.mean(), Some(2.0));
        assert_eq!(s.max(), Some(3.0));
        assert_eq!(s.last(), Some(2.0));
        assert!((s.fraction_above(1.5) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_mean_weights_by_duration() {
        let mut s = TimeSeries::new("x");
        s.push(SimTime::from_secs(0), 0.0);
        s.push(SimTime::from_secs(9), 100.0); // the 0 held for 9 of 10 seconds
        s.push(SimTime::from_secs(10), 100.0);
        let twm = s.time_weighted_mean().unwrap();
        assert!((twm - 10.0).abs() < 1e-9, "got {twm}");
    }

    #[test]
    fn profile_series_and_marks() {
        let mut p = Profile::new();
        p.series_mut("a").push(SimTime::ZERO, 1.0);
        p.series_mut("a").push(SimTime::from_secs(1), 2.0);
        p.series_mut("b").push(SimTime::ZERO, 9.0);
        assert_eq!(p.series.len(), 2);
        assert_eq!(p.series("a").unwrap().len(), 2);
        assert!(p.series("missing").is_none());
        p.mark(SimTime::from_secs(1), "low-signal");
        p.mark(SimTime::from_secs(2), "low-signal");
        p.mark(SimTime::from_secs(3), "high-signal");
        assert_eq!(p.marks_of("low-signal"), 2);
        assert_eq!(p.marks_of("high-signal"), 1);
    }
}
