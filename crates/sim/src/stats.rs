//! Small numeric helpers shared by the experiment harness.

/// Arithmetic mean, or `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Geometric mean, or `None` for an empty slice.
///
/// # Panics
///
/// Panics if any value is non-positive (speedups are always positive).
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "geomean requires positive values"
    );
    Some((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
}

/// Sample standard deviation (n−1 denominator), or `None` if fewer than two
/// samples.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    Some(var.sqrt())
}

/// Linear-interpolated percentile (`p` in `[0, 100]`), or `None` if empty.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Speedup of `candidate` over `baseline` runtimes (>1 means candidate is
/// faster), or `None` if the candidate runtime is zero.
pub fn speedup(baseline_runtime: f64, candidate_runtime: f64) -> Option<f64> {
    if candidate_runtime <= 0.0 {
        None
    } else {
        Some(baseline_runtime / candidate_runtime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(stddev(&[1.0]), None);
        let sd = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((sd - 2.138).abs() < 0.01);
    }

    #[test]
    fn geomean_of_speedups() {
        let g = geomean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert_eq!(percentile(&xs, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_range_checked() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn speedup_math() {
        assert_eq!(speedup(10.0, 5.0), Some(2.0));
        assert_eq!(speedup(5.0, 10.0), Some(0.5));
        assert_eq!(speedup(5.0, 0.0), None);
    }
}
