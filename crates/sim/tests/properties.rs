//! Property-based tests for the simulation substrate.

use m3_sim::clock::{SimDuration, SimTime};
use m3_sim::metrics::TimeSeries;
use m3_sim::stats;
use m3_sim::{EventQueue, SimRng};
use proptest::prelude::*;

proptest! {
    /// The event queue pops every scheduled event exactly once, in
    /// non-decreasing due order, with FIFO tie-breaking.
    #[test]
    fn queue_pops_all_in_order(times in proptest::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), (t, i));
        }
        let popped = q.pop_due(SimTime::from_millis(1000));
        prop_assert_eq!(popped.len(), times.len());
        prop_assert!(q.is_empty());
        for w in popped.windows(2) {
            let ((t0, i0), (t1, i1)) = (w[0], w[1]);
            prop_assert!(t0 < t1 || (t0 == t1 && i0 < i1), "order violated");
        }
    }

    /// Incremental draining sees exactly the due events, never early.
    #[test]
    fn queue_drains_incrementally(times in proptest::collection::vec(0u64..100, 1..100)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime::from_millis(t), t);
        }
        let mut seen = Vec::new();
        for now in 0..100u64 {
            for t in q.pop_due(SimTime::from_millis(now)) {
                prop_assert!(t <= now, "event popped before due");
                seen.push(t);
            }
        }
        let mut expect = times.clone();
        expect.sort_unstable();
        seen.sort_unstable();
        prop_assert_eq!(seen, expect);
    }

    /// Bounded generation is in range and deterministic per seed.
    #[test]
    fn rng_bounded_and_deterministic(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..50 {
            let x = a.gen_range(bound);
            prop_assert!(x < bound);
            prop_assert_eq!(x, b.gen_range(bound));
        }
    }

    /// Shuffle is always a permutation.
    #[test]
    fn shuffle_permutes(seed in any::<u64>(), n in 0usize..200) {
        let mut rng = SimRng::new(seed);
        let mut xs: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    /// Time-series statistics agree with direct computation.
    #[test]
    fn series_stats_match_reference(vals in proptest::collection::vec(0.0f64..1e9, 1..100)) {
        let mut s = TimeSeries::new("x");
        for (i, &v) in vals.iter().enumerate() {
            s.push(SimTime::from_secs(i as u64), v);
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        prop_assert!((s.mean().unwrap() - mean).abs() < 1e-6 * mean.max(1.0));
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert_eq!(s.max().unwrap(), max);
        prop_assert_eq!(s.last().unwrap(), *vals.last().unwrap());
    }

    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentiles_monotone(vals in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let p25 = stats::percentile(&vals, 25.0).unwrap();
        let p50 = stats::percentile(&vals, 50.0).unwrap();
        let p75 = stats::percentile(&vals, 75.0).unwrap();
        prop_assert!(p25 <= p50 && p50 <= p75);
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(stats::percentile(&vals, 0.0).unwrap() == min);
        prop_assert!(stats::percentile(&vals, 100.0).unwrap() == max);
    }

    /// Duration arithmetic: scaling commutes with conversion within
    /// rounding error.
    #[test]
    fn duration_scaling(ms in 0u64..1_000_000, f in 0.0f64..100.0) {
        let d = SimDuration::from_millis(ms);
        let scaled = d.mul_f64(f);
        let expect = ms as f64 * f;
        prop_assert!((scaled.as_millis() as f64 - expect).abs() <= 0.5 + 1e-9 * expect);
    }
}
