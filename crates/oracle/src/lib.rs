//! Trace-replay conformance oracle.
//!
//! [`Oracle::check`] walks a recorded [`TraceLog`] and re-derives every
//! decision the M3 stack claims to have made, flagging a [`Violation`]
//! wherever the recorded behaviour diverges from the paper's protocols:
//!
//! - **Thresholds (§5.2)** — `low ≤ high ≤ top` at every poll, every move
//!   bounded by the 2 %-of-top step, and a full replay of the adaptive
//!   algorithm (1:32 ratio over the 32-poll window) from the recorded
//!   usage sequence.
//! - **Zoning (§5, §6)** — each poll's zone matches the recorded usage
//!   against the recorded thresholds, including the widened margin of
//!   degraded (stale-meminfo) polls; low signals only on upward crossings.
//! - **Selective notification (§5.1, Algorithm 1)** — the selected set is
//!   recomputed from the recorded candidates, order and target; the pids
//!   actually high-signalled are the selection minus watchdog skips; every
//!   signalled pid has a matching signal-bus event.
//! - **Escalation (§6)** — kills only above the top of memory and only
//!   after the kill-timeout grace period.
//! - **Adaptive allocation (§4.2)** —
//!   `allow_rate = min(elapsed / (epoch_len × NUM_epochs), 1)` recomputed
//!   from each gate event's recorded inputs, plus an exact replay of the
//!   ⌊1/r⌋ stride gate and of the batched gate's fractional carry.
//! - **Reclamation responses (Table 1, §4.1)** — a high signal evicts ⅛ of
//!   the Spark block cache, 1 % (low) / 4 % (high) of cache slabs, and each
//!   handler reclaims top-down: eviction before GC before `madvise`.
//! - **Class-granular eviction (Table 1 at slab-class granularity)** — in
//!   key-granular cache runs every signal eviction records one
//!   `evict.class` event per touched slab class; each class must evict no
//!   more slabs than it held, the group's slab/item/byte sums must equal
//!   the aggregate `evict.slabs` event that follows, and no class event may
//!   be left orphaned without its aggregate.
//! - **Cache statistics (trace workloads)** — every `cache.stats` snapshot
//!   must conserve (`hits + misses + sets + deletes = requests`, negative
//!   lookups a subset of the misses) and grow monotonically per pid.
//! - **Mixed-criticality kill ordering (`kill.class.order`)** — the
//!   flagship criticality invariant: a job is only ever killed while no
//!   more-expendable candidate is still alive. Every monitor kill records a
//!   `kill.class` event with the victim's class and the alive candidate set
//!   it was chosen from; the victim must be of maximal expendability within
//!   that set (batch dies before standard, standard before
//!   latency-critical). A criticality-blind policy under a mixed load is
//!   caught here.
//! - **Packet scheduling (`reclaim.packet.*`)** — handlers drained through
//!   the work-packet scheduler must respect its contract: a packet only
//!   starts after its enqueue (`reclaim.packet.order`), never before every
//!   dependency finished (`reclaim.packet.deps`), and never before its
//!   bucket opened — i.e. while any packet of a strictly earlier bucket is
//!   unfinished (`reclaim.packet.bucket`). Within one handler window the
//!   per-packet `finish` bytes must sum exactly to the aggregate events of
//!   the same layer — `evict_blocks` packets to `evict.blocks` bytes,
//!   `evict_class` to `evict.class`, `evict_slabs` to `evict.slabs`, GC
//!   packets to `gc.*` reclaimed bytes, and every packet's returned bytes
//!   to the window's `mem.madvise` total
//!   (`reclaim.packet.conservation`) — and every enqueued packet must
//!   finish before the handler ends (`reclaim.packet.orphan`). The
//!   bucket-order ablation drain is caught here.

use std::collections::{BTreeMap, BTreeSet};

use m3_core::alloc::RateCurve;
use m3_core::config::MonitorConfig;
use m3_core::monitor::MAX_DEGRADED_WIDENING;
use m3_core::selection::{select_processes, Candidate, SortOrder};
use m3_core::thresholds::AdaptiveThresholds;
use m3_sim::trace::{
    CandidateInfo, Criticality, EvictReason, SigKind, ThresholdSide, TraceData, TraceEvent,
    TraceLog, TraceZone,
};
use serde::{Deserialize, Serialize};

/// One divergence between a recorded trace and the paper's protocols.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Which invariant failed (stable dotted name, e.g. `"alloc.stride"`).
    pub invariant: String,
    /// When the offending event happened, ms.
    pub at_ms: u64,
    /// The process the offending event concerns (0 for the monitor).
    pub pid: u64,
    /// Human-readable description of the divergence.
    pub message: String,
}

/// The conformance oracle: paper constants plus the monitor configuration
/// the run declared (monitor invariants are skipped for monitor-less runs).
#[derive(Debug, Clone)]
pub struct Oracle {
    monitor: Option<MonitorConfig>,
    /// Fraction of cached blocks a framework evicts on a high signal
    /// (Table 1: Spark drops ⅛ of its block cache).
    pub block_high_fraction: f64,
    /// Fraction of slabs a cache evicts on a low signal (Table 1: 1 %).
    pub slab_low_fraction: f64,
    /// Fraction of slabs a cache evicts on a high signal (Table 1: 4 %).
    pub slab_high_fraction: f64,
}

impl Oracle {
    /// An oracle with the paper's Table 1 constants.
    pub fn paper(monitor: Option<MonitorConfig>) -> Self {
        Oracle {
            monitor,
            block_high_fraction: 1.0 / 8.0,
            slab_low_fraction: 0.01,
            slab_high_fraction: 0.04,
        }
    }

    /// Replays `trace` and returns every divergence found (empty = conformant).
    pub fn check(&self, trace: &TraceLog) -> Vec<Violation> {
        Checker::new(self).run(trace.events())
    }
}

/// Cluster-level conformance oracle for fleet placement logs.
///
/// Walks the scheduler's trace (`fleet.*` events) and checks the
/// placement invariants:
///
/// - **`fleet.place.red`** — a job is never placed onto a node whose latest
///   pressure snapshot is red or above top (and never without a snapshot).
/// - **`fleet.migrate.grace`** — a migration off a node only happens after
///   that node's pressure snapshots have been contiguously red for at least
///   the grace window.
/// - **`fleet.defer.progress`** — every deferred job is eventually placed
///   or explicitly given up on; no job is silently dropped.
/// - **`fleet.defer.latency`** — a deferred job's next admission attempt
///   happens no later than the retry time the defer announced, and (when
///   the oracle knows the scheduler's defer interval) the announced retry
///   is no further out than that interval.
/// - **`fleet.giveup.starvation`** — a job is never given up on while some
///   node's latest snapshot is green/yellow with room for the job's demand
///   (`max(used, reserved) + demand <= top`): bounded placement scans must
///   degrade to exhaustive ones before abandoning work. Nodes known dead or
///   quarantined are exempt, as are jobs abandoned after node loss (their
///   give-up is budget-bound, not fleet-fullness-bound).
///
/// Recovery invariants (the chaos layer):
///
/// - **`fleet.place.dead`** — no placement or migration ever targets a node
///   after its `fleet.node_lost` event: a node known dead at decision time
///   receives nothing.
/// - **`fleet.place.quarantined`** — a quarantined node receives zero
///   placements or migrations between its quarantine entry and its
///   re-admission.
/// - **`fleet.lost.resolved`** — every job re-queued after node death
///   (`fleet.reschedule` with `requeued`) is eventually placed again or
///   explicitly given up on; no lost job is silently dropped.
///
/// Mixed-criticality invariants (`sched.class.*` events):
///
/// - **`sched.class.preempt`** — a reservation preemption is only legal
///   when the preemptor is strictly *less* expendable than its victim
///   (latency-critical may displace batch, never a peer or better).
/// - **`sched.class.slo`** — per-job SLO accounting must conserve: `met`
///   equals `runtime_ms <= slo_ms` (vacuously true without an SLO) and the
///   stall time never exceeds the runtime.
/// - **`sched.class.consistency`** — preempt and SLO events must agree
///   with the class and SLO the job declared in its `sched.class.assign`.
#[derive(Debug, Clone)]
pub struct FleetOracle {
    /// Grace window a node must stay red before migration is allowed, ms.
    pub grace_ms: u64,
    /// The scheduler's defer interval, ms, when known: bounds how far out
    /// a defer may announce its retry. `None` skips that half of the
    /// latency check (independent replays of a bare trace).
    pub defer_interval_ms: Option<u64>,
}

/// A node's latest pressure snapshot as the fleet oracle replays it.
#[derive(Debug, Clone, Copy)]
struct NodeSnap {
    zone: TraceZone,
    used: u64,
    reserved: u64,
    top: u64,
}

impl FleetOracle {
    /// An oracle for a scheduler configured with the given grace window.
    pub fn new(grace_ms: u64) -> Self {
        FleetOracle {
            grace_ms,
            defer_interval_ms: None,
        }
    }

    /// Also checks announced retry times against the scheduler's
    /// configured defer interval.
    pub fn with_defer_interval(mut self, defer_interval_ms: u64) -> Self {
        self.defer_interval_ms = Some(defer_interval_ms);
        self
    }

    /// `fleet.defer.latency`: resolving event for `job` at `at` ms against
    /// the retry time its pending defer announced (if any).
    fn check_defer_latency(
        out: &mut Vec<Violation>,
        pending: Option<(u64, u64)>,
        job: u64,
        at: u64,
        pid: u64,
    ) {
        let Some((_, retry_at)) = pending else {
            return;
        };
        if at > retry_at {
            out.push(Violation {
                invariant: "fleet.defer.latency".into(),
                at_ms: at,
                pid,
                message: format!(
                    "job {job} deferred with retry announced at {retry_at} ms \
                     was next attempted only at {at} ms"
                ),
            });
        }
    }

    /// Replays the fleet events in `trace` and returns every divergence
    /// found (empty = conformant). Non-fleet events are ignored, so the
    /// scheduler's full log can be passed as-is.
    pub fn check(&self, trace: &TraceLog) -> Vec<Violation> {
        let mut out = Vec::new();
        // Latest pressure snapshot per node, plus since when each node has
        // been contiguously red (absent while green/yellow).
        let mut latest: BTreeMap<u64, NodeSnap> = BTreeMap::new();
        let mut red_since: BTreeMap<u64, u64> = BTreeMap::new();
        // Jobs with a defer not yet resolved by a place or a give-up:
        // job -> (deferred at, announced retry time).
        let mut pending_defer: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        // Nodes known dead / currently quarantined as the trace replays.
        let mut dead: BTreeSet<u64> = BTreeSet::new();
        let mut quarantined: BTreeSet<u64> = BTreeSet::new();
        // Jobs that have ever been lost to node death, and the re-queued
        // losses not yet resolved by a place or a give-up: job -> lost at.
        let mut lost_jobs: BTreeSet<u64> = BTreeSet::new();
        let mut pending_requeue: BTreeMap<u64, u64> = BTreeMap::new();
        // Criticality class and SLO each job declared at submission.
        let mut classes: BTreeMap<u64, (Criticality, u64)> = BTreeMap::new();
        // A placement or migration target must be neither dead nor
        // quarantined at decision time.
        let check_target = |out: &mut Vec<Violation>,
                            dead: &BTreeSet<u64>,
                            quarantined: &BTreeSet<u64>,
                            job: u64,
                            node: u64,
                            at: u64,
                            pid: u64| {
            if dead.contains(&node) {
                out.push(Violation {
                    invariant: "fleet.place.dead".into(),
                    at_ms: at,
                    pid,
                    message: format!("job {job} placed on node {node}, which is dead"),
                });
            }
            if quarantined.contains(&node) {
                out.push(Violation {
                    invariant: "fleet.place.quarantined".into(),
                    at_ms: at,
                    pid,
                    message: format!("job {job} placed on node {node}, which is quarantined"),
                });
            }
        };
        for e in trace.events() {
            let at = e.t.as_millis();
            match &e.data {
                TraceData::FleetPressure {
                    node,
                    zone,
                    used,
                    reserved,
                    top,
                    ..
                } => {
                    latest.insert(
                        *node,
                        NodeSnap {
                            zone: *zone,
                            used: *used,
                            reserved: *reserved,
                            top: *top,
                        },
                    );
                    match zone {
                        TraceZone::Red | TraceZone::AboveTop => {
                            red_since.entry(*node).or_insert(at);
                        }
                        _ => {
                            red_since.remove(node);
                        }
                    }
                }
                TraceData::FleetPlace { job, node, .. } => {
                    match latest.get(node).map(|s| s.zone) {
                        None => out.push(Violation {
                            invariant: "fleet.place.red".into(),
                            at_ms: at,
                            pid: e.pid,
                            message: format!(
                                "job {job} placed on node {node} without a pressure probe"
                            ),
                        }),
                        Some(z @ (TraceZone::Red | TraceZone::AboveTop)) => out.push(Violation {
                            invariant: "fleet.place.red".into(),
                            at_ms: at,
                            pid: e.pid,
                            message: format!(
                                "job {job} placed on node {node} whose latest \
                                     pressure snapshot is {z:?}"
                            ),
                        }),
                        Some(_) => {}
                    }
                    check_target(&mut out, &dead, &quarantined, *job, *node, at, e.pid);
                    pending_requeue.remove(job);
                    Self::check_defer_latency(&mut out, pending_defer.remove(job), *job, at, e.pid);
                }
                TraceData::FleetDefer {
                    job, retry_at_ms, ..
                } => {
                    // A retry that itself defers resolves the previous
                    // pending defer (and must itself be on time).
                    Self::check_defer_latency(&mut out, pending_defer.remove(job), *job, at, e.pid);
                    if let Some(interval) = self.defer_interval_ms {
                        if retry_at_ms.saturating_sub(at) > interval {
                            out.push(Violation {
                                invariant: "fleet.defer.latency".into(),
                                at_ms: at,
                                pid: e.pid,
                                message: format!(
                                    "job {job} deferred at {at} ms announced retry at \
                                     {retry_at_ms} ms, beyond the {interval} ms defer interval"
                                ),
                            });
                        }
                    }
                    pending_defer.insert(*job, (at, *retry_at_ms));
                }
                TraceData::FleetMigrate { job, from, to, .. } => {
                    check_target(&mut out, &dead, &quarantined, *job, *to, at, e.pid);
                    let streak = red_since.get(from).map(|since| at.saturating_sub(*since));
                    match streak {
                        None => out.push(Violation {
                            invariant: "fleet.migrate.grace".into(),
                            at_ms: at,
                            pid: e.pid,
                            message: format!("job {job} migrated off node {from} that is not red"),
                        }),
                        Some(ms) if ms < self.grace_ms => out.push(Violation {
                            invariant: "fleet.migrate.grace".into(),
                            at_ms: at,
                            pid: e.pid,
                            message: format!(
                                "job {job} migrated off node {from} after only {ms} ms \
                                 red (grace window is {} ms)",
                                self.grace_ms
                            ),
                        }),
                        Some(_) => {}
                    }
                }
                TraceData::FleetGiveUp { job, demand, .. } => {
                    Self::check_defer_latency(&mut out, pending_defer.remove(job), *job, at, e.pid);
                    pending_requeue.remove(job);
                    // Giving up while some node visibly admits the job is
                    // starvation: the final attempt must have seen it. Jobs
                    // abandoned after node loss exhausted a retry budget, not
                    // the candidate set, so they are exempt — as are nodes
                    // the scheduler rightly refuses to target.
                    if lost_jobs.contains(job) {
                        continue;
                    }
                    let fits = latest.iter().find(|(node, s)| {
                        !dead.contains(node)
                            && !quarantined.contains(node)
                            && matches!(s.zone, TraceZone::Green | TraceZone::Yellow)
                            && s.used.max(s.reserved).saturating_add(*demand) <= s.top
                    });
                    if let Some((node, s)) = fits {
                        out.push(Violation {
                            invariant: "fleet.giveup.starvation".into(),
                            at_ms: at,
                            pid: e.pid,
                            message: format!(
                                "job {job} (demand {demand}) given up on while node {node} \
                                 is {:?} with effective load {} of top {}",
                                s.zone,
                                s.used.max(s.reserved),
                                s.top
                            ),
                        });
                    }
                }
                TraceData::FleetNodeLost { node, .. } => {
                    dead.insert(*node);
                    red_since.remove(node);
                }
                TraceData::FleetReschedule { job, requeued, .. } => {
                    lost_jobs.insert(*job);
                    if *requeued {
                        pending_requeue.insert(*job, at);
                    }
                }
                TraceData::FleetQuarantine { node, entered, .. } => {
                    if *entered {
                        quarantined.insert(*node);
                    } else {
                        quarantined.remove(node);
                    }
                }
                TraceData::SchedClassAssign { job, crit, slo_ms } => {
                    classes.insert(*job, (*crit, *slo_ms));
                }
                TraceData::SchedClassPreempt {
                    job,
                    crit,
                    victim,
                    victim_crit,
                    node,
                } => {
                    if crit.expendability() >= victim_crit.expendability() {
                        out.push(Violation {
                            invariant: "sched.class.preempt".into(),
                            at_ms: at,
                            pid: e.pid,
                            message: format!(
                                "job {job} ({}) preempted job {victim} ({}) on node \
                                 {node}: a preemptor must be strictly less expendable \
                                 than its victim",
                                crit.name(),
                                victim_crit.name()
                            ),
                        });
                    }
                    for (who, recorded) in [(job, crit), (victim, victim_crit)] {
                        if let Some((assigned, _)) = classes.get(who) {
                            if assigned != recorded {
                                out.push(Violation {
                                    invariant: "sched.class.consistency".into(),
                                    at_ms: at,
                                    pid: e.pid,
                                    message: format!(
                                        "preempt records job {who} as {}, its assignment \
                                         declared {}",
                                        recorded.name(),
                                        assigned.name()
                                    ),
                                });
                            }
                        }
                    }
                }
                TraceData::SchedClassSlo {
                    job,
                    crit,
                    slo_ms,
                    runtime_ms,
                    stall_ms,
                    met,
                } => {
                    let want_met = *slo_ms == 0 || runtime_ms <= slo_ms;
                    if *met != want_met {
                        out.push(Violation {
                            invariant: "sched.class.slo".into(),
                            at_ms: at,
                            pid: e.pid,
                            message: format!(
                                "job {job} recorded met={met} but runtime {runtime_ms} ms \
                                 against SLO {slo_ms} ms implies met={want_met}"
                            ),
                        });
                    }
                    if stall_ms > runtime_ms {
                        out.push(Violation {
                            invariant: "sched.class.slo".into(),
                            at_ms: at,
                            pid: e.pid,
                            message: format!(
                                "job {job} stalled {stall_ms} ms, more than its whole \
                                 {runtime_ms} ms runtime"
                            ),
                        });
                    }
                    if let Some((assigned, assigned_slo)) = classes.get(job) {
                        if assigned != crit || assigned_slo != slo_ms {
                            out.push(Violation {
                                invariant: "sched.class.consistency".into(),
                                at_ms: at,
                                pid: e.pid,
                                message: format!(
                                    "job {job} SLO report says ({}, {slo_ms} ms), its \
                                     assignment declared ({}, {assigned_slo} ms)",
                                    crit.name(),
                                    assigned.name()
                                ),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        for (job, since) in pending_requeue {
            out.push(Violation {
                invariant: "fleet.lost.resolved".into(),
                at_ms: since,
                pid: job,
                message: format!(
                    "job {job} lost to node death at {since} ms was re-queued \
                     but never placed or given up on"
                ),
            });
        }
        for (job, (since, _)) in pending_defer {
            out.push(Violation {
                invariant: "fleet.defer.progress".into(),
                at_ms: since,
                pid: job,
                message: format!(
                    "job {job} was deferred at {since} ms and never placed or given up on"
                ),
            });
        }
        out
    }
}

/// Per-pid replay of the §4.2 allocation gate.
#[derive(Default)]
struct AllocReplay {
    counter: u64,
    carry: f64,
}

/// Reclamation events seen inside one open `handler.start`/`handler.end`
/// window, by global event index, plus the byte totals the packet
/// conservation check compares at `handler.end`.
#[derive(Default)]
struct HandlerWindow {
    last_evict: Option<usize>,
    first_gc: Option<usize>,
    first_madvise: Option<usize>,
    /// True once a `reclaim.packet.finish` landed in this window: the
    /// conservation check only applies to packetized handlers.
    saw_packets: bool,
    /// Aggregate layer-event bytes inside the window.
    agg_blocks: u64,
    agg_slabs: u64,
    agg_class: u64,
    agg_gc: u64,
    agg_madvise: u64,
    /// Packet `finish` bytes inside the window, by packet-kind class.
    pkt_blocks: u64,
    pkt_slabs: u64,
    pkt_class: u64,
    pkt_gc: u64,
    /// Packet `finish` returned-to-OS bytes (all kinds).
    pkt_returned: u64,
}

/// Replay state of one enqueued work packet.
#[derive(Debug, Clone)]
struct PacketState {
    pkind: String,
    bucket: m3_sim::trace::PacketBucket,
    deps: Vec<u64>,
    enq_at_ms: u64,
    started: bool,
    finished: bool,
}

/// One `evict.class` event awaiting its aggregate `evict.slabs`.
#[derive(Debug, Clone, Copy)]
struct PendingClassEvict {
    at_ms: u64,
    chunk: u64,
    evicted: u64,
    items: u64,
    bytes: u64,
    reason: EvictReason,
}

/// Cumulative counters of the last `cache.stats` snapshot for one pid.
#[derive(Debug, Clone, Copy, Default)]
struct StatsSnap {
    requests: u64,
    hits: u64,
    misses: u64,
    negative: u64,
    sets: u64,
    deletes: u64,
    delayed: u64,
    capacity_items: u64,
    serve_ms: u64,
}

/// The red-zone/above-top selection awaiting its `monitor.poll`.
struct PendingSelection {
    target: u64,
    all: bool,
    selected: Vec<u64>,
}

struct Checker<'a> {
    oracle: &'a Oracle,
    out: Vec<Violation>,
    /// Shadow copy of the adaptive-threshold state, fed the recorded polls.
    replica: Option<AdaptiveThresholds>,
    /// `threshold.adjust.*` events since the last poll (they precede their
    /// poll's `monitor.poll` event).
    pending_adjusts: Vec<(ThresholdSide, u64, u64)>,
    pending_selection: Option<PendingSelection>,
    /// Pids whose high signal the watchdog suppressed this poll.
    skipped: Vec<u64>,
    /// Signal-bus events (sent, dropped or delayed) since the last poll.
    window_low: Vec<u64>,
    window_high: Vec<u64>,
    /// `monitor.kill` victims since the last poll.
    window_kills: Vec<u64>,
    /// Replay of the monitor's kill-grace clock, ms.
    above_top_since: Option<u64>,
    /// Replay of the low-signal upward-crossing edge detector.
    prev_above_low: bool,
    /// Consecutive degraded polls (degraded-margin widening factor).
    degraded_run: u64,
    alloc: BTreeMap<u64, AllocReplay>,
    handlers: BTreeMap<u64, HandlerWindow>,
    /// `evict.class` groups not yet folded into their aggregate, per pid.
    pending_classes: BTreeMap<u64, Vec<PendingClassEvict>>,
    /// Last `cache.stats` snapshot per pid (monotonicity).
    last_stats: BTreeMap<u64, StatsSnap>,
    /// Work packets of the current drain, per pid (ids are drain-local, so
    /// a new handler window starts a fresh map).
    packets: BTreeMap<u64, BTreeMap<u64, PacketState>>,
}

impl<'a> Checker<'a> {
    fn new(oracle: &'a Oracle) -> Self {
        Checker {
            oracle,
            out: Vec::new(),
            replica: oracle.monitor.as_ref().map(AdaptiveThresholds::new),
            pending_adjusts: Vec::new(),
            pending_selection: None,
            skipped: Vec::new(),
            window_low: Vec::new(),
            window_high: Vec::new(),
            window_kills: Vec::new(),
            above_top_since: None,
            prev_above_low: false,
            degraded_run: 0,
            alloc: BTreeMap::new(),
            handlers: BTreeMap::new(),
            pending_classes: BTreeMap::new(),
            last_stats: BTreeMap::new(),
            packets: BTreeMap::new(),
        }
    }

    fn flag(&mut self, invariant: &str, e: &TraceEvent, message: String) {
        self.out.push(Violation {
            invariant: invariant.to_string(),
            at_ms: e.t.as_millis(),
            pid: e.pid,
            message,
        });
    }

    fn run(mut self, events: &[TraceEvent]) -> Vec<Violation> {
        for (i, e) in events.iter().enumerate() {
            match &e.data {
                TraceData::ThresholdAdjust { side, old, new } => {
                    self.on_adjust(e, *side, *old, *new);
                }
                TraceData::Selection {
                    order,
                    target,
                    all,
                    candidates,
                    selected,
                } => self.on_selection(e, order, *target, *all, candidates, selected),
                TraceData::WatchdogSkip => self.skipped.push(e.pid),
                TraceData::SignalSent { sig }
                | TraceData::SignalDropped { sig }
                | TraceData::SignalDelayed { sig } => match sig {
                    SigKind::Low => self.window_low.push(e.pid),
                    SigKind::High => self.window_high.push(e.pid),
                    SigKind::Kill => {}
                },
                TraceData::MonitorKill { .. } => self.window_kills.push(e.pid),
                TraceData::KillClass { crit, candidates } => {
                    self.on_kill_class(e, *crit, candidates);
                }
                TraceData::MonitorPoll { .. } => self.on_poll(e),
                TraceData::AllocGate {
                    delayed,
                    rate,
                    elapsed_ms,
                    epoch_ms,
                    num_epochs,
                    curve,
                } => self.on_gate(
                    e,
                    *delayed,
                    *rate,
                    *elapsed_ms,
                    *epoch_ms,
                    *num_epochs,
                    curve,
                ),
                TraceData::AllocBatch {
                    n,
                    delayed,
                    rate,
                    elapsed_ms,
                    epoch_ms,
                    num_epochs,
                    curve,
                } => self.on_batch(
                    e,
                    *n,
                    *delayed,
                    *rate,
                    *elapsed_ms,
                    *epoch_ms,
                    *num_epochs,
                    curve,
                ),
                TraceData::EvictBlocks {
                    before,
                    evicted,
                    bytes,
                    reason,
                } => {
                    if let Some(w) = self.handlers.get_mut(&e.pid) {
                        w.agg_blocks += bytes;
                    }
                    if *reason == EvictReason::HighSignal {
                        let want = expected_fraction(*before, self.oracle.block_high_fraction);
                        if *evicted != want {
                            self.flag(
                                "evict.blocks.magnitude",
                                e,
                                format!(
                                    "high signal evicted {evicted} of {before} blocks, \
                                     Table 1 expects {want}"
                                ),
                            );
                        }
                    }
                    self.note_evict(e.pid, i);
                }
                TraceData::EvictSlabs {
                    before,
                    evicted,
                    items,
                    bytes,
                    reason,
                } => {
                    if let Some(w) = self.handlers.get_mut(&e.pid) {
                        w.agg_slabs += bytes;
                    }
                    let frac = match reason {
                        EvictReason::LowSignal => Some(self.oracle.slab_low_fraction),
                        EvictReason::HighSignal => Some(self.oracle.slab_high_fraction),
                        _ => None,
                    };
                    if let Some(frac) = frac {
                        // The slab layer always evicts at least one slab
                        // when non-empty, so tiny caches still respond.
                        let want = expected_fraction(*before, frac).max(u64::from(*before > 0));
                        if *evicted != want {
                            self.flag(
                                "evict.slabs.magnitude",
                                e,
                                format!(
                                    "{reason:?} evicted {evicted} of {before} slabs, \
                                     Table 1 expects {want}"
                                ),
                            );
                        }
                    }
                    self.on_slab_aggregate(e, *evicted, *items, *bytes, *reason);
                    self.note_evict(e.pid, i);
                }
                TraceData::EvictClass {
                    chunk,
                    before,
                    evicted,
                    items,
                    bytes,
                    reason,
                } => {
                    if evicted > before {
                        self.flag(
                            "evict.class.bound",
                            e,
                            format!(
                                "class {chunk} evicted {evicted} slabs but held \
                                 only {before}"
                            ),
                        );
                    }
                    if let Some(w) = self.handlers.get_mut(&e.pid) {
                        w.agg_class += bytes;
                    }
                    self.pending_classes
                        .entry(e.pid)
                        .or_default()
                        .push(PendingClassEvict {
                            at_ms: e.t.as_millis(),
                            chunk: *chunk,
                            evicted: *evicted,
                            items: *items,
                            bytes: *bytes,
                            reason: *reason,
                        });
                }
                TraceData::CacheStats { .. } => self.on_cache_stats(e),
                TraceData::Gc { reclaimed, .. } => {
                    if let Some(w) = self.handlers.get_mut(&e.pid) {
                        w.first_gc.get_or_insert(i);
                        w.agg_gc += reclaimed;
                    }
                }
                TraceData::Madvise { bytes } => {
                    if let Some(w) = self.handlers.get_mut(&e.pid) {
                        w.first_madvise.get_or_insert(i);
                        w.agg_madvise += bytes;
                    }
                }
                TraceData::HandlerStart { .. } => {
                    self.handlers.insert(e.pid, HandlerWindow::default());
                    // Packet ids are drain-local; a new handler means a new
                    // scheduler, so the replay state starts fresh too.
                    self.packets.remove(&e.pid);
                }
                TraceData::HandlerEnd { .. } => self.on_handler_end(e),
                TraceData::ProcSpawn { .. }
                | TraceData::ProcRespawn { .. }
                | TraceData::ProcExit
                | TraceData::ProcKill
                | TraceData::OomKill => {
                    // A pid's allocator (and any handler window) dies with
                    // the process; a respawn starts from fresh state.
                    self.alloc.remove(&e.pid);
                    self.handlers.remove(&e.pid);
                    self.pending_classes.remove(&e.pid);
                    self.last_stats.remove(&e.pid);
                    self.packets.remove(&e.pid);
                }
                TraceData::PacketEnqueue {
                    packet,
                    pkind,
                    bucket,
                    deps,
                } => self.on_packet_enqueue(e, *packet, pkind, *bucket, deps),
                TraceData::PacketStart { packet, bucket, .. } => {
                    self.on_packet_start(e, *packet, *bucket);
                }
                TraceData::PacketFinish {
                    packet,
                    bucket,
                    bytes,
                    returned,
                    ..
                } => self.on_packet_finish(e, *packet, *bucket, *bytes, *returned),
                TraceData::PacketStall {
                    packet, waiting_on, ..
                } => self.on_packet_stall(e, *packet, *waiting_on),
                TraceData::ZoneChange { .. }
                | TraceData::WatchdogEscalate { .. }
                | TraceData::WatchdogResignal { .. } => {}
                // Fleet events are cluster-level: they appear in the
                // scheduler's placement log, never in a node trace, and are
                // checked by [`FleetOracle`] instead.
                TraceData::FleetPressure { .. }
                | TraceData::FleetPlace { .. }
                | TraceData::FleetDefer { .. }
                | TraceData::FleetMigrate { .. }
                | TraceData::FleetGiveUp { .. }
                | TraceData::FleetNodeLost { .. }
                | TraceData::FleetReschedule { .. }
                | TraceData::FleetQuarantine { .. }
                | TraceData::SchedClassAssign { .. }
                | TraceData::SchedClassPreempt { .. }
                | TraceData::SchedClassSlo { .. } => {}
            }
        }
        for (pid, group) in std::mem::take(&mut self.pending_classes) {
            for c in group {
                self.out.push(Violation {
                    invariant: "evict.class.orphan".to_string(),
                    at_ms: c.at_ms,
                    pid,
                    message: format!(
                        "evict.class for class {} ({} slabs, {:?}) was never \
                         folded into an aggregate evict.slabs event",
                        c.chunk, c.evicted, c.reason
                    ),
                });
            }
        }
        self.out
    }

    /// Folds the pending `evict.class` group (if any) into its aggregate:
    /// reasons must match and the per-class slab/item/byte sums must equal
    /// the aggregate exactly — the class detail is a decomposition of the
    /// aggregate, not an independent report. Analytic (non-key-granular)
    /// runs record no class detail, so an empty group is conformant.
    fn on_slab_aggregate(
        &mut self,
        e: &TraceEvent,
        evicted: u64,
        items: u64,
        bytes: u64,
        reason: EvictReason,
    ) {
        let Some(group) = self.pending_classes.remove(&e.pid) else {
            return;
        };
        for c in &group {
            if c.reason != reason {
                self.flag(
                    "evict.class.conservation",
                    e,
                    format!(
                        "class {} detail recorded reason {:?} inside a {reason:?} \
                         aggregate",
                        c.chunk, c.reason
                    ),
                );
            }
        }
        let (s, i, b) = group.iter().fold((0u64, 0u64, 0u64), |(s, i, b), c| {
            (s + c.evicted, i + c.items, b + c.bytes)
        });
        if (s, i, b) != (evicted, items, bytes) {
            self.flag(
                "evict.class.conservation",
                e,
                format!(
                    "class detail sums to {s} slabs / {i} items / {b} bytes, \
                     aggregate recorded {evicted} / {items} / {bytes}"
                ),
            );
        }
    }

    /// `cache.stats` snapshots must conserve and grow monotonically.
    fn on_cache_stats(&mut self, e: &TraceEvent) {
        let &TraceData::CacheStats {
            requests,
            hits,
            misses,
            negative,
            sets,
            deletes,
            delayed,
            capacity_items,
            serve_ms,
            ..
        } = &e.data
        else {
            unreachable!("on_cache_stats called with a non-stats event");
        };
        if hits + misses + sets + deletes != requests {
            self.flag(
                "cache.stats.conservation",
                e,
                format!(
                    "hits {hits} + misses {misses} + sets {sets} + deletes \
                     {deletes} != requests {requests}"
                ),
            );
        }
        if negative > misses {
            self.flag(
                "cache.stats.conservation",
                e,
                format!("negative lookups {negative} exceed misses {misses}"),
            );
        }
        let snap = StatsSnap {
            requests,
            hits,
            misses,
            negative,
            sets,
            deletes,
            delayed,
            capacity_items,
            serve_ms,
        };
        if let Some(prev) = self.last_stats.get(&e.pid) {
            let regressed = [
                ("requests", prev.requests, requests),
                ("hits", prev.hits, hits),
                ("misses", prev.misses, misses),
                ("negative", prev.negative, negative),
                ("sets", prev.sets, sets),
                ("deletes", prev.deletes, deletes),
                ("delayed", prev.delayed, delayed),
                ("capacity_items", prev.capacity_items, capacity_items),
                ("serve_ms", prev.serve_ms, serve_ms),
            ];
            for (name, old, new) in regressed {
                if new < old {
                    self.flag(
                        "cache.stats.monotonic",
                        e,
                        format!("cumulative {name} fell from {old} to {new}"),
                    );
                }
            }
        }
        self.last_stats.insert(e.pid, snap);
    }

    fn note_evict(&mut self, pid: u64, i: usize) {
        if let Some(w) = self.handlers.get_mut(&pid) {
            w.last_evict = Some(i);
        }
    }

    fn on_adjust(&mut self, e: &TraceEvent, side: ThresholdSide, old: u64, new: u64) {
        if old == new {
            self.flag(
                "threshold.step",
                e,
                format!("{side:?} adjustment recorded with no movement (stayed {old})"),
            );
        }
        if let Some(cfg) = &self.oracle.monitor {
            let step = cfg.step();
            if old.abs_diff(new) > step {
                self.flag(
                    "threshold.step",
                    e,
                    format!(
                        "{side:?} moved {old} -> {new} ({} bytes), exceeding the \
                         {:.0}%-of-top step of {step} bytes",
                        old.abs_diff(new),
                        cfg.step_fraction * 100.0
                    ),
                );
            }
        }
        self.pending_adjusts.push((side, old, new));
    }

    fn on_selection(
        &mut self,
        e: &TraceEvent,
        order: &str,
        target: u64,
        all: bool,
        candidates: &[CandidateInfo],
        selected: &[u64],
    ) {
        if self.pending_selection.is_some() {
            self.flag(
                "selection.replay",
                e,
                "two selections without an intervening monitor poll".to_string(),
            );
        }
        if all {
            let pids: Vec<u64> = candidates.iter().map(|c| c.pid).collect();
            if pids != selected {
                self.flag(
                    "selection.all",
                    e,
                    format!(
                        "signal-everyone selection picked {selected:?}, \
                         expected every candidate {pids:?}"
                    ),
                );
            }
        } else {
            match SortOrder::from_name(order) {
                Some(ord) => {
                    let cands: Vec<Candidate> =
                        candidates.iter().map(Candidate::from_info).collect();
                    let want = select_processes(&cands, ord, target);
                    if want != selected {
                        self.flag(
                            "selection.replay",
                            e,
                            format!(
                                "Algorithm 1 ({order}, target {target}) replays to \
                                 {want:?}, trace recorded {selected:?}"
                            ),
                        );
                    }
                }
                None => self.flag(
                    "selection.replay",
                    e,
                    format!("unknown sort order `{order}`"),
                ),
            }
        }
        self.pending_selection = Some(PendingSelection {
            target,
            all,
            selected: selected.to_vec(),
        });
    }

    /// `kill.class.order`: when a classed kill is recorded, the victim must
    /// be maximally expendable among the candidates still alive at that
    /// moment — a batch job must always die before a standard one, and a
    /// standard one before a latency-critical one.
    fn on_kill_class(&mut self, e: &TraceEvent, crit: Criticality, candidates: &[CandidateInfo]) {
        let Some(victim) = candidates.iter().find(|c| c.pid == e.pid) else {
            self.flag(
                "kill.class.order",
                e,
                format!(
                    "kill.class victim {} is not among its recorded candidates",
                    e.pid
                ),
            );
            return;
        };
        if victim.crit != crit {
            self.flag(
                "kill.class.order",
                e,
                format!(
                    "kill.class records the victim as {:?} but its candidate \
                     entry says {:?}",
                    crit, victim.crit
                ),
            );
        }
        if let Some(better) = candidates
            .iter()
            .find(|c| c.crit.expendability() > crit.expendability())
        {
            self.flag(
                "kill.class.order",
                e,
                format!(
                    "{crit:?} job {} killed while more-expendable {:?} candidate \
                     {} was still alive",
                    e.pid, better.crit, better.pid
                ),
            );
        }
    }

    #[allow(clippy::too_many_lines)]
    fn on_poll(&mut self, e: &TraceEvent) {
        let TraceData::MonitorPoll {
            zone,
            used,
            low,
            high,
            degraded,
            low_signalled,
            high_signalled,
            killed,
        } = &e.data
        else {
            unreachable!("on_poll called with a non-poll event");
        };
        let (zone, used, low, high, degraded) = (*zone, *used, *low, *high, *degraded);
        let ms = e.t.as_millis();

        // Degraded polls widen the enforcement margin with each consecutive
        // failed meminfo read, capped at MAX_DEGRADED_WIDENING.
        self.degraded_run = if degraded { self.degraded_run + 1 } else { 0 };
        let margin = match &self.oracle.monitor {
            Some(cfg) if degraded => {
                let step = (cfg.top as f64 * cfg.degraded_margin_fraction) as u64;
                step * self.degraded_run.min(u64::from(MAX_DEGRADED_WIDENING))
            }
            _ => 0,
        };

        // Ordering: low <= high <= top, always (§5.2).
        if low > high {
            self.flag(
                "threshold.ordering",
                e,
                format!("low threshold {low} above high threshold {high}"),
            );
        }
        if let Some(cfg) = &self.oracle.monitor {
            if high > cfg.top {
                self.flag(
                    "threshold.ordering",
                    e,
                    format!("high threshold {high} above top of memory {}", cfg.top),
                );
            }
        }

        // Adaptive-threshold replay: feed the shadow copy this poll's usage
        // and require the recorded moves and post-state to match (§5.2).
        if let Some(mut replica) = self.replica.take() {
            if degraded {
                if !self.pending_adjusts.is_empty() {
                    self.flag(
                        "threshold.replay",
                        e,
                        format!(
                            "degraded poll must not adjust thresholds, recorded {:?}",
                            self.pending_adjusts
                        ),
                    );
                }
            } else {
                let up = replica.observe(used);
                let mut want: Vec<(ThresholdSide, u64, u64)> = Vec::new();
                if let Some((old, new)) = up.low {
                    want.push((ThresholdSide::Low, old, new));
                }
                if let Some((old, new)) = up.high {
                    want.push((ThresholdSide::High, old, new));
                }
                if want != self.pending_adjusts {
                    self.flag(
                        "threshold.replay",
                        e,
                        format!(
                            "replay expected adjustments {:?}, trace recorded {:?}",
                            want, self.pending_adjusts
                        ),
                    );
                }
            }
            if replica.low() != low || replica.high() != high {
                self.flag(
                    "threshold.replay",
                    e,
                    format!(
                        "replayed thresholds ({}, {}) differ from recorded ({low}, {high})",
                        replica.low(),
                        replica.high()
                    ),
                );
                // Re-sync so one divergence does not cascade over the rest
                // of the trace.
                if let Some(cfg) = &self.oracle.monitor {
                    let mut resync = *cfg;
                    resync.initial_high = high.min(cfg.top);
                    resync.initial_low = low.min(resync.initial_high);
                    replica = AdaptiveThresholds::new(&resync);
                }
            }
            self.replica = Some(replica);
        }
        self.pending_adjusts.clear();

        // Zone replay against the recorded usage and thresholds (§5, §6).
        if let Some(cfg) = &self.oracle.monitor {
            let want = if used > cfg.top {
                TraceZone::AboveTop
            } else if used > high.saturating_sub(margin) {
                TraceZone::Red
            } else if used > low.saturating_sub(margin) {
                TraceZone::Yellow
            } else {
                TraceZone::Green
            };
            if want != zone {
                self.flag(
                    "zone.replay",
                    e,
                    format!(
                        "used {used} with thresholds ({low}, {high}), margin {margin} \
                         is {want:?}, poll recorded {zone:?}"
                    ),
                );
            }
        }

        // The early warning fires on the upward crossing of the low
        // threshold only, and never above top (§5).
        let above_low = used > low.saturating_sub(margin);
        let crossing = above_low && !self.prev_above_low && zone != TraceZone::AboveTop;
        if !crossing && !low_signalled.is_empty() {
            self.flag(
                "lowsignal.crossing",
                e,
                format!(
                    "low signals to {low_signalled:?} without an upward crossing \
                     of the low threshold"
                ),
            );
        }
        self.prev_above_low = above_low;

        // High-signal recipients are exactly the selection minus the pids
        // whose signal the watchdog suppressed (§5.1, §6).
        match self.pending_selection.take() {
            Some(sel) => {
                let want: Vec<u64> = sel
                    .selected
                    .iter()
                    .copied()
                    .filter(|p| !self.skipped.contains(p))
                    .collect();
                if want != *high_signalled {
                    self.flag(
                        "signal.recipients",
                        e,
                        format!(
                            "selection {:?} minus watchdog skips {:?} expects \
                             recipients {want:?}, poll recorded {high_signalled:?}",
                            sel.selected, self.skipped
                        ),
                    );
                }
                if let Some(cfg) = &self.oracle.monitor {
                    let want_target = match zone {
                        TraceZone::Red => used - high.saturating_sub(margin),
                        TraceZone::AboveTop => used.saturating_sub(cfg.top),
                        _ => {
                            self.flag(
                                "selection.zone",
                                e,
                                format!("selection ran in the {zone:?} zone"),
                            );
                            sel.target
                        }
                    };
                    if want_target != sel.target {
                        self.flag(
                            "selection.target",
                            e,
                            format!(
                                "selection target {} does not match the {zone:?}-zone \
                                 formula value {want_target}",
                                sel.target
                            ),
                        );
                    }
                    if zone == TraceZone::AboveTop && !sel.all {
                        self.flag(
                            "selection.all",
                            e,
                            "above-top selection must signal everyone".to_string(),
                        );
                    }
                }
            }
            None => {
                if !high_signalled.is_empty() {
                    self.flag(
                        "signal.recipients",
                        e,
                        format!("high signals to {high_signalled:?} without a selection"),
                    );
                }
            }
        }
        self.skipped.clear();

        // Every signalled pid must have a matching signal-bus event (sent,
        // dropped or delayed — the monitor cannot know the bus outcome).
        for (signalled, window, which) in [
            (low_signalled, &mut self.window_low, "low"),
            (high_signalled, &mut self.window_high, "high"),
        ] {
            let mut available = std::mem::take(window);
            let mut missing = Vec::new();
            for pid in signalled {
                match available.iter().position(|p| p == pid) {
                    Some(i) => {
                        available.swap_remove(i);
                    }
                    None => missing.push(*pid),
                }
            }
            if !missing.is_empty() {
                self.out.push(Violation {
                    invariant: "signal.delivery".to_string(),
                    at_ms: ms,
                    pid: e.pid,
                    message: format!(
                        "poll reports {which} signals to {missing:?} but the signal \
                         bus has no matching events"
                    ),
                });
            }
        }

        // Kills: victims match the monitor.kill events, happen only above
        // top, and only after the kill-timeout grace period (§6).
        if *killed != self.window_kills {
            self.flag(
                "kill.victims",
                e,
                format!(
                    "poll reports kills {killed:?} but monitor.kill events \
                     name {:?}",
                    self.window_kills
                ),
            );
        }
        self.window_kills.clear();
        if zone == TraceZone::AboveTop {
            let since = *self.above_top_since.get_or_insert(ms);
            if !killed.is_empty() {
                if let Some(cfg) = &self.oracle.monitor {
                    let grace = cfg.kill_timeout.as_millis();
                    if ms.saturating_sub(since) < grace {
                        self.flag(
                            "kill.grace",
                            e,
                            format!(
                                "killed {killed:?} only {} ms above top, before the \
                                 {grace} ms grace period",
                                ms.saturating_sub(since)
                            ),
                        );
                    }
                }
                self.above_top_since = None;
            }
        } else {
            self.above_top_since = None;
            if !killed.is_empty() {
                self.flag(
                    "kill.grace",
                    e,
                    format!("killed {killed:?} in the {zone:?} zone"),
                );
            }
        }
    }

    /// Recorded allow rate must equal the §4.2 formula applied to the
    /// recorded inputs.
    fn check_rate(
        &mut self,
        e: &TraceEvent,
        rate: f64,
        elapsed_ms: u64,
        epoch_ms: u64,
        num_epochs: u32,
        curve: &str,
    ) {
        let Some(c) = curve_from_name(curve) else {
            self.flag("alloc.rate", e, format!("unknown rate curve `{curve}`"));
            return;
        };
        let denom = (epoch_ms * u64::from(num_epochs)).max(1) as f64;
        let want = c.rate(elapsed_ms as f64 / denom);
        if (want - rate).abs() > 1e-9 {
            self.flag(
                "alloc.rate",
                e,
                format!(
                    "recorded rate {rate} but {curve}({elapsed_ms} / ({epoch_ms} x \
                     {num_epochs})) = {want}"
                ),
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_gate(
        &mut self,
        e: &TraceEvent,
        delayed: bool,
        rate: f64,
        elapsed_ms: u64,
        epoch_ms: u64,
        num_epochs: u32,
        curve: &str,
    ) {
        self.check_rate(e, rate, elapsed_ms, epoch_ms, num_epochs, curve);
        if rate >= 1.0 {
            self.flag(
                "alloc.stride",
                e,
                "gate event recorded at full allow rate (the gate is a no-op)".to_string(),
            );
            return;
        }
        let st = self.alloc.entry(e.pid).or_default();
        st.counter += 1;
        let want = if rate <= 0.0 {
            true
        } else {
            let stride = (1.0 / rate).floor().max(1.0) as u64;
            !st.counter.is_multiple_of(stride)
        };
        if want != delayed {
            self.flag(
                "alloc.stride",
                e,
                format!(
                    "at rate {rate} the \u{230a}1/r\u{230b} gate expects delayed={want}, \
                     trace recorded delayed={delayed}"
                ),
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_batch(
        &mut self,
        e: &TraceEvent,
        n: u64,
        delayed: u64,
        rate: f64,
        elapsed_ms: u64,
        epoch_ms: u64,
        num_epochs: u32,
        curve: &str,
    ) {
        self.check_rate(e, rate, elapsed_ms, epoch_ms, num_epochs, curve);
        if rate >= 1.0 || n == 0 {
            self.flag(
                "alloc.carry",
                e,
                "batch event recorded at full allow rate (the gate is a no-op)".to_string(),
            );
            return;
        }
        let st = self.alloc.entry(e.pid).or_default();
        let exact = n as f64 * (1.0 - rate) + st.carry;
        let want = (exact.floor() as u64).min(n);
        st.carry = exact - want as f64;
        if want != delayed {
            self.flag(
                "alloc.carry",
                e,
                format!(
                    "batch of {n} at rate {rate} expects {want} delayed, \
                     trace recorded {delayed}"
                ),
            );
        }
    }

    /// `reclaim.packet.order`: a packet id may be enqueued only once per
    /// drain. Handler windows and process restarts reset the id space; so
    /// does a re-used id once every packet of the previous drain finished
    /// (back-to-back drains outside a handler window, e.g. direct signal
    /// delivery in unit harnesses).
    fn on_packet_enqueue(
        &mut self,
        e: &TraceEvent,
        packet: u64,
        pkind: &str,
        bucket: m3_sim::trace::PacketBucket,
        deps: &[u64],
    ) {
        let drain = self.packets.entry(e.pid).or_default();
        if drain.contains_key(&packet) {
            if drain.values().all(|p| p.finished) {
                drain.clear();
            } else {
                let msg = format!("packet {packet} enqueued twice in one drain");
                self.flag("reclaim.packet.order", e, msg);
                return;
            }
        }
        drain.insert(
            packet,
            PacketState {
                pkind: pkind.to_string(),
                bucket,
                deps: deps.to_vec(),
                enq_at_ms: e.t.as_millis(),
                started: false,
                finished: false,
            },
        );
    }

    /// A packet start must come after its enqueue and only once
    /// (`reclaim.packet.order`), after every dependency finished
    /// (`reclaim.packet.deps`), and only once its bucket is open — no
    /// packet of a strictly earlier bucket may still be unfinished
    /// (`reclaim.packet.bucket`).
    fn on_packet_start(
        &mut self,
        e: &TraceEvent,
        packet: u64,
        bucket: m3_sim::trace::PacketBucket,
    ) {
        let drain = self.packets.entry(e.pid).or_default();
        let Some(st) = drain.get(&packet) else {
            let msg = format!("packet {packet} started without an enqueue");
            self.flag("reclaim.packet.order", e, msg);
            return;
        };
        let mut flags: Vec<(&str, String)> = Vec::new();
        if st.started {
            flags.push((
                "reclaim.packet.order",
                format!("packet {packet} started twice"),
            ));
        }
        if st.bucket != bucket {
            flags.push((
                "reclaim.packet.order",
                format!(
                    "packet {packet} started in bucket {bucket:?} but was \
                     enqueued into {:?}",
                    st.bucket
                ),
            ));
        }
        for &d in &st.deps {
            if !drain.get(&d).is_some_and(|dep| dep.finished) {
                flags.push((
                    "reclaim.packet.deps",
                    format!("packet {packet} started before its dependency {d} finished"),
                ));
            }
        }
        let enq_bucket = st.bucket;
        if let Some((id, earlier)) = drain
            .iter()
            .find(|(_, p)| p.bucket < enq_bucket && !p.finished)
        {
            flags.push((
                "reclaim.packet.bucket",
                format!(
                    "packet {packet} ({enq_bucket:?}) started while packet {id} \
                     of earlier bucket {:?} was unfinished",
                    earlier.bucket
                ),
            ));
        }
        drain.get_mut(&packet).expect("checked above").started = true;
        for (invariant, msg) in flags {
            self.flag(invariant, e, msg);
        }
    }

    /// A finish must close a started, not-yet-finished packet
    /// (`reclaim.packet.order`); its bytes feed the window's conservation
    /// totals by packet-kind class.
    fn on_packet_finish(
        &mut self,
        e: &TraceEvent,
        packet: u64,
        bucket: m3_sim::trace::PacketBucket,
        bytes: u64,
        returned: u64,
    ) {
        let drain = self.packets.entry(e.pid).or_default();
        let pkind = match drain.get_mut(&packet) {
            None => {
                let msg = format!("packet {packet} finished without an enqueue");
                self.flag("reclaim.packet.order", e, msg);
                return;
            }
            Some(st) => {
                let mut flags: Vec<String> = Vec::new();
                if !st.started {
                    flags.push(format!("packet {packet} finished before it started"));
                }
                if st.finished {
                    flags.push(format!("packet {packet} finished twice"));
                }
                if st.bucket != bucket {
                    flags.push(format!(
                        "packet {packet} finished in bucket {bucket:?} but was \
                         enqueued into {:?}",
                        st.bucket
                    ));
                }
                st.finished = true;
                let pkind = st.pkind.clone();
                for msg in flags {
                    self.flag("reclaim.packet.order", e, msg);
                }
                pkind
            }
        };
        if let Some(w) = self.handlers.get_mut(&e.pid) {
            w.saw_packets = true;
            match pkind.as_str() {
                "evict_blocks" => w.pkt_blocks += bytes,
                "evict_class" => w.pkt_class += bytes,
                "evict_slabs" => w.pkt_slabs += bytes,
                k if k.starts_with("gc") => w.pkt_gc += bytes,
                _ => {}
            }
            w.pkt_returned += returned;
        }
    }

    /// A stall must name an enqueued, still-unfinished dependency — a stall
    /// on a finished (or unknown) packet means the scheduler's ready logic
    /// diverged (`reclaim.packet.deps`).
    fn on_packet_stall(&mut self, e: &TraceEvent, packet: u64, waiting_on: u64) {
        let drain = self.packets.entry(e.pid).or_default();
        let unknown = !drain.contains_key(&packet);
        let bad_dep = drain.get(&waiting_on).is_none_or(|dep| dep.finished);
        if unknown {
            let msg = format!("packet {packet} stalled without an enqueue");
            self.flag("reclaim.packet.order", e, msg);
        }
        if bad_dep {
            let msg = format!(
                "packet {packet} recorded a stall on packet {waiting_on}, which \
                 is not an unfinished enqueued packet"
            );
            self.flag("reclaim.packet.deps", e, msg);
        }
    }

    /// Top-down reclamation (§4.1): within one handler window the layers
    /// act top to bottom — framework/cache eviction, then runtime GC, then
    /// memory returned to the OS. For packetized handlers, the per-packet
    /// bytes must also conserve against the window's aggregate events, and
    /// no enqueued packet may be left unfinished.
    fn on_handler_end(&mut self, e: &TraceEvent) {
        let Some(w) = self.handlers.remove(&e.pid) else {
            return;
        };
        if let (Some(ev), Some(gc)) = (w.last_evict, w.first_gc) {
            if ev > gc {
                self.flag(
                    "topdown.order",
                    e,
                    "eviction ran after the runtime GC inside one handler".to_string(),
                );
            }
        }
        if let (Some(gc), Some(m)) = (w.first_gc, w.first_madvise) {
            if gc > m {
                self.flag(
                    "topdown.order",
                    e,
                    "memory returned to the OS before the runtime GC ran".to_string(),
                );
            }
        }
        if let (Some(ev), Some(m)) = (w.last_evict, w.first_madvise) {
            if ev > m {
                self.flag(
                    "topdown.order",
                    e,
                    "memory returned to the OS before the eviction above it".to_string(),
                );
            }
        }
        if w.saw_packets {
            let pairs = [
                ("evict_blocks", "evict.blocks", w.pkt_blocks, w.agg_blocks),
                ("evict_class", "evict.class", w.pkt_class, w.agg_class),
                ("evict_slabs", "evict.slabs", w.pkt_slabs, w.agg_slabs),
                ("gc_*", "gc.*", w.pkt_gc, w.agg_gc),
                ("* returned", "mem.madvise", w.pkt_returned, w.agg_madvise),
            ];
            for (pkt_name, agg_name, pkt, agg) in pairs {
                if pkt != agg {
                    self.flag(
                        "reclaim.packet.conservation",
                        e,
                        format!(
                            "{pkt_name} packets finished {pkt} bytes inside the \
                             handler but its {agg_name} events record {agg}"
                        ),
                    );
                }
            }
        }
        if let Some(drain) = self.packets.remove(&e.pid) {
            for (id, st) in drain {
                if !st.finished {
                    self.out.push(Violation {
                        invariant: "reclaim.packet.orphan".to_string(),
                        at_ms: st.enq_at_ms,
                        pid: e.pid,
                        message: format!(
                            "packet {id} ({}) was enqueued but never finished \
                             before its handler ended",
                            st.pkind
                        ),
                    });
                }
            }
        }
    }
}

/// `ceil(before × fraction)`, clamped to the population.
fn expected_fraction(before: u64, fraction: f64) -> u64 {
    ((before as f64 * fraction).ceil() as u64).min(before)
}

fn curve_from_name(name: &str) -> Option<RateCurve> {
    match name {
        "linear" => Some(RateCurve::Linear),
        "exponential" => Some(RateCurve::Exponential),
        "step" => Some(RateCurve::Step),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_core::alloc::AdaptiveAllocator;
    use m3_core::monitor::{Monitor, MONITOR_PID};
    use m3_os::{Kernel, KernelConfig};
    use m3_sim::clock::SimTime;
    use m3_sim::trace::GcLayer;
    use m3_sim::units::GIB;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn paper() -> MonitorConfig {
        MonitorConfig::paper_64gb()
    }

    /// Drives a real monitor over a real kernel and returns the trace.
    fn monitored_run(usages: &[u64]) -> (TraceLog, MonitorConfig) {
        let cfg = paper();
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let mut mon = Monitor::new(cfg);
        os.set_time(t(0));
        let a = os.spawn("a");
        let b = os.spawn("b");
        mon.register(a);
        mon.register(b);
        let mut held = 0u64;
        for (i, &used) in usages.iter().enumerate() {
            let now = t(1 + i as u64);
            os.set_time(now);
            if os.is_alive(a) {
                if used > held {
                    os.grow(a, used - held).unwrap();
                } else if held > used {
                    os.release(a, held - used).unwrap();
                }
                held = used;
            }
            mon.poll(&mut os, now);
            os.take_signals(a);
            os.take_signals(b);
        }
        (std::mem::take(&mut os.trace), cfg)
    }

    #[test]
    fn clean_monitor_run_has_no_violations() {
        // Green, yellow crossings, sustained red (threshold adjustments once
        // the window fills), and relief back to green.
        let mut usages = vec![10 * GIB, 52 * GIB, 30 * GIB, 53 * GIB];
        usages.extend(vec![58 * GIB; 40]);
        usages.extend([20 * GIB, 52 * GIB]);
        let (trace, cfg) = monitored_run(&usages);
        assert!(trace.count("monitor.poll") == usages.len());
        assert!(
            trace.count("threshold.adjust") > 0,
            "sustained red must adjust thresholds"
        );
        let violations = Oracle::paper(Some(cfg)).check(&trace);
        assert_eq!(violations, Vec::new());
    }

    #[test]
    fn above_top_kill_run_is_conformant() {
        let mut usages = vec![63 * GIB; 31];
        usages.push(10 * GIB);
        let (trace, cfg) = monitored_run(&usages);
        assert!(trace.count("monitor.kill") > 0, "kill path must trigger");
        let violations = Oracle::paper(Some(cfg)).check(&trace);
        assert_eq!(violations, Vec::new());
    }

    #[test]
    fn empty_trace_is_conformant() {
        assert!(Oracle::paper(Some(paper()))
            .check(&TraceLog::new())
            .is_empty());
        assert!(Oracle::paper(None).check(&TraceLog::disabled()).is_empty());
    }

    #[test]
    fn oversized_threshold_move_is_flagged() {
        let cfg = paper();
        let mut log = TraceLog::new();
        // A 5%-of-top move: more than double the allowed 2% step.
        let step5 = (cfg.top as f64 * 0.05) as u64;
        log.record(
            t(1),
            MONITOR_PID,
            TraceData::ThresholdAdjust {
                side: ThresholdSide::Low,
                old: cfg.initial_low,
                new: cfg.initial_low - step5,
            },
        );
        let violations = Oracle::paper(Some(cfg)).check(&log);
        assert!(
            violations.iter().any(|v| v.invariant == "threshold.step"),
            "got {violations:?}"
        );
    }

    #[test]
    fn tampered_selection_is_flagged() {
        let (trace, cfg) = monitored_run(&[58 * GIB; 4]);
        // Rewrite one selection's outcome to a wrong pid set.
        let mut log = TraceLog::new();
        for e in trace.events() {
            let data = match &e.data {
                TraceData::Selection {
                    order,
                    target,
                    all,
                    candidates,
                    ..
                } => TraceData::Selection {
                    order: order.clone(),
                    target: *target,
                    all: *all,
                    candidates: candidates.clone(),
                    selected: vec![999],
                },
                d => d.clone(),
            };
            log.record(e.t, e.pid, data);
        }
        let violations = Oracle::paper(Some(cfg)).check(&log);
        assert!(
            violations.iter().any(|v| v.invariant == "selection.replay"),
            "got {violations:?}"
        );
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == "signal.recipients"),
            "recipients no longer match the (tampered) selection"
        );
    }

    #[test]
    fn high_signal_without_selection_is_flagged() {
        let cfg = paper();
        let mut log = TraceLog::new();
        log.record(t(1), 3, TraceData::SignalSent { sig: SigKind::High });
        log.record(
            t(1),
            MONITOR_PID,
            TraceData::MonitorPoll {
                zone: TraceZone::Red,
                used: 56 * GIB,
                low: cfg.initial_low,
                high: cfg.initial_high,
                degraded: false,
                low_signalled: vec![],
                high_signalled: vec![3],
                killed: vec![],
            },
        );
        let violations = Oracle::paper(Some(cfg)).check(&log);
        assert!(violations
            .iter()
            .any(|v| v.invariant == "signal.recipients"));
    }

    #[test]
    fn kill_before_grace_period_is_flagged() {
        let cfg = paper();
        let mut log = TraceLog::new();
        log.record(t(1), 7, TraceData::MonitorKill { rss: GIB });
        log.record(
            t(1),
            MONITOR_PID,
            TraceData::MonitorPoll {
                zone: TraceZone::AboveTop,
                used: 63 * GIB,
                low: cfg.initial_low,
                high: cfg.initial_high,
                degraded: false,
                low_signalled: vec![],
                high_signalled: vec![],
                killed: vec![7],
            },
        );
        let violations = Oracle::paper(Some(cfg)).check(&log);
        assert!(
            violations.iter().any(|v| v.invariant == "kill.grace"),
            "first above-top poll cannot kill yet: {violations:?}"
        );
    }

    /// Drives a real monitor over a batch hog (spawned first) and a later
    /// latency-critical hog whose combined usage sits above top until the
    /// grace period expires and the monitor kills down to top.
    fn classed_kill_run(crit_blind: bool) -> (TraceLog, MonitorConfig) {
        let mut cfg = paper();
        cfg.crit_blind = crit_blind;
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let mut mon = Monitor::new(cfg);
        os.set_time(t(0));
        let batch = os.spawn("batch");
        mon.register_with_class(batch, Criticality::Batch);
        os.grow(batch, 31 * GIB).unwrap();
        os.set_time(t(5));
        let critical = os.spawn("critical");
        mon.register_with_class(critical, Criticality::LatencyCritical);
        os.grow(critical, 32 * GIB).unwrap();
        for s in 6..45 {
            let now = t(s);
            os.set_time(now);
            mon.poll(&mut os, now);
            os.take_signals(batch);
            os.take_signals(critical);
        }
        (std::mem::take(&mut os.trace), cfg)
    }

    #[test]
    fn classed_kill_run_is_conformant_and_spares_the_critical_job() {
        let (trace, cfg) = classed_kill_run(false);
        assert!(trace.count("kill.class") > 0, "kill path must trigger");
        let violations = Oracle::paper(Some(cfg)).check(&trace);
        assert_eq!(violations, Vec::new());
    }

    #[test]
    fn criticality_blind_policy_is_caught_by_the_oracle() {
        // The ablation sorts by posture alone: newest-first kills the
        // latency-critical job while the batch job is still alive. The
        // flagship invariant must catch exactly this.
        let (trace, cfg) = classed_kill_run(true);
        assert!(trace.count("kill.class") > 0, "kill path must trigger");
        let violations = Oracle::paper(Some(cfg)).check(&trace);
        assert!(
            violations.iter().any(|v| v.invariant == "kill.class.order"),
            "posture-only kill under mixed criticality must be flagged: {violations:?}"
        );
    }

    #[test]
    fn kill_class_victim_missing_from_candidates_is_flagged() {
        let mut log = TraceLog::new();
        log.record(
            t(1),
            7,
            TraceData::KillClass {
                crit: Criticality::Batch,
                candidates: vec![CandidateInfo {
                    pid: 8,
                    spawned_at_ms: 0,
                    rss: GIB,
                    expected_reclaim: 0,
                    crit: Criticality::Batch,
                }],
            },
        );
        let violations = Oracle::paper(Some(paper())).check(&log);
        assert!(
            violations.iter().any(|v| v.invariant == "kill.class.order"),
            "got {violations:?}"
        );
    }

    #[test]
    fn kill_class_crit_mismatch_is_flagged() {
        let mut log = TraceLog::new();
        log.record(
            t(1),
            7,
            TraceData::KillClass {
                crit: Criticality::Batch,
                candidates: vec![CandidateInfo {
                    pid: 7,
                    spawned_at_ms: 0,
                    rss: GIB,
                    expected_reclaim: 0,
                    crit: Criticality::Standard,
                }],
            },
        );
        let violations = Oracle::paper(Some(paper())).check(&log);
        assert!(
            violations.iter().any(|v| v.invariant == "kill.class.order"),
            "got {violations:?}"
        );
    }

    #[test]
    fn alloc_gate_replay_accepts_the_real_allocator() {
        let mut a = AdaptiveAllocator::new(1);
        a.on_high_signal(SimTime::from_millis(0));
        a.on_reclaim_done(SimTime::from_millis(10_000));
        let mut log = TraceLog::new();
        let now = SimTime::from_millis(1500); // rate 15%
        for _ in 0..50 {
            let snap = a.gate_snapshot(now);
            let delayed = a.should_delay(now);
            log.record(
                now,
                4,
                TraceData::AllocGate {
                    delayed,
                    rate: snap.rate,
                    elapsed_ms: snap.elapsed_ms,
                    epoch_ms: snap.epoch_ms,
                    num_epochs: snap.num_epochs,
                    curve: snap.curve.to_string(),
                },
            );
        }
        assert!(Oracle::paper(None).check(&log).is_empty());
    }

    #[test]
    fn wrong_stride_decision_is_flagged() {
        let mut log = TraceLog::new();
        // rate 0.5 -> stride 2: first call (counter 1) must be delayed.
        log.record(
            SimTime::from_millis(500),
            4,
            TraceData::AllocGate {
                delayed: false,
                rate: 0.5,
                elapsed_ms: 500,
                epoch_ms: 1000,
                num_epochs: 1,
                curve: "linear".to_string(),
            },
        );
        let violations = Oracle::paper(None).check(&log);
        assert!(violations.iter().any(|v| v.invariant == "alloc.stride"));
    }

    #[test]
    fn misreported_rate_is_flagged() {
        let mut log = TraceLog::new();
        log.record(
            SimTime::from_millis(500),
            4,
            TraceData::AllocGate {
                delayed: true,
                rate: 0.9, // linear(500/1000) = 0.5
                elapsed_ms: 500,
                epoch_ms: 1000,
                num_epochs: 1,
                curve: "linear".to_string(),
            },
        );
        let violations = Oracle::paper(None).check(&log);
        assert!(violations.iter().any(|v| v.invariant == "alloc.rate"));
    }

    #[test]
    fn batch_carry_replay_accepts_the_real_allocator() {
        let mut a = AdaptiveAllocator::new(5);
        a.on_high_signal(SimTime::from_millis(0));
        a.on_reclaim_done(SimTime::from_millis(700));
        let mut log = TraceLog::new();
        for i in 0..40u64 {
            let now = SimTime::from_millis(800 + i * 13);
            let snap = a.gate_snapshot(now);
            let delayed = a.delayed_of(7, now);
            if snap.rate < 1.0 {
                log.record(
                    now,
                    9,
                    TraceData::AllocBatch {
                        n: 7,
                        delayed,
                        rate: snap.rate,
                        elapsed_ms: snap.elapsed_ms,
                        epoch_ms: snap.epoch_ms,
                        num_epochs: snap.num_epochs,
                        curve: snap.curve.to_string(),
                    },
                );
            }
        }
        assert!(log.count("alloc.batch") > 0);
        assert!(Oracle::paper(None).check(&log).is_empty());
    }

    #[test]
    fn wrong_batch_split_is_flagged() {
        let mut log = TraceLog::new();
        log.record(
            SimTime::from_millis(250),
            9,
            TraceData::AllocBatch {
                n: 100,
                delayed: 10, // linear rate 0.25 -> 75 delayed
                rate: 0.25,
                elapsed_ms: 250,
                epoch_ms: 1000,
                num_epochs: 1,
                curve: "linear".to_string(),
            },
        );
        let violations = Oracle::paper(None).check(&log);
        assert!(violations.iter().any(|v| v.invariant == "alloc.carry"));
    }

    #[test]
    fn table1_magnitudes_are_enforced() {
        let mut log = TraceLog::new();
        // 1/8 of 64 blocks = 8: recording 3 is a violation.
        log.record(
            t(1),
            2,
            TraceData::EvictBlocks {
                before: 64,
                evicted: 3,
                bytes: 0,
                reason: EvictReason::HighSignal,
            },
        );
        // 1% of 300 slabs rounds up to 3: recording 30 is a violation.
        log.record(
            t(2),
            3,
            TraceData::EvictSlabs {
                before: 300,
                evicted: 30,
                items: 0,
                bytes: 0,
                reason: EvictReason::LowSignal,
            },
        );
        // Capacity evictions are policy-free: any magnitude is fine.
        log.record(
            t(3),
            2,
            TraceData::EvictBlocks {
                before: 64,
                evicted: 64,
                bytes: 0,
                reason: EvictReason::Capacity,
            },
        );
        let violations = Oracle::paper(None).check(&log);
        assert_eq!(
            violations
                .iter()
                .filter(|v| v.invariant.starts_with("evict."))
                .count(),
            2,
            "got {violations:?}"
        );
    }

    #[test]
    fn correct_table1_magnitudes_pass() {
        let mut log = TraceLog::new();
        log.record(
            t(1),
            2,
            TraceData::EvictBlocks {
                before: 60,
                evicted: 8, // ceil(60/8)
                bytes: 0,
                reason: EvictReason::HighSignal,
            },
        );
        log.record(
            t(2),
            3,
            TraceData::EvictSlabs {
                before: 10,
                evicted: 1, // ceil(0.04 * 10), min one slab
                items: 0,
                bytes: 0,
                reason: EvictReason::HighSignal,
            },
        );
        assert!(Oracle::paper(None).check(&log).is_empty());
    }

    /// `evict.class` detail for one signal eviction: classes summing to
    /// (3 slabs, 15 items, 3 MiB) before a 300-slab low-signal aggregate.
    fn class_group(log: &mut TraceLog, reason: EvictReason) {
        for (chunk, before, evicted, items, bytes) in [
            (128, 200, 2, 10, 2 * 1024 * 1024),
            (1024, 100, 1, 5, 1024 * 1024),
        ] {
            log.record(
                t(4),
                3,
                TraceData::EvictClass {
                    chunk,
                    before,
                    evicted,
                    items,
                    bytes,
                    reason,
                },
            );
        }
    }

    #[test]
    fn class_detail_conserving_to_its_aggregate_passes() {
        let mut log = TraceLog::new();
        class_group(&mut log, EvictReason::LowSignal);
        log.record(
            t(4),
            3,
            TraceData::EvictSlabs {
                before: 300,
                evicted: 3, // ceil(0.01 * 300)
                items: 15,
                bytes: 3 * 1024 * 1024,
                reason: EvictReason::LowSignal,
            },
        );
        assert_eq!(Oracle::paper(None).check(&log), Vec::new());
    }

    #[test]
    fn class_detail_that_does_not_sum_is_flagged() {
        let mut log = TraceLog::new();
        class_group(&mut log, EvictReason::LowSignal);
        log.record(
            t(4),
            3,
            TraceData::EvictSlabs {
                before: 300,
                evicted: 3,
                items: 99, // group sums to 15
                bytes: 3 * 1024 * 1024,
                reason: EvictReason::LowSignal,
            },
        );
        let violations = Oracle::paper(None).check(&log);
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == "evict.class.conservation"),
            "got {violations:?}"
        );
    }

    #[test]
    fn class_reason_mismatch_is_flagged() {
        let mut log = TraceLog::new();
        class_group(&mut log, EvictReason::HighSignal);
        log.record(
            t(4),
            3,
            TraceData::EvictSlabs {
                before: 300,
                evicted: 3,
                items: 15,
                bytes: 3 * 1024 * 1024,
                reason: EvictReason::LowSignal,
            },
        );
        let violations = Oracle::paper(None).check(&log);
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == "evict.class.conservation"),
            "got {violations:?}"
        );
    }

    #[test]
    fn class_overdraw_is_flagged() {
        let mut log = TraceLog::new();
        log.record(
            t(4),
            3,
            TraceData::EvictClass {
                chunk: 128,
                before: 2,
                evicted: 5, // more than the class held
                items: 10,
                bytes: 5 * 1024 * 1024,
                reason: EvictReason::HighSignal,
            },
        );
        let violations = Oracle::paper(None).check(&log);
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == "evict.class.bound"),
            "got {violations:?}"
        );
    }

    #[test]
    fn orphaned_class_detail_is_flagged() {
        let mut log = TraceLog::new();
        class_group(&mut log, EvictReason::LowSignal);
        // No aggregate follows: both class events are orphans.
        let violations = Oracle::paper(None).check(&log);
        assert_eq!(
            violations
                .iter()
                .filter(|v| v.invariant == "evict.class.orphan")
                .count(),
            2,
            "got {violations:?}"
        );
    }

    #[test]
    fn analytic_aggregate_without_class_detail_passes() {
        // Statistical runs record no class granularity; the aggregate alone
        // is conformant.
        let mut log = TraceLog::new();
        log.record(
            t(4),
            3,
            TraceData::EvictSlabs {
                before: 300,
                evicted: 3,
                items: 700,
                bytes: 3 * 1024 * 1024,
                reason: EvictReason::LowSignal,
            },
        );
        assert_eq!(Oracle::paper(None).check(&log), Vec::new());
    }

    fn stats(requests: u64, hits: u64, serve_ms: u64) -> TraceData {
        TraceData::CacheStats {
            requests,
            hits,
            misses: requests - hits,
            negative: 0,
            sets: 0,
            deletes: 0,
            delayed: 0,
            capacity_items: 0,
            resident_bytes: GIB,
            live_items: 1000,
            serve_ms,
        }
    }

    #[test]
    fn cache_stats_that_do_not_conserve_are_flagged() {
        let mut log = TraceLog::new();
        log.record(
            t(1),
            3,
            TraceData::CacheStats {
                requests: 100,
                hits: 40,
                misses: 30,   // 40 + 30 + 10 + 10 = 90 != 100
                negative: 50, // and negative > misses
                sets: 10,
                deletes: 10,
                delayed: 0,
                capacity_items: 0,
                resident_bytes: 0,
                live_items: 0,
                serve_ms: 10,
            },
        );
        let violations = Oracle::paper(None).check(&log);
        assert_eq!(
            violations
                .iter()
                .filter(|v| v.invariant == "cache.stats.conservation")
                .count(),
            2,
            "got {violations:?}"
        );
    }

    #[test]
    fn cache_stats_regression_is_flagged() {
        let mut log = TraceLog::new();
        log.record(t(1), 3, stats(1000, 800, 100));
        log.record(t(2), 3, stats(500, 400, 200)); // cumulative counters fell
        let violations = Oracle::paper(None).check(&log);
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == "cache.stats.monotonic"),
            "got {violations:?}"
        );
    }

    #[test]
    fn monotone_cache_stats_pass() {
        let mut log = TraceLog::new();
        log.record(t(1), 3, stats(1000, 800, 100));
        log.record(t(2), 3, stats(2000, 1500, 200));
        log.record(t(3), 3, stats(2000, 1500, 200)); // idle snapshot repeats
        assert_eq!(Oracle::paper(None).check(&log), Vec::new());
    }

    /// End to end: a real key-granular trace run — preload, Zipf serve,
    /// a low and a high signal mid-run — replays with zero violations,
    /// including the class-granular Table 1 checks and the batched
    /// allocation-gate carry.
    #[test]
    fn keyed_cache_run_is_conformant() {
        use m3_cache::{KvApp, TraceWorkload, TrafficPattern};
        use m3_core::{M3Participant, ThresholdSignal};
        use m3_sim::clock::SimDuration;

        let twl = TraceWorkload {
            key_space: 20_000,
            total_ops: 120_000,
            phase_ops: 30_000,
            ..TraceWorkload::smoke(TrafficPattern::HotKeyShift)
        };
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let pid = os.spawn("memcached-trace");
        let mut app = KvApp::trace_memcached(pid, twl, 0, true);
        let tick = SimDuration::from_millis(100);
        let mut now = t(0);
        let mut ticks = 0u64;
        while !app.finished() {
            app.tick(&mut os, now, tick);
            now += tick;
            ticks += 1;
            if ticks == 10 {
                app.handle_signal(ThresholdSignal::Low, &mut os, now);
            }
            if ticks == 25 {
                app.handle_signal(ThresholdSignal::High, &mut os, now);
            }
            assert!(ticks < 1_000_000, "run must terminate");
        }
        let trace = std::mem::take(&mut os.trace);
        assert!(trace.count("evict.class") > 0, "class detail recorded");
        assert!(trace.count("cache.stats") > 0, "stats snapshots recorded");
        assert!(trace.count("alloc.batch") > 0, "gate events recorded");
        assert_eq!(Oracle::paper(None).check(&trace), Vec::new());
    }

    #[test]
    fn bottom_up_reclamation_is_flagged() {
        let mut log = TraceLog::new();
        log.record(t(1), 5, TraceData::HandlerStart { sig: SigKind::High });
        log.record(
            t(1),
            5,
            TraceData::Gc {
                layer: GcLayer::Mixed,
                reclaimed: GIB,
                returned: GIB,
                pause_ms: 80,
            },
        );
        log.record(t(1), 5, TraceData::Madvise { bytes: GIB });
        log.record(
            t(1),
            5,
            TraceData::EvictBlocks {
                before: 8,
                evicted: 1,
                bytes: GIB,
                reason: EvictReason::HighSignal,
            },
        );
        log.record(
            t(2),
            5,
            TraceData::HandlerEnd {
                sig: SigKind::High,
                duration_ms: 1000,
                returned: GIB,
            },
        );
        let violations = Oracle::paper(None).check(&log);
        assert!(
            violations.iter().any(|v| v.invariant == "topdown.order"),
            "got {violations:?}"
        );
    }

    #[test]
    fn top_down_window_passes() {
        let mut log = TraceLog::new();
        log.record(t(1), 5, TraceData::HandlerStart { sig: SigKind::High });
        log.record(
            t(1),
            5,
            TraceData::EvictBlocks {
                before: 8,
                evicted: 1,
                bytes: GIB,
                reason: EvictReason::HighSignal,
            },
        );
        log.record(
            t(1),
            5,
            TraceData::Gc {
                layer: GcLayer::Young,
                reclaimed: GIB,
                returned: GIB,
                pause_ms: 10,
            },
        );
        log.record(t(1), 5, TraceData::Madvise { bytes: GIB });
        log.record(
            t(2),
            5,
            TraceData::HandlerEnd {
                sig: SigKind::High,
                duration_ms: 1000,
                returned: GIB,
            },
        );
        assert!(Oracle::paper(None).check(&log).is_empty());
    }

    #[test]
    fn respawn_resets_the_gate_replay() {
        let mut log = TraceLog::new();
        let gate = |delayed| TraceData::AllocGate {
            delayed,
            rate: 0.5,
            elapsed_ms: 500,
            epoch_ms: 1000,
            num_epochs: 1,
            curve: "linear".to_string(),
        };
        // counter 1 -> delayed, counter 2 -> admitted.
        log.record(SimTime::from_millis(500), 4, gate(true));
        log.record(SimTime::from_millis(500), 4, gate(false));
        // The process respawns: its allocator starts over, so the next
        // decision is counter 1 -> delayed again.
        log.record(
            SimTime::from_millis(501),
            4,
            TraceData::ProcRespawn { name: "a".into() },
        );
        log.record(SimTime::from_millis(502), 4, gate(true));
        assert!(Oracle::paper(None).check(&log).is_empty());
    }

    #[test]
    fn violations_serialize_round_trip() {
        let v = Violation {
            invariant: "alloc.stride".to_string(),
            at_ms: 1500,
            pid: 4,
            message: "x".to_string(),
        };
        let c = v.serialize();
        let back = Violation::deserialize(&c).expect("round trip");
        assert_eq!(v, back);
    }

    // ---- FleetOracle --------------------------------------------------

    const GRACE_MS: u64 = 10_000;

    fn fleet_oracle() -> FleetOracle {
        FleetOracle::new(GRACE_MS)
    }

    fn pressure(node: u64, zone: TraceZone) -> TraceData {
        TraceData::FleetPressure {
            node,
            zone,
            used: 0,
            reserved: 0,
            high: 0,
            top: 0,
            escalations: 0,
        }
    }

    fn place(job: u64, node: u64) -> TraceData {
        TraceData::FleetPlace {
            job,
            node,
            used: 0,
            demand: 0,
            top: 0,
        }
    }

    #[test]
    fn fleet_place_on_green_node_is_conformant() {
        let mut log = TraceLog::new();
        log.record(t(1), 0, pressure(0, TraceZone::Green));
        log.record(t(1), 0, pressure(1, TraceZone::Yellow));
        log.record(t(1), 0, place(0, 0));
        log.record(t(2), 1, place(1, 1));
        assert!(fleet_oracle().check(&log).is_empty());
    }

    #[test]
    fn fleet_place_on_red_node_is_caught() {
        let mut log = TraceLog::new();
        log.record(t(1), 0, pressure(2, TraceZone::Red));
        log.record(t(1), 0, place(0, 2));
        let v = fleet_oracle().check(&log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "fleet.place.red");
    }

    #[test]
    fn fleet_place_above_top_is_caught() {
        let mut log = TraceLog::new();
        log.record(t(1), 0, pressure(0, TraceZone::AboveTop));
        log.record(t(1), 0, place(3, 0));
        let v = fleet_oracle().check(&log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "fleet.place.red");
    }

    #[test]
    fn fleet_place_without_probe_is_caught() {
        let mut log = TraceLog::new();
        log.record(t(1), 0, place(0, 5));
        let v = fleet_oracle().check(&log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "fleet.place.red");
        assert!(v[0].message.contains("without a pressure probe"));
    }

    #[test]
    fn fleet_place_uses_latest_snapshot_not_an_old_one() {
        // Node recovers: red then green — placement after the recovery is fine.
        let mut log = TraceLog::new();
        log.record(t(1), 0, pressure(0, TraceZone::Red));
        log.record(t(5), 0, pressure(0, TraceZone::Green));
        log.record(t(5), 0, place(0, 0));
        assert!(fleet_oracle().check(&log).is_empty());
    }

    #[test]
    fn fleet_migrate_after_grace_is_conformant() {
        let mut log = TraceLog::new();
        log.record(t(1), 0, pressure(0, TraceZone::Red));
        log.record(t(6), 0, pressure(0, TraceZone::Red));
        log.record(
            t(11),
            0,
            TraceData::FleetMigrate {
                job: 0,
                from: 0,
                to: 1,
                red_for_ms: 10_000,
            },
        );
        assert!(fleet_oracle().check(&log).is_empty());
    }

    #[test]
    fn fleet_migrate_before_grace_is_caught() {
        let mut log = TraceLog::new();
        log.record(t(1), 0, pressure(0, TraceZone::Red));
        log.record(
            t(3),
            0,
            TraceData::FleetMigrate {
                job: 0,
                from: 0,
                to: 1,
                red_for_ms: 2_000,
            },
        );
        let v = fleet_oracle().check(&log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "fleet.migrate.grace");
    }

    #[test]
    fn fleet_migrate_off_non_red_node_is_caught() {
        let mut log = TraceLog::new();
        log.record(t(1), 0, pressure(0, TraceZone::Yellow));
        log.record(
            t(20),
            0,
            TraceData::FleetMigrate {
                job: 0,
                from: 0,
                to: 1,
                red_for_ms: 0,
            },
        );
        let v = fleet_oracle().check(&log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "fleet.migrate.grace");
        assert!(v[0].message.contains("not red"));
    }

    #[test]
    fn fleet_red_streak_resets_on_recovery() {
        // Red for ages, recovers, goes red again briefly: the streak restarts
        // at the second red onset, so an early migration is still caught.
        let mut log = TraceLog::new();
        log.record(t(1), 0, pressure(0, TraceZone::Red));
        log.record(t(30), 0, pressure(0, TraceZone::Green));
        log.record(t(31), 0, pressure(0, TraceZone::Red));
        log.record(
            t(33),
            0,
            TraceData::FleetMigrate {
                job: 0,
                from: 0,
                to: 1,
                red_for_ms: 2_000,
            },
        );
        let v = fleet_oracle().check(&log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "fleet.migrate.grace");
    }

    #[test]
    fn fleet_defer_then_place_is_conformant() {
        let mut log = TraceLog::new();
        log.record(t(1), 0, pressure(0, TraceZone::Green));
        log.record(
            t(1),
            0,
            TraceData::FleetDefer {
                job: 0,
                attempt: 1,
                retry_at_ms: 5_000,
            },
        );
        log.record(t(5), 0, place(0, 0));
        assert!(fleet_oracle().check(&log).is_empty());
    }

    #[test]
    fn fleet_defer_then_giveup_is_conformant() {
        let mut log = TraceLog::new();
        log.record(
            t(1),
            0,
            TraceData::FleetDefer {
                job: 2,
                attempt: 1,
                retry_at_ms: 5_000,
            },
        );
        log.record(
            t(5),
            0,
            TraceData::FleetGiveUp {
                job: 2,
                attempts: 1,
                demand: 0,
            },
        );
        assert!(fleet_oracle().check(&log).is_empty());
    }

    #[test]
    fn fleet_giveup_while_a_node_admits_is_caught() {
        // Node 1's latest snapshot is green with room for the job's demand:
        // abandoning the job is starvation.
        let mut log = TraceLog::new();
        log.record(
            t(1),
            0,
            TraceData::FleetPressure {
                node: 1,
                zone: TraceZone::Green,
                used: 10,
                reserved: 20,
                high: 80,
                top: 100,
                escalations: 0,
            },
        );
        log.record(
            t(2),
            0,
            TraceData::FleetGiveUp {
                job: 3,
                attempts: 5,
                demand: 50,
            },
        );
        let v = fleet_oracle().check(&log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "fleet.giveup.starvation");
    }

    #[test]
    fn fleet_giveup_with_no_room_anywhere_is_conformant() {
        // Reserved demand (not just used) blocks the only green node, so
        // the give-up is legitimate.
        let mut log = TraceLog::new();
        log.record(
            t(1),
            0,
            TraceData::FleetPressure {
                node: 0,
                zone: TraceZone::Green,
                used: 10,
                reserved: 60,
                high: 80,
                top: 100,
                escalations: 0,
            },
        );
        log.record(
            t(2),
            0,
            TraceData::FleetGiveUp {
                job: 3,
                attempts: 5,
                demand: 50,
            },
        );
        assert!(fleet_oracle().check(&log).is_empty());
    }

    #[test]
    fn fleet_late_retry_is_caught() {
        // The defer announced a retry at 5 s but the next attempt for the
        // job only happened at 6 s.
        let mut log = TraceLog::new();
        log.record(t(1), 0, pressure(0, TraceZone::Green));
        log.record(
            t(1),
            0,
            TraceData::FleetDefer {
                job: 0,
                attempt: 1,
                retry_at_ms: 5_000,
            },
        );
        log.record(t(6), 0, place(0, 0));
        let v = fleet_oracle().check(&log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "fleet.defer.latency");
    }

    #[test]
    fn fleet_defer_beyond_the_interval_is_caught() {
        // With the scheduler's defer interval known (3 s), a defer that
        // announces its retry 4 s out is flagged at the defer itself.
        let mut log = TraceLog::new();
        log.record(
            t(1),
            0,
            TraceData::FleetDefer {
                job: 0,
                attempt: 1,
                retry_at_ms: 5_000,
            },
        );
        log.record(t(5), 0, pressure(0, TraceZone::Green));
        log.record(t(5), 0, place(0, 0));
        let v = fleet_oracle().with_defer_interval(3_000).check(&log);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "fleet.defer.latency");
        assert!(v[0].message.contains("defer interval"));
    }

    #[test]
    fn fleet_defer_never_resolved_is_caught() {
        let mut log = TraceLog::new();
        log.record(
            t(1),
            0,
            TraceData::FleetDefer {
                job: 7,
                attempt: 1,
                retry_at_ms: 5_000,
            },
        );
        let v = fleet_oracle().check(&log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "fleet.defer.progress");
        assert_eq!(v[0].pid, 7);
    }

    #[test]
    fn fleet_oracle_ignores_node_level_events() {
        let mut log = TraceLog::new();
        log.record(t(1), 1, TraceData::Madvise { bytes: GIB });
        log.record(t(1), 0, TraceData::ProcExit);
        assert!(fleet_oracle().check(&log).is_empty());
    }

    fn node_lost(node: u64) -> TraceData {
        TraceData::FleetNodeLost { node, jobs_lost: 1 }
    }

    fn reschedule(job: u64, requeued: bool) -> TraceData {
        TraceData::FleetReschedule {
            job,
            from: 0,
            retries: 1,
            retry_at_ms: 5_000,
            requeued,
        }
    }

    fn quarantine(node: u64, entered: bool) -> TraceData {
        TraceData::FleetQuarantine {
            node,
            entered,
            streak: 2,
        }
    }

    #[test]
    fn fleet_place_on_dead_node_is_caught() {
        let mut log = TraceLog::new();
        log.record(t(1), 0, pressure(0, TraceZone::Green));
        log.record(t(2), 0, node_lost(0));
        log.record(t(3), 0, place(1, 0));
        let v = fleet_oracle().check(&log);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "fleet.place.dead");
    }

    #[test]
    fn fleet_place_on_quarantined_node_is_caught() {
        let mut log = TraceLog::new();
        log.record(t(1), 0, pressure(0, TraceZone::Green));
        log.record(t(2), 0, quarantine(0, true));
        log.record(t(3), 0, place(1, 0));
        let v = fleet_oracle().check(&log);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "fleet.place.quarantined");
    }

    #[test]
    fn fleet_migrate_onto_quarantined_node_is_caught() {
        let mut log = TraceLog::new();
        log.record(t(1), 0, pressure(0, TraceZone::Red));
        log.record(t(2), 0, quarantine(1, true));
        log.record(
            t(12),
            0,
            TraceData::FleetMigrate {
                job: 0,
                from: 0,
                to: 1,
                red_for_ms: 11_000,
            },
        );
        let v = fleet_oracle().check(&log);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "fleet.place.quarantined");
    }

    #[test]
    fn fleet_place_after_quarantine_exit_is_conformant() {
        let mut log = TraceLog::new();
        log.record(t(1), 0, pressure(0, TraceZone::Green));
        log.record(t(2), 0, quarantine(0, true));
        log.record(t(5), 0, quarantine(0, false));
        log.record(t(6), 0, place(1, 0));
        assert!(fleet_oracle().check(&log).is_empty());
    }

    #[test]
    fn fleet_requeued_job_placed_elsewhere_is_conformant() {
        let mut log = TraceLog::new();
        log.record(t(1), 0, pressure(1, TraceZone::Green));
        log.record(t(2), 0, node_lost(0));
        log.record(t(2), 0, reschedule(4, true));
        log.record(t(5), 0, place(4, 1));
        assert!(fleet_oracle().check(&log).is_empty());
    }

    #[test]
    fn fleet_requeued_job_never_resolved_is_caught() {
        let mut log = TraceLog::new();
        log.record(t(2), 0, node_lost(0));
        log.record(t(2), 0, reschedule(4, true));
        let v = fleet_oracle().check(&log);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "fleet.lost.resolved");
        assert_eq!(v[0].pid, 4);
    }

    #[test]
    fn fleet_orphaned_lost_job_giveup_skips_starvation() {
        // Node 1 visibly admits the job, but the job exhausted its node-loss
        // retry budget — the give-up is legitimate, not starvation.
        let mut log = TraceLog::new();
        log.record(
            t(1),
            0,
            TraceData::FleetPressure {
                node: 1,
                zone: TraceZone::Green,
                used: 10,
                reserved: 20,
                high: 80,
                top: 100,
                escalations: 0,
            },
        );
        log.record(t(2), 0, node_lost(0));
        log.record(t(2), 0, reschedule(3, false));
        log.record(
            t(2),
            0,
            TraceData::FleetGiveUp {
                job: 3,
                attempts: 4,
                demand: 50,
            },
        );
        assert!(fleet_oracle().check(&log).is_empty());
    }

    #[test]
    fn fleet_starvation_search_skips_dead_and_quarantined_nodes() {
        // The only nodes with room are dead or quarantined, so giving up is
        // legitimate for an ordinary (never-lost) job too.
        let snap = |node| TraceData::FleetPressure {
            node,
            zone: TraceZone::Green,
            used: 0,
            reserved: 0,
            high: 80,
            top: 100,
            escalations: 0,
        };
        let mut log = TraceLog::new();
        log.record(t(1), 0, snap(0));
        log.record(t(1), 0, snap(1));
        log.record(t(2), 0, node_lost(0));
        log.record(t(2), 0, quarantine(1, true));
        log.record(
            t(3),
            0,
            TraceData::FleetGiveUp {
                job: 9,
                attempts: 5,
                demand: 50,
            },
        );
        assert!(fleet_oracle().check(&log).is_empty());
    }

    fn assign(job: u64, crit: Criticality, slo_ms: u64) -> TraceData {
        TraceData::SchedClassAssign { job, crit, slo_ms }
    }

    fn preempt(job: u64, crit: Criticality, victim: u64, victim_crit: Criticality) -> TraceData {
        TraceData::SchedClassPreempt {
            job,
            crit,
            victim,
            victim_crit,
            node: 0,
        }
    }

    #[test]
    fn sched_class_preempt_of_more_expendable_victim_is_conformant() {
        let mut log = TraceLog::new();
        log.record(t(1), 0, assign(1, Criticality::LatencyCritical, 500));
        log.record(t(1), 0, assign(2, Criticality::Batch, 0));
        log.record(
            t(2),
            0,
            preempt(1, Criticality::LatencyCritical, 2, Criticality::Batch),
        );
        assert!(fleet_oracle().check(&log).is_empty());
    }

    #[test]
    fn sched_class_preempt_of_equal_or_less_expendable_victim_is_caught() {
        for victim_crit in [Criticality::Batch, Criticality::LatencyCritical] {
            let mut log = TraceLog::new();
            log.record(t(1), 0, assign(1, Criticality::Batch, 0));
            log.record(t(1), 0, assign(2, victim_crit, 0));
            log.record(t(2), 0, preempt(1, Criticality::Batch, 2, victim_crit));
            let v = fleet_oracle().check(&log);
            assert!(
                v.iter().any(|x| x.invariant == "sched.class.preempt"),
                "batch preempting {victim_crit:?} must be flagged: {v:?}"
            );
        }
    }

    #[test]
    fn sched_class_preempt_contradicting_assignment_is_caught() {
        // Job 2 was declared latency-critical, but the preempt event
        // relabels it as batch to make the eviction look legal.
        let mut log = TraceLog::new();
        log.record(t(1), 0, assign(1, Criticality::LatencyCritical, 500));
        log.record(t(1), 0, assign(2, Criticality::LatencyCritical, 500));
        log.record(
            t(2),
            0,
            preempt(1, Criticality::LatencyCritical, 2, Criticality::Batch),
        );
        let v = fleet_oracle().check(&log);
        assert!(
            v.iter().any(|x| x.invariant == "sched.class.consistency"),
            "got {v:?}"
        );
    }

    #[test]
    fn sched_class_slo_accounting_is_checked() {
        // met must equal runtime <= slo, and stall time cannot exceed the
        // whole runtime.
        let ok = TraceData::SchedClassSlo {
            job: 1,
            crit: Criticality::LatencyCritical,
            slo_ms: 500,
            runtime_ms: 400,
            stall_ms: 100,
            met: true,
        };
        let wrong_met = TraceData::SchedClassSlo {
            job: 1,
            crit: Criticality::LatencyCritical,
            slo_ms: 500,
            runtime_ms: 900,
            stall_ms: 100,
            met: true,
        };
        let impossible_stall = TraceData::SchedClassSlo {
            job: 1,
            crit: Criticality::LatencyCritical,
            slo_ms: 500,
            runtime_ms: 400,
            stall_ms: 401,
            met: true,
        };
        let mut log = TraceLog::new();
        log.record(t(1), 0, assign(1, Criticality::LatencyCritical, 500));
        log.record(t(2), 0, ok);
        assert!(fleet_oracle().check(&log).is_empty());

        for bad in [wrong_met, impossible_stall] {
            let mut log = TraceLog::new();
            log.record(t(1), 0, assign(1, Criticality::LatencyCritical, 500));
            log.record(t(2), 0, bad);
            let v = fleet_oracle().check(&log);
            assert!(
                v.iter().any(|x| x.invariant == "sched.class.slo"),
                "got {v:?}"
            );
        }
    }

    #[test]
    fn sched_class_slo_contradicting_assignment_is_caught() {
        let mut log = TraceLog::new();
        log.record(t(1), 0, assign(1, Criticality::Standard, 0));
        log.record(
            t(2),
            0,
            TraceData::SchedClassSlo {
                job: 1,
                crit: Criticality::LatencyCritical,
                slo_ms: 500,
                runtime_ms: 400,
                stall_ms: 0,
                met: true,
            },
        );
        let v = fleet_oracle().check(&log);
        assert!(
            v.iter().any(|x| x.invariant == "sched.class.consistency"),
            "got {v:?}"
        );
    }

    #[test]
    fn jobs_without_slo_are_always_met() {
        // slo_ms == 0 means "no SLO declared": met must be recorded true.
        let mut log = TraceLog::new();
        log.record(t(1), 0, assign(1, Criticality::Batch, 0));
        log.record(
            t(2),
            0,
            TraceData::SchedClassSlo {
                job: 1,
                crit: Criticality::Batch,
                slo_ms: 0,
                runtime_ms: 10_000,
                stall_ms: 2_000,
                met: true,
            },
        );
        assert!(fleet_oracle().check(&log).is_empty());
    }

    // ---- work-packet invariants -----------------------------------------

    use m3_sim::trace::PacketBucket;

    fn enq(packet: u64, pkind: &str, bucket: PacketBucket, deps: &[u64]) -> TraceData {
        TraceData::PacketEnqueue {
            packet,
            pkind: pkind.to_string(),
            bucket,
            deps: deps.to_vec(),
        }
    }

    fn start(packet: u64, bucket: PacketBucket, wave: u64) -> TraceData {
        TraceData::PacketStart {
            packet,
            bucket,
            wave,
        }
    }

    fn finish(packet: u64, bucket: PacketBucket, bytes: u64, returned: u64) -> TraceData {
        TraceData::PacketFinish {
            packet,
            bucket,
            bytes,
            returned,
            duration_ms: 5,
        }
    }

    /// A canonical, conformant packetized High handler: evict ⅛ of 8
    /// blocks, young + old GC, then one madvise returning everything.
    fn packetized_handler() -> TraceLog {
        let mut log = TraceLog::new();
        let pid = 3;
        log.record(t(1), pid, TraceData::HandlerStart { sig: SigKind::High });
        log.record(
            t(1),
            pid,
            enq(0, "evict_blocks", PacketBucket::Prepare, &[]),
        );
        log.record(t(1), pid, enq(1, "gc_young", PacketBucket::Collect, &[0]));
        log.record(t(1), pid, enq(2, "gc_old", PacketBucket::Collect, &[1]));
        log.record(t(1), pid, enq(3, "madvise", PacketBucket::Release, &[2]));
        log.record(t(1), pid, start(0, PacketBucket::Prepare, 0));
        log.record(
            t(1),
            pid,
            TraceData::EvictBlocks {
                before: 8,
                evicted: 1,
                bytes: 4096,
                reason: EvictReason::HighSignal,
            },
        );
        log.record(t(1), pid, finish(0, PacketBucket::Prepare, 4096, 0));
        log.record(
            t(1),
            pid,
            TraceData::PacketStall {
                packet: 2,
                waiting_on: 1,
                wave: 1,
            },
        );
        log.record(t(1), pid, start(1, PacketBucket::Collect, 1));
        log.record(
            t(1),
            pid,
            TraceData::Gc {
                layer: GcLayer::Young,
                reclaimed: 1000,
                returned: 0,
                pause_ms: 10,
            },
        );
        log.record(t(1), pid, finish(1, PacketBucket::Collect, 1000, 0));
        log.record(t(1), pid, start(2, PacketBucket::Collect, 2));
        log.record(
            t(1),
            pid,
            TraceData::Gc {
                layer: GcLayer::Mixed,
                reclaimed: 3000,
                returned: 0,
                pause_ms: 20,
            },
        );
        log.record(t(1), pid, finish(2, PacketBucket::Collect, 3000, 0));
        log.record(t(1), pid, start(3, PacketBucket::Release, 3));
        log.record(t(1), pid, TraceData::Madvise { bytes: 8192 });
        log.record(t(1), pid, finish(3, PacketBucket::Release, 0, 8192));
        log.record(
            t(1),
            pid,
            TraceData::HandlerEnd {
                sig: SigKind::High,
                duration_ms: 40,
                returned: 8192,
            },
        );
        log
    }

    fn packet_violations(log: &TraceLog) -> Vec<String> {
        Oracle::paper(None)
            .check(log)
            .into_iter()
            .filter(|v| v.invariant.starts_with("reclaim.packet"))
            .map(|v| v.invariant)
            .collect()
    }

    #[test]
    fn conformant_packetized_handler_has_no_violations() {
        let violations = Oracle::paper(None).check(&packetized_handler());
        assert_eq!(violations, Vec::new());
    }

    #[test]
    fn back_to_back_drains_without_handler_window_reset_ids() {
        // Direct signal delivery (unit harnesses) drains twice with no
        // handler.start between: the re-used id 0 after a fully finished
        // drain is a fresh drain, not a double enqueue.
        let mut log = TraceLog::new();
        for _ in 0..2 {
            log.record(t(1), 3, enq(0, "gc_young", PacketBucket::Collect, &[]));
            log.record(t(1), 3, enq(1, "madvise", PacketBucket::Release, &[0]));
            log.record(t(1), 3, start(0, PacketBucket::Collect, 0));
            log.record(t(1), 3, finish(0, PacketBucket::Collect, 1000, 0));
            log.record(t(1), 3, start(1, PacketBucket::Release, 1));
            log.record(t(1), 3, finish(1, PacketBucket::Release, 0, 4096));
        }
        assert_eq!(packet_violations(&log), Vec::<String>::new());
        // With packet 1 of the first drain still unfinished, the same
        // re-enqueue IS a violation.
        let mut bad = TraceLog::new();
        bad.record(t(1), 3, enq(0, "gc_young", PacketBucket::Collect, &[]));
        bad.record(t(1), 3, enq(1, "madvise", PacketBucket::Release, &[0]));
        bad.record(t(1), 3, start(0, PacketBucket::Collect, 0));
        bad.record(t(1), 3, finish(0, PacketBucket::Collect, 1000, 0));
        bad.record(t(1), 3, enq(0, "gc_young", PacketBucket::Collect, &[]));
        assert!(packet_violations(&bad)
            .iter()
            .any(|v| v == "reclaim.packet.order"));
    }

    #[test]
    fn packet_start_before_dependency_finishes_is_caught() {
        let mut log = TraceLog::new();
        log.record(t(1), 3, TraceData::HandlerStart { sig: SigKind::High });
        log.record(t(1), 3, enq(0, "gc_young", PacketBucket::Collect, &[]));
        log.record(t(1), 3, enq(1, "gc_old", PacketBucket::Collect, &[0]));
        // Old starts before young has finished.
        log.record(t(1), 3, start(1, PacketBucket::Collect, 0));
        let v = packet_violations(&log);
        assert!(v.contains(&"reclaim.packet.deps".to_string()), "got {v:?}");
    }

    #[test]
    fn packet_start_before_bucket_opens_is_caught() {
        let mut log = TraceLog::new();
        log.record(t(1), 3, TraceData::HandlerStart { sig: SigKind::High });
        log.record(t(1), 3, enq(0, "evict_blocks", PacketBucket::Prepare, &[]));
        log.record(t(1), 3, enq(1, "madvise", PacketBucket::Release, &[]));
        // Release starts while the Prepare packet is unfinished.
        log.record(t(1), 3, start(1, PacketBucket::Release, 0));
        let v = packet_violations(&log);
        assert!(
            v.contains(&"reclaim.packet.bucket".to_string()),
            "got {v:?}"
        );
    }

    #[test]
    fn packet_start_without_enqueue_is_caught() {
        let mut log = TraceLog::new();
        log.record(t(1), 3, start(0, PacketBucket::Prepare, 0));
        let v = packet_violations(&log);
        assert!(v.contains(&"reclaim.packet.order".to_string()), "got {v:?}");
    }

    #[test]
    fn packet_byte_conservation_mismatch_is_caught() {
        // Rewrite the conformant handler's young-GC packet to claim fewer
        // bytes than the gc.young event it wraps.
        let mut log = TraceLog::new();
        for e in packetized_handler().events() {
            let data = match &e.data {
                TraceData::PacketFinish {
                    packet: 1,
                    bucket,
                    returned,
                    duration_ms,
                    ..
                } => TraceData::PacketFinish {
                    packet: 1,
                    bucket: *bucket,
                    bytes: 999,
                    returned: *returned,
                    duration_ms: *duration_ms,
                },
                d => d.clone(),
            };
            log.record(e.t, e.pid, data);
        }
        let v = packet_violations(&log);
        assert!(
            v.contains(&"reclaim.packet.conservation".to_string()),
            "got {v:?}"
        );
    }

    #[test]
    fn unfinished_packet_at_handler_end_is_caught() {
        let mut log = TraceLog::new();
        log.record(t(1), 3, TraceData::HandlerStart { sig: SigKind::High });
        log.record(t(1), 3, enq(0, "gc_young", PacketBucket::Collect, &[]));
        log.record(t(1), 3, start(0, PacketBucket::Collect, 0));
        log.record(t(1), 3, finish(0, PacketBucket::Collect, 0, 0));
        log.record(t(1), 3, enq(1, "madvise", PacketBucket::Release, &[0]));
        log.record(
            t(1),
            3,
            TraceData::HandlerEnd {
                sig: SigKind::High,
                duration_ms: 1,
                returned: 0,
            },
        );
        let v = packet_violations(&log);
        assert!(
            v.contains(&"reclaim.packet.orphan".to_string()),
            "got {v:?}"
        );
    }

    #[test]
    fn ablated_scheduler_drain_is_caught() {
        // Drive the *real* scheduler with the bucket-order ablation and
        // replay its trace: the oracle must flag the reversed buckets and
        // the ignored dependency edges.
        use m3_core::scheduler::{PacketKind, PacketOutcome, ReclaimScheduler, SchedulerConfig};
        let mut os = Kernel::new(KernelConfig::with_total(GIB));
        let pid = os.spawn("app");
        os.record_trace(pid, TraceData::HandlerStart { sig: SigKind::High });
        let mut sched = ReclaimScheduler::new(
            pid,
            SchedulerConfig {
                workers: Some(1),
                ablate_bucket_order: true,
            },
        );
        let ev = sched.add(PacketKind::EvictBlocks, &[], |_: &mut (), _| {
            PacketOutcome::default()
        });
        let gc = sched.add(PacketKind::GcYoung, &[ev], |_: &mut (), _| {
            PacketOutcome::default()
        });
        sched.add(PacketKind::Madvise, &[gc], |_: &mut (), _| {
            PacketOutcome::default()
        });
        sched.drain(&mut (), &mut os);
        os.record_trace(
            pid,
            TraceData::HandlerEnd {
                sig: SigKind::High,
                duration_ms: 0,
                returned: 0,
            },
        );
        let v = packet_violations(&os.trace);
        assert!(
            v.contains(&"reclaim.packet.bucket".to_string()),
            "reversed buckets must be flagged, got {v:?}"
        );
        assert!(
            v.contains(&"reclaim.packet.deps".to_string()),
            "ignored dependency edges must be flagged, got {v:?}"
        );
    }
}
