//! Randomized monitor robustness tests: arbitrary process populations and
//! memory trajectories must never panic the monitor, and every report must
//! be internally consistent.

use m3_core::{Monitor, MonitorConfig, SortOrder, Zone};
use m3_os::{Kernel, KernelConfig, Pid};
use m3_sim::clock::SimTime;
use m3_sim::units::{GIB, MIB};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Spawn,
    Grow(usize, u64),
    Release(usize, u64),
    Exit(usize),
    HandleSignals(usize, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Spawn),
        (0usize..8, (1u64..(8 * 1024))).prop_map(|(i, mb)| Op::Grow(i, mb * MIB)),
        (0usize..8, (1u64..(8 * 1024))).prop_map(|(i, mb)| Op::Release(i, mb * MIB)),
        (0usize..8).prop_map(Op::Exit),
        (0usize..8, 0u64..(4 * 1024)).prop_map(|(i, mb)| Op::HandleSignals(i, mb * MIB)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn monitor_never_panics_and_reports_consistently(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        order_idx in 0usize..4,
    ) {
        let order = [
            SortOrder::NewestFirst,
            SortOrder::OldestFirst,
            SortOrder::LargestRss,
            SortOrder::LargestExpectedReclaim,
        ][order_idx];
        let mut cfg = MonitorConfig::paper_64gb();
        cfg.sort_order = order;
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let mut monitor = Monitor::new(cfg);
        let mut pids: Vec<Pid> = Vec::new();
        let mut t = 0u64;

        for op in ops {
            match op {
                Op::Spawn => {
                    let pid = os.spawn(format!("p{}", pids.len()));
                    monitor.register(pid);
                    pids.push(pid);
                }
                Op::Grow(i, bytes) if !pids.is_empty() => {
                    let _ = os.grow(pids[i % pids.len()], bytes);
                }
                Op::Release(i, bytes) if !pids.is_empty() => {
                    let _ = os.release(pids[i % pids.len()], bytes);
                }
                Op::Exit(i) if !pids.is_empty() => {
                    let pid = pids[i % pids.len()];
                    os.exit(pid);
                    monitor.unregister(pid);
                }
                Op::HandleSignals(i, reclaim) if !pids.is_empty() => {
                    let pid = pids[i % pids.len()];
                    if !os.take_signals(pid).is_empty() && os.is_alive(pid) {
                        let give = reclaim.min(os.rss(pid));
                        let _ = os.release(pid, give);
                        monitor.note_reclamation(pid, give);
                    }
                }
                _ => {}
            }

            t += 1;
            let used_before = os.committed();
            let report = monitor.poll(&mut os, SimTime::from_secs(t));

            // Zone consistency with the thresholds the report carries.
            let zone = report.zone;
            prop_assert_eq!(report.used, used_before);
            match zone {
                Zone::Green => prop_assert!(report.used <= report.low),
                Zone::Yellow => {
                    prop_assert!(report.used > report.low || !report.low_signalled.is_empty()
                        || report.used <= report.high);
                }
                Zone::Red => prop_assert!(report.used > report.high),
                Zone::AboveTop => prop_assert!(report.used > 62 * GIB),
            }
            // Ordering of the thresholds.
            prop_assert!(report.low <= report.high);
            prop_assert!(report.high <= 62 * GIB);
            // Every signalled or killed pid is a live, registered process
            // (at signal time).
            for &pid in report.high_signalled.iter().chain(&report.low_signalled) {
                prop_assert!(monitor.is_registered(pid) || report.killed.contains(&pid));
            }
            for &pid in &report.killed {
                prop_assert!(!os.is_alive(pid), "killed pids must be dead");
            }
            // No signals at all in the green zone on a crossing-free poll.
            if zone == Zone::Green {
                prop_assert!(report.high_signalled.is_empty());
            }
        }
    }
}
