//! The M3 monitor (§5, §6).
//!
//! A user-space process that polls system memory once per period and alerts
//! registered processes of scarcity. Usage below the low threshold is the
//! *green* zone (no action); between the thresholds, *yellow* (early-warning
//! low signals); above the high threshold, *red* (Algorithm 1 selects which
//! processes receive the high signal). If usage exceeds the configured *top
//! of memory*, every registered process is signalled, and after a grace
//! period the monitor starts killing processes — selected by the same
//! Algorithm 1 ordering — until usage drops below top.

use m3_os::{Kernel, Pid, Signal};
use m3_sim::clock::SimTime;
use m3_sim::trace::{Criticality, ThresholdSide, TraceData, TraceZone};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};

use crate::config::MonitorConfig;
use crate::reclaim::ReclaimTracker;
use crate::selection::{select_processes, select_processes_blind, Candidate};
use crate::thresholds::AdaptiveThresholds;

/// The memory zone a poll observed (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Zone {
    /// Below the low threshold.
    Green,
    /// Between the thresholds.
    Yellow,
    /// Above the high threshold.
    Red,
    /// Above the top of memory.
    AboveTop,
}

impl From<Zone> for TraceZone {
    fn from(z: Zone) -> Self {
        match z {
            Zone::Green => TraceZone::Green,
            Zone::Yellow => TraceZone::Yellow,
            Zone::Red => TraceZone::Red,
            Zone::AboveTop => TraceZone::AboveTop,
        }
    }
}

/// The pid trace events use for the monitor itself (real pids start at 1).
pub const MONITOR_PID: Pid = 0;

/// What one monitor poll did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PollReport {
    /// The observed zone.
    pub zone: Zone,
    /// Committed memory at poll time (the quantity compared to thresholds).
    pub used: u64,
    /// Processes sent the low signal.
    pub low_signalled: Vec<Pid>,
    /// Processes sent the high signal.
    pub high_signalled: Vec<Pid>,
    /// Processes killed by the escalation path.
    pub killed: Vec<Pid>,
    /// The low threshold after this poll's adjustment.
    pub low: u64,
    /// The high threshold after this poll's adjustment.
    pub high: u64,
    /// True if the meminfo read failed and the poll enforced against the
    /// last known observation with a widened margin.
    pub degraded: bool,
}

/// Cumulative monitor statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MonitorStats {
    /// Polls performed.
    pub polls: u64,
    /// Low signals sent (process-signals, not polls).
    pub low_signals: u64,
    /// High signals sent.
    pub high_signals: u64,
    /// Processes killed.
    pub kills: u64,
    /// Polls that ran in degraded mode (meminfo read failed).
    pub degraded_polls: u64,
    /// Polls that observed usage above the top of memory.
    pub polls_above_top: u64,
    /// Participants escalated by the reclamation watchdog (high-signalled
    /// `watchdog_polls` consecutive polls with zero reclaim).
    pub watchdog_escalations: u64,
    /// Backed-off re-signals sent to already-escalated participants.
    pub watchdog_resignals: u64,
}

/// A point-in-time snapshot of a node's memory pressure, exported for
/// cluster-level schedulers. Pure data: everything a fleet placer needs to
/// rank nodes without reaching into the monitor's internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PressureSummary {
    /// The zone `used` falls in against the current thresholds.
    pub zone: Zone,
    /// Committed memory the summary was taken at.
    pub used: u64,
    /// The current low threshold.
    pub low: u64,
    /// The current high threshold.
    pub high: u64,
    /// The fixed top of memory.
    pub top: u64,
    /// Bytes of headroom before `used` crosses the high threshold
    /// (zero when already red or above top).
    pub headroom_to_high: u64,
    /// Bytes of headroom before `used` crosses the top of memory
    /// (zero when already above top).
    pub headroom_to_top: u64,
    /// Participants escalated by the reclamation watchdog so far.
    pub watchdog_escalations: u64,
    /// Polls that observed usage above the top of memory so far.
    pub polls_above_top: u64,
}

/// Per-participant reclamation-watchdog state.
#[derive(Debug, Clone, Copy, Default)]
struct WatchdogEntry {
    /// Consecutive high signals with no observed reclamation.
    strikes: u32,
    /// Escalated: re-signal with backoff, deprioritize in kill ordering.
    escalated: bool,
    /// Current backoff width, in polls.
    backoff: u32,
    /// Polls to skip before the next re-signal.
    cooldown: u32,
}

/// How many failed reads the degraded-mode margin keeps widening for
/// (public so the conformance oracle can replay degraded-mode zoning).
pub const MAX_DEGRADED_WIDENING: u32 = 5;

/// The M3 monitor.
#[derive(Debug)]
pub struct Monitor {
    cfg: MonitorConfig,
    thresholds: AdaptiveThresholds,
    registered: BTreeSet<Pid>,
    /// Criticality class per registered pid; absent means `Standard`.
    classes: BTreeMap<Pid, Criticality>,
    tracker: ReclaimTracker,
    above_top_since: Option<SimTime>,
    /// Whether the previous poll saw usage above the low threshold (the low
    /// signal fires on the upward *crossing*, not on every in-zone poll —
    /// Fig. 6 shows sparse early warnings, not one per second).
    was_above_low: bool,
    /// Last successfully observed usage, reused during meminfo outages.
    last_used: Option<u64>,
    /// Consecutive failed meminfo reads (degraded-margin widening factor).
    failed_reads: u32,
    /// Reclamation-watchdog state per high-signalled participant.
    watchdog: BTreeMap<Pid, WatchdogEntry>,
    /// Zone seen by the previous poll, for zone-transition trace events.
    last_zone: Option<Zone>,
    /// Cumulative statistics.
    pub stats: MonitorStats,
}

impl Monitor {
    /// Creates a monitor with the given configuration.
    pub fn new(cfg: MonitorConfig) -> Self {
        cfg.validate();
        Monitor {
            thresholds: AdaptiveThresholds::new(&cfg),
            cfg,
            registered: BTreeSet::new(),
            classes: BTreeMap::new(),
            tracker: ReclaimTracker::new(),
            above_top_since: None,
            was_above_low: false,
            last_used: None,
            failed_reads: 0,
            watchdog: BTreeMap::new(),
            last_zone: None,
            stats: MonitorStats::default(),
        }
    }

    /// The monitor configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Registers a process (the paper's PID-file directory) as `Standard`
    /// criticality.
    pub fn register(&mut self, pid: Pid) {
        self.register_with_class(pid, Criticality::Standard);
    }

    /// Registers a process with an explicit criticality class.
    pub fn register_with_class(&mut self, pid: Pid, crit: Criticality) {
        self.registered.insert(pid);
        if crit == Criticality::Standard {
            self.classes.remove(&pid);
        } else {
            self.classes.insert(pid, crit);
        }
    }

    /// The criticality class `pid` was registered with (`Standard` if it
    /// never declared one).
    pub fn criticality_of(&self, pid: Pid) -> Criticality {
        self.classes.get(&pid).copied().unwrap_or_default()
    }

    /// Unregisters a process and forgets its reclamation history, class and
    /// watchdog state.
    pub fn unregister(&mut self, pid: Pid) {
        self.registered.remove(&pid);
        self.classes.remove(&pid);
        self.tracker.forget(pid);
        self.watchdog.remove(&pid);
    }

    /// True if `pid` is registered.
    pub fn is_registered(&self, pid: Pid) -> bool {
        self.registered.contains(&pid)
    }

    /// Records how much a process reclaimed in response to a signal,
    /// feeding the expected-reclamation estimator. Any positive reclamation
    /// clears the process's watchdog record: a participant that resumes
    /// cooperating is forgiven (and de-escalated).
    pub fn note_reclamation(&mut self, pid: Pid, bytes: u64) {
        self.tracker.record(pid, bytes);
        if bytes > 0 {
            self.watchdog.remove(&pid);
        }
    }

    /// True if the reclamation watchdog has escalated `pid` (it will be
    /// preferred by the kill ordering and re-signalled with backoff).
    pub fn is_deprioritized(&self, pid: Pid) -> bool {
        self.watchdog.get(&pid).is_some_and(|e| e.escalated)
    }

    /// The current (low, high) thresholds.
    pub fn thresholds(&self) -> (u64, u64) {
        (self.thresholds.low(), self.thresholds.high())
    }

    /// Classifies a usage level against the current thresholds.
    pub fn zone_of(&self, used: u64) -> Zone {
        self.zone_with_margin(used, 0)
    }

    /// Snapshots the node's pressure state at usage `used` — the export a
    /// cluster scheduler ranks nodes by.
    pub fn pressure_summary(&self, used: u64) -> PressureSummary {
        let (low, high) = self.thresholds();
        PressureSummary {
            zone: self.zone_of(used),
            used,
            low,
            high,
            top: self.cfg.top,
            headroom_to_high: high.saturating_sub(used),
            headroom_to_top: self.cfg.top.saturating_sub(used),
            watchdog_escalations: self.stats.watchdog_escalations,
            polls_above_top: self.stats.polls_above_top,
        }
    }

    /// [`Monitor::zone_of`] with the thresholds (not top) pulled down by a
    /// safety margin — degraded-mode polling enforces conservatively when
    /// it cannot see fresh memory state.
    fn zone_with_margin(&self, used: u64, margin: u64) -> Zone {
        if used > self.cfg.top {
            Zone::AboveTop
        } else if used > self.thresholds.high().saturating_sub(margin) {
            Zone::Red
        } else if used > self.thresholds.low().saturating_sub(margin) {
            Zone::Yellow
        } else {
            Zone::Green
        }
    }

    /// Builds Algorithm 1 candidates from the registered, running processes.
    fn candidates(&self, os: &Kernel) -> Vec<Candidate> {
        self.registered
            .iter()
            .filter_map(|&pid| {
                let p = os.process(pid).filter(|p| p.is_alive())?;
                Some(Candidate {
                    pid,
                    spawned_at: p.spawned_at,
                    rss: p.committed,
                    expected_reclaim: self.tracker.expected(pid, p.committed),
                    crit: self.criticality_of(pid),
                })
            })
            .collect()
    }

    /// Performs one poll: reads memory, adjusts thresholds, sends signals,
    /// escalates to kills if the system lingers above top.
    ///
    /// A failed meminfo read does not stop enforcement: the poll runs in
    /// degraded mode against the last observation, with the thresholds
    /// pulled down by a margin that widens with each consecutive failure
    /// (stale data earns less trust, so the monitor turns conservative).
    pub fn poll(&mut self, os: &mut Kernel, now: SimTime) -> PollReport {
        self.stats.polls += 1;
        let (used, degraded) = match os.try_meminfo() {
            Ok(mi) => {
                // The monitor-relevant quantity is committed memory: what
                // applications hold, resident or swapped.
                let used = mi.used + mi.swapped;
                self.failed_reads = 0;
                self.last_used = Some(used);
                (used, false)
            }
            Err(_) => {
                self.failed_reads = self.failed_reads.saturating_add(1);
                self.stats.degraded_polls += 1;
                (self.last_used.unwrap_or(0), true)
            }
        };
        if !degraded {
            // Stale observations must not feed the adaptive estimator.
            let update = self.thresholds.observe(used);
            if let Some((old, new)) = update.low {
                os.record_trace(
                    MONITOR_PID,
                    TraceData::ThresholdAdjust {
                        side: ThresholdSide::Low,
                        old,
                        new,
                    },
                );
            }
            if let Some((old, new)) = update.high {
                os.record_trace(
                    MONITOR_PID,
                    TraceData::ThresholdAdjust {
                        side: ThresholdSide::High,
                        old,
                        new,
                    },
                );
            }
        }
        let margin = if degraded {
            let step = (self.cfg.top as f64 * self.cfg.degraded_margin_fraction) as u64;
            step * u64::from(self.failed_reads.min(MAX_DEGRADED_WIDENING))
        } else {
            0
        };
        let zone = self.zone_with_margin(used, margin);
        if zone == Zone::AboveTop {
            self.stats.polls_above_top += 1;
        }
        let prev_zone = self.last_zone.unwrap_or(Zone::Green);
        if prev_zone != zone {
            os.record_trace(
                MONITOR_PID,
                TraceData::ZoneChange {
                    from: prev_zone.into(),
                    to: zone.into(),
                },
            );
        }
        self.last_zone = Some(zone);

        let mut report = PollReport {
            zone,
            used,
            low_signalled: Vec::new(),
            high_signalled: Vec::new(),
            killed: Vec::new(),
            low: self.thresholds.low(),
            high: self.thresholds.high(),
            degraded,
        };

        // The early warning fires when usage *grows past* the low threshold
        // (§5: an upward crossing), independent of the high-signal logic.
        let above_low = used > self.thresholds.low().saturating_sub(margin);
        if above_low && !self.was_above_low && zone != Zone::AboveTop {
            for c in self.candidates(os) {
                os.send_signal(c.pid, Signal::LowMemory);
                report.low_signalled.push(c.pid);
            }
        }
        self.was_above_low = above_low;

        match zone {
            Zone::Green | Zone::Yellow => {
                self.above_top_since = None;
            }
            Zone::Red => {
                self.above_top_since = None;
                // Only the processes Algorithm 1 selects are disturbed —
                // the whole point of selective notification is to minimise
                // handling overhead for everyone else (§5.1).
                let cands = self.candidates(os);
                let target = used - self.thresholds.high().saturating_sub(margin);
                let selected = if self.cfg.signal_all {
                    // Ablation: skip Algorithm 1 and disturb everyone.
                    cands.iter().map(|c| c.pid).collect()
                } else if self.cfg.crit_blind {
                    // Ablation: the paper's posture-only ordering, ignoring
                    // criticality classes.
                    select_processes_blind(&cands, self.cfg.sort_order, target)
                } else {
                    select_processes(&cands, self.cfg.sort_order, target)
                };
                os.record_trace_with(MONITOR_PID, || TraceData::Selection {
                    order: self.cfg.sort_order.name().to_string(),
                    target,
                    all: self.cfg.signal_all,
                    candidates: cands.iter().map(Candidate::info).collect(),
                    selected: selected.clone(),
                });
                report.high_signalled = self.send_high_watchdogged(os, selected);
            }
            Zone::AboveTop => {
                // Above top: all registered processes get the high signal in
                // hopes of reclaiming everything possible (§5.1).
                let cands = self.candidates(os);
                let all: Vec<Pid> = cands.iter().map(|c| c.pid).collect();
                os.record_trace_with(MONITOR_PID, || TraceData::Selection {
                    order: self.cfg.sort_order.name().to_string(),
                    target: used.saturating_sub(self.cfg.top),
                    all: true,
                    candidates: cands.iter().map(Candidate::info).collect(),
                    selected: all.clone(),
                });
                report.high_signalled = self.send_high_watchdogged(os, all);
                let since = *self.above_top_since.get_or_insert(now);
                if now.saturating_since(since) >= self.cfg.kill_timeout {
                    report.killed = self.kill_down_to_top(os, used);
                    self.above_top_since = None;
                }
            }
        }

        self.stats.low_signals += report.low_signalled.len() as u64;
        self.stats.high_signals += report.high_signalled.len() as u64;
        self.stats.kills += report.killed.len() as u64;
        os.record_trace_with(MONITOR_PID, || TraceData::MonitorPoll {
            zone: zone.into(),
            used,
            low: report.low,
            high: report.high,
            degraded,
            low_signalled: report.low_signalled.clone(),
            high_signalled: report.high_signalled.clone(),
            killed: report.killed.clone(),
        });
        report
    }

    /// Sends the high signal through the reclamation watchdog.
    ///
    /// Every signalled participant earns a strike; `note_reclamation` with
    /// positive bytes clears them. At `watchdog_polls` consecutive strikes
    /// the participant is escalated: further signals are spaced by an
    /// exponential backoff capped at `watchdog_backoff_max` polls (there is
    /// no point hammering a non-responder every second), and the kill
    /// ordering prefers it. Returns the pids actually signalled.
    fn send_high_watchdogged(&mut self, os: &mut Kernel, targets: Vec<Pid>) -> Vec<Pid> {
        let (k, backoff_max) = (self.cfg.watchdog_polls, self.cfg.watchdog_backoff_max);
        let mut sent = Vec::new();
        for pid in targets {
            let e = self.watchdog.entry(pid).or_default();
            if e.escalated {
                if e.cooldown > 0 {
                    e.cooldown -= 1;
                    os.record_trace(pid, TraceData::WatchdogSkip);
                    continue;
                }
                e.backoff = e.backoff.saturating_mul(2).clamp(1, backoff_max);
                e.cooldown = e.backoff;
                self.stats.watchdog_resignals += 1;
                os.record_trace(
                    pid,
                    TraceData::WatchdogResignal {
                        backoff: u64::from(e.backoff),
                    },
                );
            } else {
                e.strikes += 1;
                if e.strikes >= k {
                    e.escalated = true;
                    e.backoff = 1;
                    e.cooldown = 0;
                    self.stats.watchdog_escalations += 1;
                    os.record_trace(
                        pid,
                        TraceData::WatchdogEscalate {
                            backoff: u64::from(e.backoff),
                        },
                    );
                }
            }
            os.send_signal(pid, Signal::HighMemory);
            sent.push(pid);
        }
        sent
    }

    /// Kills processes (Algorithm 1 ordering) until usage is at or below
    /// top. Killing releases memory immediately in the simulated kernel.
    ///
    /// Criticality is the outermost key: every batch job dies before any
    /// standard job, which dies before any latency-critical job. *Within* a
    /// class, watchdog-escalated participants are deprioritized to the
    /// front — a non-cooperator dies before any cooperating peer — and the
    /// Algorithm 1 posture order decides the rest. Each kill also records a
    /// `kill.class` event carrying the victim's class and the alive
    /// candidate set it was chosen from, which is what the oracle's
    /// kill-ordering invariant replays.
    fn kill_down_to_top(&mut self, os: &mut Kernel, used: u64) -> Vec<Pid> {
        let cands = self.candidates(os);
        let mut sorted = cands;
        if self.cfg.crit_blind {
            crate::selection::sort_candidates_blind(&mut sorted, self.cfg.sort_order);
            // The pre-criticality behaviour: escalated first, Algorithm-1
            // order within each partition, classes ignored entirely.
            sorted.sort_by_key(|c| !self.is_deprioritized(c.pid));
        } else {
            crate::selection::sort_candidates(&mut sorted, self.cfg.sort_order);
            // Stable: expendable classes first; escalated participants lead
            // within their class but never jump a class boundary (an
            // uncooperative latency-critical job still outlives batch).
            sorted.sort_by_key(|c| {
                (
                    Reverse(c.crit.expendability()),
                    !self.is_deprioritized(c.pid),
                )
            });
        }
        let mut killed = Vec::new();
        let mut remaining = used;
        for (i, c) in sorted.iter().enumerate() {
            if remaining <= self.cfg.top {
                break;
            }
            os.record_trace_with(c.pid, || TraceData::KillClass {
                crit: c.crit,
                candidates: sorted[i..].iter().map(Candidate::info).collect(),
            });
            os.record_trace(c.pid, TraceData::MonitorKill { rss: c.rss });
            os.kill(c.pid);
            remaining = remaining.saturating_sub(c.rss);
            killed.push(c.pid);
        }
        for &pid in &killed {
            self.unregister(pid);
        }
        killed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_os::KernelConfig;
    use m3_sim::clock::SimDuration;
    use m3_sim::units::GIB;

    fn setup() -> (Kernel, Monitor) {
        let os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let mon = Monitor::new(MonitorConfig::paper_64gb());
        (os, mon)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn green_zone_sends_nothing() {
        let (mut os, mut mon) = setup();
        let p = os.spawn("a");
        mon.register(p);
        os.grow(p, 10 * GIB).unwrap();
        let r = mon.poll(&mut os, t(0));
        assert_eq!(r.zone, Zone::Green);
        assert!(r.low_signalled.is_empty());
        assert!(r.high_signalled.is_empty());
        assert!(os.take_signals(p).is_empty());
    }

    #[test]
    fn pressure_summary_reports_zone_and_headroom() {
        let (_os, mon) = setup();
        let (low, high) = mon.thresholds();
        let top = mon.config().top;

        let s = mon.pressure_summary(low / 2);
        assert_eq!(s.zone, Zone::Green);
        assert_eq!(s.used, low / 2);
        assert_eq!(s.low, low);
        assert_eq!(s.high, high);
        assert_eq!(s.top, top);
        assert_eq!(s.headroom_to_high, high - low / 2);
        assert_eq!(s.headroom_to_top, top - low / 2);
        assert_eq!(s.watchdog_escalations, 0);
        assert_eq!(s.polls_above_top, 0);

        let s = mon.pressure_summary(high + GIB);
        assert_eq!(s.zone, Zone::Red);
        assert_eq!(s.headroom_to_high, 0, "red zone has no high headroom");
        assert_eq!(s.headroom_to_top, top - high - GIB);
    }

    #[test]
    fn pressure_summary_saturates_above_top() {
        let (_os, mon) = setup();
        let top = mon.config().top;
        let s = mon.pressure_summary(top + GIB);
        assert_eq!(s.zone, Zone::AboveTop);
        assert_eq!(s.headroom_to_high, 0);
        assert_eq!(s.headroom_to_top, 0);
    }

    #[test]
    fn pressure_summary_tracks_watchdog_escalations() {
        let (mut os, mut mon) = setup();
        let p = os.spawn("hoarder");
        mon.register(p);
        os.grow(p, 58 * GIB).unwrap(); // red: high-signalled, never reclaims
        let polls = mon.config().watchdog_polls + 1;
        for i in 0..polls as u64 {
            mon.poll(&mut os, t(i));
        }
        assert!(mon.stats.watchdog_escalations > 0);
        let s = mon.pressure_summary(58 * GIB);
        assert_eq!(s.watchdog_escalations, mon.stats.watchdog_escalations);
    }

    #[test]
    fn yellow_zone_sends_low_to_all_registered() {
        let (mut os, mut mon) = setup();
        let a = os.spawn("a");
        let b = os.spawn("b");
        let unregistered = os.spawn("c");
        mon.register(a);
        mon.register(b);
        os.grow(a, 52 * GIB).unwrap(); // between 50 and 55
        let r = mon.poll(&mut os, t(0));
        assert_eq!(r.zone, Zone::Yellow);
        assert_eq!(r.low_signalled, vec![a, b]);
        assert_eq!(os.take_signals(a), vec![Signal::LowMemory]);
        assert_eq!(os.take_signals(b), vec![Signal::LowMemory]);
        assert!(os.take_signals(unregistered).is_empty());
    }

    #[test]
    fn red_zone_selects_by_algorithm_1() {
        let (mut os, mut mon) = setup();
        os.set_time(t(0));
        let old = os.spawn("old");
        os.set_time(t(100));
        let new = os.spawn("new");
        mon.register(old);
        mon.register(new);
        os.grow(old, 28 * GIB).unwrap();
        os.grow(new, 28 * GIB).unwrap(); // 56 GiB > high (55)
        let r = mon.poll(&mut os, t(101));
        assert_eq!(r.zone, Zone::Red);
        // Target = 1 GiB; newest-first picks `new`, whose default expected
        // reclamation (10% of 28 GiB) covers it alone.
        assert_eq!(r.high_signalled, vec![new]);
        // Both processes get the early warning for the upward crossing of
        // the low threshold; only `new` is disturbed with the high signal.
        assert_eq!(r.low_signalled, vec![old, new]);
        assert_eq!(
            os.take_signals(new),
            vec![Signal::LowMemory, Signal::HighMemory]
        );
        assert_eq!(os.take_signals(old), vec![Signal::LowMemory]);
        // A second poll at the same level is not a crossing: the spared
        // process stays undisturbed (selective notification).
        let r2 = mon.poll(&mut os, t(102));
        assert!(r2.low_signalled.is_empty());
        assert_eq!(r2.high_signalled, vec![new]);
    }

    #[test]
    fn red_zone_uses_recorded_reclamation_history() {
        let (mut os, mut mon) = setup();
        os.set_time(t(0));
        let a = os.spawn("a");
        os.set_time(t(10));
        let b = os.spawn("b");
        mon.register(a);
        mon.register(b);
        os.grow(a, 28 * GIB).unwrap();
        os.grow(b, 30 * GIB).unwrap(); // 58 GiB, target = 3 GiB
                                       // b historically reclaims very little: selection must go past it.
        mon.note_reclamation(b, GIB / 10);
        let r = mon.poll(&mut os, t(11));
        assert_eq!(
            r.high_signalled,
            vec![b, a],
            "b alone cannot cover the target"
        );
    }

    #[test]
    fn above_top_signals_everyone_then_kills_after_timeout() {
        let (mut os, mut mon) = setup();
        os.set_time(t(0));
        let a = os.spawn("a");
        os.set_time(t(5));
        let b = os.spawn("b");
        mon.register(a);
        mon.register(b);
        os.grow(a, 33 * GIB).unwrap();
        os.grow(b, 30 * GIB).unwrap(); // 63 GiB > top (62)
        let r = mon.poll(&mut os, t(10));
        assert_eq!(r.zone, Zone::AboveTop);
        assert_eq!(r.high_signalled, vec![a, b]);
        assert!(r.killed.is_empty(), "grace period first");
        // Still above top after the kill timeout: newest-first kills b.
        let r2 = mon.poll(&mut os, t(10 + 30));
        assert_eq!(r2.killed, vec![b]);
        assert!(!os.is_alive(b));
        assert!(os.is_alive(a));
        assert!(!mon.is_registered(b), "killed processes are unregistered");
    }

    #[test]
    fn dropping_below_top_resets_kill_clock() {
        let (mut os, mut mon) = setup();
        let a = os.spawn("a");
        mon.register(a);
        os.grow(a, 63 * GIB).unwrap();
        mon.poll(&mut os, t(0));
        os.release(a, 10 * GIB).unwrap(); // pressure relieved
        mon.poll(&mut os, t(15));
        os.grow(a, 10 * GIB).unwrap(); // above top again
        let r = mon.poll(&mut os, t(31));
        assert!(r.killed.is_empty(), "clock must restart after relief");
        assert!(os.is_alive(a));
    }

    #[test]
    fn dead_processes_are_not_candidates() {
        let (mut os, mut mon) = setup();
        let a = os.spawn("a");
        let b = os.spawn("b");
        mon.register(a);
        mon.register(b);
        os.grow(a, 56 * GIB).unwrap();
        os.exit(b);
        let r = mon.poll(&mut os, t(0));
        assert!(!r.high_signalled.contains(&b));
        assert!(!r.low_signalled.contains(&b));
        assert!(!r.high_signalled.is_empty());
    }

    #[test]
    fn stats_accumulate() {
        let (mut os, mut mon) = setup();
        let a = os.spawn("a");
        mon.register(a);
        os.grow(a, 52 * GIB).unwrap();
        mon.poll(&mut os, t(0));
        mon.poll(&mut os, t(1));
        assert_eq!(mon.stats.polls, 2);
        assert_eq!(mon.stats.low_signals, 1, "one crossing, one early warning");
        assert_eq!(mon.stats.high_signals, 0);
        // Dropping below and re-crossing warns again.
        os.release(a, 10 * GIB).unwrap();
        mon.poll(&mut os, t(2));
        os.grow(a, 10 * GIB).unwrap();
        mon.poll(&mut os, t(3));
        assert_eq!(mon.stats.low_signals, 2);
    }

    #[test]
    fn degraded_poll_reuses_last_observation_and_keeps_enforcing() {
        let (mut os, mut mon) = setup();
        let a = os.spawn("a");
        mon.register(a);
        os.grow(a, 56 * GIB).unwrap(); // red zone
        let r0 = mon.poll(&mut os, t(0));
        assert_eq!(r0.zone, Zone::Red);
        assert!(!r0.degraded);
        // The meminfo read starts failing; enforcement must continue from
        // the last observation instead of going quiet.
        os.set_meminfo_outage(true);
        let r1 = mon.poll(&mut os, t(1));
        assert!(r1.degraded);
        assert_eq!(r1.used, 56 * GIB, "last observation reused");
        assert_eq!(r1.zone, Zone::Red);
        assert!(!r1.high_signalled.is_empty(), "still enforcing");
        assert_eq!(mon.stats.degraded_polls, 1);
    }

    #[test]
    fn degraded_margin_widens_with_consecutive_failures() {
        let (mut os, mut mon) = setup();
        let a = os.spawn("a");
        mon.register(a);
        // Just below the high threshold (55 GiB): a healthy poll sees
        // Yellow, but degraded polls must turn conservative.
        os.grow(a, 54 * GIB).unwrap();
        assert_eq!(mon.poll(&mut os, t(0)).zone, Zone::Yellow);
        os.set_meminfo_outage(true);
        // One failure widens by 2% of top (~1.24 GiB): 54 > 55 - 1.24.
        let r = mon.poll(&mut os, t(1));
        assert_eq!(r.zone, Zone::Red, "stale data is trusted less");
        os.set_meminfo_outage(false);
        let r2 = mon.poll(&mut os, t(2));
        assert!(!r2.degraded);
        assert_eq!(r2.zone, Zone::Yellow, "fresh read restores full trust");
    }

    #[test]
    fn watchdog_escalates_after_k_silent_polls_and_backs_off() {
        let (mut os, _) = setup();
        let mut cfg = MonitorConfig::paper_64gb();
        cfg.watchdog_polls = 3;
        cfg.watchdog_backoff_max = 4;
        let mut mon = Monitor::new(cfg);
        let a = os.spawn("a");
        mon.register(a);
        os.grow(a, 56 * GIB).unwrap(); // red zone, a is always selected
        for i in 0..3 {
            let r = mon.poll(&mut os, t(i));
            assert_eq!(r.high_signalled, vec![a], "strike {i} still signals");
            os.take_signals(a);
        }
        assert!(mon.is_deprioritized(a), "3 silent polls escalate");
        assert_eq!(mon.stats.watchdog_escalations, 1);
        // Escalated: the next poll re-signals (backoff 1), then cooldowns
        // space the re-signals out.
        let signalled: Vec<bool> = (3..10)
            .map(|i| !mon.poll(&mut os, t(i)).high_signalled.is_empty())
            .collect();
        assert!(signalled[0], "first backed-off re-signal");
        assert!(
            signalled.iter().filter(|&&s| s).count() < signalled.len(),
            "backoff must skip polls"
        );
        assert!(mon.stats.watchdog_resignals >= 1);
    }

    #[test]
    fn reclamation_forgives_the_watchdog() {
        let (mut os, _) = setup();
        let mut cfg = MonitorConfig::paper_64gb();
        cfg.watchdog_polls = 2;
        let mut mon = Monitor::new(cfg);
        let a = os.spawn("a");
        mon.register(a);
        os.grow(a, 56 * GIB).unwrap();
        mon.poll(&mut os, t(0));
        mon.poll(&mut os, t(1));
        assert!(mon.is_deprioritized(a));
        mon.note_reclamation(a, GIB);
        assert!(!mon.is_deprioritized(a), "cooperation de-escalates");
    }

    #[test]
    fn escalated_participant_dies_first_despite_sort_order() {
        let (mut os, _) = setup();
        let mut cfg = MonitorConfig::paper_64gb();
        cfg.watchdog_polls = 2;
        let mut mon = Monitor::new(cfg);
        os.set_time(t(0));
        let uncoop = os.spawn("uncooperative");
        os.set_time(t(100));
        let coop = os.spawn("cooperative");
        mon.register(uncoop);
        mon.register(coop);
        os.grow(uncoop, 33 * GIB).unwrap();
        os.grow(coop, 30 * GIB).unwrap(); // 63 GiB > top (62)

        // Above top: both signalled; only `coop` ever reclaims.
        mon.poll(&mut os, t(101));
        mon.note_reclamation(coop, GIB / 2);
        assert!(!mon.is_deprioritized(uncoop), "one strike is not enough");
        // Second silent poll escalates `uncoop` (coop's record was cleared
        // by its reclamation) and the kill timeout fires in the same poll.
        // NewestFirst alone would kill `coop` (newest); the watchdog must
        // redirect the escalation to the non-cooperator.
        let r = mon.poll(&mut os, t(101 + 30));
        assert!(mon.stats.watchdog_escalations >= 1);
        assert_eq!(r.killed, vec![uncoop]);
        assert!(os.is_alive(coop));
        assert!(!os.is_alive(uncoop));
    }

    #[test]
    fn batch_dies_before_latency_critical_despite_newest_first() {
        let (mut os, mut mon) = setup();
        os.set_time(t(0));
        let batch = os.spawn("spark-batch");
        os.set_time(t(100));
        let critical = os.spawn("memcached-tier");
        mon.register_with_class(batch, Criticality::Batch);
        mon.register_with_class(critical, Criticality::LatencyCritical);
        os.grow(batch, 31 * GIB).unwrap();
        os.grow(critical, 32 * GIB).unwrap(); // 63 GiB > top (62)
        mon.poll(&mut os, t(101));
        // Newest-first posture alone would kill `critical` (spawned last);
        // criticality must redirect the kill onto the batch job.
        let r = mon.poll(&mut os, t(101 + 30));
        assert_eq!(r.killed, vec![batch]);
        assert!(os.is_alive(critical));
    }

    #[test]
    fn crit_blind_monitor_reverts_to_posture_order() {
        let (mut os, _) = setup();
        let mut cfg = MonitorConfig::paper_64gb();
        cfg.crit_blind = true;
        let mut mon = Monitor::new(cfg);
        os.set_time(t(0));
        let batch = os.spawn("spark-batch");
        os.set_time(t(100));
        let critical = os.spawn("memcached-tier");
        mon.register_with_class(batch, Criticality::Batch);
        mon.register_with_class(critical, Criticality::LatencyCritical);
        os.grow(batch, 31 * GIB).unwrap();
        os.grow(critical, 32 * GIB).unwrap();
        mon.poll(&mut os, t(101));
        let r = mon.poll(&mut os, t(101 + 30));
        assert_eq!(r.killed, vec![critical], "blind policy kills the newest");
    }

    #[test]
    fn escalation_never_jumps_a_class_boundary() {
        let (mut os, _) = setup();
        let mut cfg = MonitorConfig::paper_64gb();
        cfg.watchdog_polls = 2;
        let mut mon = Monitor::new(cfg);
        os.set_time(t(0));
        let uncoop = os.spawn("uncooperative-critical");
        os.set_time(t(100));
        let batch = os.spawn("cooperative-batch");
        mon.register_with_class(uncoop, Criticality::LatencyCritical);
        mon.register_with_class(batch, Criticality::Batch);
        os.grow(uncoop, 33 * GIB).unwrap();
        os.grow(batch, 30 * GIB).unwrap(); // 63 GiB > top (62)
        mon.poll(&mut os, t(101));
        mon.note_reclamation(batch, GIB / 2);
        let r = mon.poll(&mut os, t(101 + 30));
        assert!(mon.is_deprioritized(uncoop));
        // Even escalated, a latency-critical job outlives batch residents.
        assert_eq!(r.killed, vec![batch]);
        assert!(os.is_alive(uncoop));
    }

    #[test]
    fn registration_tracks_classes() {
        let (mut os, mut mon) = setup();
        let a = os.spawn("a");
        let b = os.spawn("b");
        mon.register(a);
        mon.register_with_class(b, Criticality::Batch);
        assert_eq!(mon.criticality_of(a), Criticality::Standard);
        assert_eq!(mon.criticality_of(b), Criticality::Batch);
        mon.unregister(b);
        assert_eq!(mon.criticality_of(b), Criticality::Standard);
    }

    #[test]
    fn kill_timeout_honours_config() {
        let (mut os, _) = setup();
        let mut cfg = MonitorConfig::paper_64gb();
        cfg.kill_timeout = SimDuration::from_secs(5);
        let mut mon = Monitor::new(cfg);
        let a = os.spawn("a");
        mon.register(a);
        os.grow(a, 63 * GIB).unwrap();
        mon.poll(&mut os, t(0));
        assert!(mon.poll(&mut os, t(4)).killed.is_empty());
        assert_eq!(mon.poll(&mut os, t(5)).killed, vec![a]);
    }
}
