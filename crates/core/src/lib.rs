//! M3: end-to-end memory management in elastic system software stacks.
//!
//! This crate is the reproduction of the paper's contribution (Lion, Chiu,
//! Yuan, EuroSys '21): a set of *mechanisms and policies* that let every
//! layer of a stacked application (OS → runtime → framework/cache) make
//! coordinated memory-management decisions.
//!
//! Following the end-to-end argument, the only decision made with global
//! information is **when the system is under memory pressure** — that is the
//! [`monitor`]'s job. Everything else (how, when, and by how much to reclaim)
//! is left to the applications, which implement [`layer::M3Participant`] and
//! run the [`alloc::AdaptiveAllocator`] protocol at their top-most
//! memory-managing layer.
//!
//! Component map (paper section in parentheses):
//!
//! - [`monitor`] — polls `MemAvailable` once a second, keeps two thresholds
//!   below a configured *top of memory*, signals registered processes and
//!   escalates to kills (§5, §6).
//! - [`thresholds`] — the adaptive threshold algorithm: ratio of time above
//!   vs below the high threshold (resp. the top) over a sliding window,
//!   compared to a 1:32 target, moving thresholds by 2 % of top (§5.2).
//! - [`selection`] — Algorithm 1: selective notification ordered by a
//!   configurable sort, summing expected reclamation until the target is
//!   covered (§5.1).
//! - [`reclaim`] — the expected-reclamation estimator: average of each
//!   process's last five signal responses (§5.1).
//! - [`alloc`] — the adaptive allocation protocol:
//!   `allow_rate = min(elapsed / (epoch_len × NUM_epochs), 100 %)` (§4.2).
//! - [`layer`] — the participant trait applications implement, plus the
//!   signal/outcome vocabulary shared with the monitor.
//! - [`config`] — every tunable with the paper's §6 defaults.
//! - [`scheduler`] — the work-packet reclamation scheduler: handlers are
//!   decomposed into typed packets in ordered Prepare → Collect → Release
//!   buckets with explicit dependencies, drained deterministically.

pub mod alloc;
pub mod config;
pub mod layer;
pub mod monitor;
pub mod reclaim;
pub mod registry;
pub mod scheduler;
pub mod selection;
pub mod thresholds;

pub use alloc::{AdaptiveAllocator, GateSnapshot, RateCurve};
pub use config::MonitorConfig;
pub use layer::{M3Participant, SignalOutcome, ThresholdSignal};
pub use monitor::{Monitor, PollReport, PressureSummary, Zone, MONITOR_PID};
pub use registry::{PidFile, Registry};
pub use scheduler::{
    DrainResult, PacketBucket, PacketId, PacketKind, PacketOutcome, PacketRecord, PacketStats,
    ReclaimScheduler, SchedulerConfig,
};
pub use selection::SortOrder;
pub use thresholds::{AdaptiveThresholds, ThresholdUpdate};
