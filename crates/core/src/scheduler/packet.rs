//! The typed work-packet vocabulary.
//!
//! A [`WorkPacket`] is one unit of reclamation work: a GC phase, one slab
//! class's eviction, a block-cache purge, or a batched madvise. Packets are
//! placed into ordered [`PacketBucket`]s and may name earlier packets as
//! explicit dependencies; the scheduler in [`super`] guarantees neither a
//! bucket nor a dependency edge is ever violated.

use m3_os::Kernel;
use m3_sim::clock::SimDuration;
use m3_sim::trace::PacketBucket;

/// Drain-local packet identifier (ids are assigned in enqueue order and
/// restart at 0 for every drain).
pub type PacketId = u64;

/// What kind of reclamation work a packet carries. The stable names feed
/// the `reclaim.packet.enqueue` trace event, which is how the conformance
/// oracle classifies per-packet bytes against the aggregate `evict.*` and
/// `gc.*` events of the same handler window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Framework block-cache eviction (Spark, Table 1's top row).
    EvictBlocks,
    /// One slab class's eviction (key-granular cache).
    EvictClass,
    /// Aggregate slab eviction (analytic cache, or the key-granular
    /// summary packet that settles the backend free).
    EvictSlabs,
    /// JVM young collection (scan + evacuate + sweep the young gen).
    GcYoung,
    /// JVM old-generation trace/evacuate (the mixed-specific part).
    GcOld,
    /// JVM full-heap mark/compact (the full-specific part).
    GcFull,
    /// Go runtime mark/sweep cycle.
    GcGo,
    /// Batched `madvise` returning the freed pages to the OS.
    Madvise,
}

impl PacketKind {
    /// Stable name recorded in `reclaim.packet.enqueue` events.
    pub fn name(&self) -> &'static str {
        match self {
            PacketKind::EvictBlocks => "evict_blocks",
            PacketKind::EvictClass => "evict_class",
            PacketKind::EvictSlabs => "evict_slabs",
            PacketKind::GcYoung => "gc_young",
            PacketKind::GcOld => "gc_old",
            PacketKind::GcFull => "gc_full",
            PacketKind::GcGo => "gc_go",
            PacketKind::Madvise => "madvise",
        }
    }

    /// The bucket this kind of work naturally belongs to (callers may
    /// override, e.g. the `gc_before_evict` ablation swaps GC and eviction).
    pub fn default_bucket(&self) -> PacketBucket {
        match self {
            PacketKind::EvictBlocks | PacketKind::EvictClass | PacketKind::EvictSlabs => {
                PacketBucket::Prepare
            }
            PacketKind::GcYoung | PacketKind::GcOld | PacketKind::GcFull | PacketKind::GcGo => {
                PacketBucket::Collect
            }
            PacketKind::Madvise => PacketBucket::Release,
        }
    }
}

/// What one executed packet did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PacketOutcome {
    /// Bytes reclaimed at the packet's own layer (evicted from a cache or
    /// freed inside a heap).
    pub bytes: u64,
    /// Bytes returned to the OS (madvise).
    pub returned: u64,
    /// Execution cost charged to the mutator.
    pub duration: SimDuration,
}

impl PacketOutcome {
    /// An outcome that freed `bytes` at its own layer in `duration`.
    pub fn freed(bytes: u64, duration: SimDuration) -> Self {
        PacketOutcome {
            bytes,
            returned: 0,
            duration,
        }
    }

    /// An outcome that returned `returned` bytes to the OS (madvise is
    /// charged no mutator time; the kernel work is below this model).
    pub fn released(returned: u64) -> Self {
        PacketOutcome {
            bytes: 0,
            returned,
            duration: SimDuration::ZERO,
        }
    }
}

/// The mutation step of a packet: commits the reclamation against the
/// participant context and the kernel, consumed exactly once at drain.
pub(super) type PacketRun<C> = Box<dyn FnOnce(&mut C, &mut Kernel) -> PacketOutcome>;

/// One unit of reclamation work over a participant context `C` (the app
/// that owns the layers being reclaimed). `run` commits the mutation;
/// `cost` is a pure estimator of the bytes the packet will move, evaluated
/// for a whole ready wave at once (through `parallel_map`) before any
/// packet in the wave executes.
pub struct WorkPacket<C> {
    pub(super) id: PacketId,
    pub(super) kind: PacketKind,
    pub(super) bucket: PacketBucket,
    pub(super) deps: Vec<PacketId>,
    pub(super) cost: Box<dyn Fn(&C) -> u64 + Send + Sync>,
    pub(super) run: Option<PacketRun<C>>,
}

impl<C> std::fmt::Debug for WorkPacket<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkPacket")
            .field("id", &self.id)
            .field("kind", &self.kind.name())
            .field("bucket", &self.bucket)
            .field("deps", &self.deps)
            .finish_non_exhaustive()
    }
}
