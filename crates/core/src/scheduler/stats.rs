//! Per-packet execution statistics.
//!
//! Every drained packet leaves one [`PacketRecord`] behind: which wave it
//! ran in, how many waves it sat queued behind unfinished dependencies or a
//! closed bucket (its queue latency in scheduler time), the execution ticks
//! it charged, and the bytes it moved. [`PacketStats`] aggregates a whole
//! drain so callers (and tests) can reason about scheduler behaviour
//! without re-parsing the trace.

use m3_sim::clock::SimDuration;
use m3_sim::trace::PacketBucket;

use super::packet::PacketId;

/// Statistics for one executed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRecord {
    /// The packet's drain-local id.
    pub id: PacketId,
    /// Stable kind name (`gc_young`, `evict_class`, ...).
    pub kind: &'static str,
    /// Bucket the packet executed in.
    pub bucket: PacketBucket,
    /// Wave index (0-based) the packet executed in.
    pub wave: u64,
    /// Queue latency: number of whole waves spent enqueued but not
    /// executable (dependencies unfinished or bucket not yet open).
    pub queued_waves: u64,
    /// Pure pre-execution estimate of the bytes the packet would move.
    pub planned_bytes: u64,
    /// Bytes actually reclaimed at the packet's own layer.
    pub bytes: u64,
    /// Bytes actually returned to the OS.
    pub returned: u64,
    /// Execution ticks charged to the mutator.
    pub duration: SimDuration,
}

/// Aggregate statistics of one full drain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PacketStats {
    /// One record per executed packet, in execution (packet-id) order.
    pub records: Vec<PacketRecord>,
    /// Number of waves the drain took.
    pub waves: u64,
    /// Total stall observations (a packet seen ready-blocked in a wave).
    pub stalls: u64,
}

impl PacketStats {
    /// Total bytes reclaimed across all packets.
    pub fn bytes(&self) -> u64 {
        self.records.iter().map(|r| r.bytes).sum()
    }

    /// Total bytes returned to the OS across all packets.
    pub fn returned(&self) -> u64 {
        self.records.iter().map(|r| r.returned).sum()
    }

    /// Total execution time charged across all packets.
    pub fn duration(&self) -> SimDuration {
        self.records
            .iter()
            .fold(SimDuration::ZERO, |acc, r| acc + r.duration)
    }

    /// Records of one kind, for per-kind assertions in tests.
    pub fn of_kind(&self, kind: &str) -> Vec<&PacketRecord> {
        self.records.iter().filter(|r| r.kind == kind).collect()
    }
}
