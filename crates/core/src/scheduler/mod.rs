//! Work-packet reclamation scheduler.
//!
//! Every M3 reclamation used to be a monolithic handler: Spark's High
//! handler evicted ⅛ of its blocks, ran a mixed GC and madvised, all as one
//! opaque call. This module decomposes those handlers into typed
//! [`WorkPacket`]s placed in three ordered buckets that encode the paper's
//! top-down reclamation order:
//!
//! 1. [`PacketBucket::Prepare`] — application-layer evictions that mark
//!    bytes dead (block-cache purges, slab-class evictions);
//! 2. [`PacketBucket::Collect`] — runtime GC phases that turn dead bytes
//!    into free heap (young/old/full/Go cycles);
//! 3. [`PacketBucket::Release`] — batched `madvise` handing free pages back
//!    to the OS.
//!
//! A bucket only *opens* once every packet in all earlier buckets has
//! finished, and a packet only *executes* once its explicit dependencies
//! have finished. The drain proceeds in waves: each wave, the ready set of
//! the open bucket is costed in parallel through
//! [`m3_sim::parallel::parallel_map`] (a pure pass, merged in submission
//! order), then the mutations commit serially in packet-id order. Because
//! the only parallel phase is pure and its merge is deterministic, a drain
//! is **byte-identical for any worker count** — `M3_JOBS=8` changes
//! wall-clock time, never results. The conformance suite pins this down,
//! and the `reclaim.packet.*` trace events emitted here let the oracle
//! verify bucket order, dependency edges and byte conservation after every
//! traced run.

mod packet;
mod stats;

pub use packet::{PacketId, PacketKind, PacketOutcome, WorkPacket};
pub use stats::{PacketRecord, PacketStats};

pub use m3_sim::trace::PacketBucket;

use m3_os::{Kernel, Pid};
use m3_sim::parallel::{parallel_map, worker_threads};
use m3_sim::trace::TraceData;

use crate::layer::SignalOutcome;

/// Ready waves at least this large are costed through the thread pool;
/// smaller waves are costed serially (spawning threads for two or three
/// pure estimator calls costs more than it saves).
pub const PARALLEL_COST_MIN: usize = 4;

/// Scheduler tunables.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedulerConfig {
    /// Worker threads for the parallel costing pass; `None` uses
    /// [`worker_threads`] (the `M3_JOBS` environment variable).
    pub workers: Option<usize>,
    /// Ablation: drain the buckets in *reverse* order, ignoring dependency
    /// edges. Exists to prove the conformance oracle catches ordering
    /// violations; never enabled in a correct configuration.
    pub ablate_bucket_order: bool,
}

impl SchedulerConfig {
    /// The effective worker count.
    pub fn worker_count(&self) -> usize {
        self.workers.unwrap_or_else(worker_threads)
    }
}

/// What one full drain accomplished.
#[derive(Debug)]
pub struct DrainResult {
    /// Summed handler outcome (durations add, returned bytes add) — what
    /// `handle_signal` reports to the monitor.
    pub outcome: SignalOutcome,
    /// Per-packet statistics.
    pub stats: PacketStats,
}

/// A single-drain packet scheduler over a participant context `C`.
///
/// Built fresh for each signal: the handler enqueues its packets (eviction,
/// GC phases, madvise) with explicit dependencies, then calls
/// [`ReclaimScheduler::drain`] once. Ids are assigned in enqueue order and
/// double as the deterministic execution order within a wave.
pub struct ReclaimScheduler<C> {
    pid: Pid,
    cfg: SchedulerConfig,
    packets: Vec<WorkPacket<C>>,
}

impl<C: Sync> ReclaimScheduler<C> {
    /// An empty scheduler draining on behalf of `pid`.
    pub fn new(pid: Pid, cfg: SchedulerConfig) -> Self {
        ReclaimScheduler {
            pid,
            cfg,
            packets: Vec::new(),
        }
    }

    /// Number of packets enqueued so far.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when nothing has been enqueued.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Enqueues a packet in its kind's default bucket with a zero cost
    /// estimate. Returns its id for use in later packets' `deps`.
    pub fn add(
        &mut self,
        kind: PacketKind,
        deps: &[PacketId],
        run: impl FnOnce(&mut C, &mut Kernel) -> PacketOutcome + 'static,
    ) -> PacketId {
        self.add_in(kind, kind.default_bucket(), deps, |_| 0, run)
    }

    /// Enqueues a packet in its kind's default bucket with a pure byte-cost
    /// estimator (evaluated during the wave's parallel costing pass).
    pub fn add_costed(
        &mut self,
        kind: PacketKind,
        deps: &[PacketId],
        cost: impl Fn(&C) -> u64 + Send + Sync + 'static,
        run: impl FnOnce(&mut C, &mut Kernel) -> PacketOutcome + 'static,
    ) -> PacketId {
        self.add_in(kind, kind.default_bucket(), deps, cost, run)
    }

    /// Fully explicit enqueue: kind, bucket, dependencies, cost estimator
    /// and the mutation itself.
    ///
    /// Panics if a dependency names a not-yet-enqueued packet or one in a
    /// *later* bucket — either would deadlock the drain, so both are
    /// rejected as programming errors at enqueue time.
    pub fn add_in(
        &mut self,
        kind: PacketKind,
        bucket: PacketBucket,
        deps: &[PacketId],
        cost: impl Fn(&C) -> u64 + Send + Sync + 'static,
        run: impl FnOnce(&mut C, &mut Kernel) -> PacketOutcome + 'static,
    ) -> PacketId {
        let id = self.packets.len() as PacketId;
        for &d in deps {
            let dep = self
                .packets
                .get(d as usize)
                .unwrap_or_else(|| panic!("packet {id} depends on unknown packet {d}"));
            assert!(
                dep.bucket <= bucket,
                "packet {id} ({bucket:?}) depends on packet {d} in later bucket {:?}",
                dep.bucket
            );
        }
        self.packets.push(WorkPacket {
            id,
            kind,
            bucket,
            deps: deps.to_vec(),
            cost: Box::new(cost),
            run: Some(Box::new(run)),
        });
        id
    }

    /// Executes every packet and returns the summed outcome plus
    /// per-packet statistics. Emits `reclaim.packet.enqueue` for every
    /// packet up front (id order), then `stall`/`start`/`finish` events as
    /// the waves progress.
    pub fn drain(mut self, ctx: &mut C, os: &mut Kernel) -> DrainResult {
        let pid = self.pid;
        for p in &self.packets {
            os.record_trace_with(pid, || TraceData::PacketEnqueue {
                packet: p.id,
                pkind: p.kind.name().to_string(),
                bucket: p.bucket,
                deps: p.deps.clone(),
            });
        }
        if self.cfg.ablate_bucket_order {
            return self.drain_ablated(ctx, os);
        }

        let n = self.packets.len();
        let workers = self.cfg.worker_count();
        let mut finished = vec![false; n];
        let mut stats = PacketStats::default();
        let mut outcome = SignalOutcome::default();
        let mut wave: u64 = 0;
        let mut done = 0usize;
        while done < n {
            // The open bucket is the earliest one still holding unfinished
            // packets: by definition every packet in a strictly earlier
            // bucket has finished.
            let open = self
                .packets
                .iter()
                .filter(|p| !finished[p.id as usize])
                .map(|p| p.bucket)
                .min()
                .expect("unfinished packets remain");
            let mut ready: Vec<usize> = Vec::new();
            for p in self.packets.iter().filter(|p| p.bucket == open) {
                let i = p.id as usize;
                if finished[i] {
                    continue;
                }
                match p.deps.iter().find(|&&d| !finished[d as usize]) {
                    None => ready.push(i),
                    Some(&blocker) => {
                        os.record_trace(
                            pid,
                            TraceData::PacketStall {
                                packet: p.id,
                                waiting_on: blocker,
                                wave,
                            },
                        );
                        stats.stalls += 1;
                    }
                }
            }
            // Always true: the smallest unfinished id in the open bucket
            // has only finished dependencies (deps are earlier ids in the
            // same or an earlier bucket), so every wave makes progress.
            assert!(!ready.is_empty(), "packet dependency cycle");

            // Pure costing pass, fanned out when the wave is large enough.
            // `parallel_map` merges in submission order, so the planned
            // bytes land in the same slots for any worker count.
            let cost_workers = if ready.len() >= PARALLEL_COST_MIN {
                workers
            } else {
                1
            };
            let estimators: Vec<&(dyn Fn(&C) -> u64 + Send + Sync)> = ready
                .iter()
                .map(|&i| self.packets[i].cost.as_ref())
                .collect();
            let shared: &C = ctx;
            let planned = parallel_map(estimators, cost_workers, |est| est(shared));

            // Commit serially in packet-id order (`ready` is id-sorted).
            for (&i, &planned_bytes) in ready.iter().zip(planned.iter()) {
                let (id, kind, bucket) = {
                    let p = &self.packets[i];
                    (p.id, p.kind, p.bucket)
                };
                os.record_trace(
                    pid,
                    TraceData::PacketStart {
                        packet: id,
                        bucket,
                        wave,
                    },
                );
                let run = self.packets[i]
                    .run
                    .take()
                    .expect("packet executes exactly once");
                let out = run(ctx, os);
                os.record_trace(
                    pid,
                    TraceData::PacketFinish {
                        packet: id,
                        bucket,
                        bytes: out.bytes,
                        returned: out.returned,
                        duration_ms: out.duration.as_millis(),
                    },
                );
                outcome.merge(SignalOutcome {
                    duration: out.duration,
                    returned_to_os: out.returned,
                });
                stats.records.push(PacketRecord {
                    id,
                    kind: kind.name(),
                    bucket,
                    wave,
                    queued_waves: wave,
                    planned_bytes,
                    bytes: out.bytes,
                    returned: out.returned,
                    duration: out.duration,
                });
                finished[i] = true;
                done += 1;
            }
            wave += 1;
        }
        stats.waves = wave;
        DrainResult { outcome, stats }
    }

    /// The broken drain used by the bucket-order ablation: buckets execute
    /// in reverse order and dependency edges are ignored entirely (honoring
    /// them while reversing buckets would deadlock). Emits the same event
    /// kinds as the correct drain, so the resulting trace carries provable
    /// `reclaim.packet.bucket` / `reclaim.packet.deps` violations.
    fn drain_ablated(mut self, ctx: &mut C, os: &mut Kernel) -> DrainResult {
        let pid = self.pid;
        let mut order: Vec<usize> = (0..self.packets.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(self.packets[i].bucket), i));
        let mut stats = PacketStats::default();
        let mut outcome = SignalOutcome::default();
        for (wave, &i) in order.iter().enumerate() {
            let wave = wave as u64;
            let (id, kind, bucket) = {
                let p = &self.packets[i];
                (p.id, p.kind, p.bucket)
            };
            let planned_bytes = (self.packets[i].cost)(ctx);
            os.record_trace(
                pid,
                TraceData::PacketStart {
                    packet: id,
                    bucket,
                    wave,
                },
            );
            let run = self.packets[i]
                .run
                .take()
                .expect("packet executes exactly once");
            let out = run(ctx, os);
            os.record_trace(
                pid,
                TraceData::PacketFinish {
                    packet: id,
                    bucket,
                    bytes: out.bytes,
                    returned: out.returned,
                    duration_ms: out.duration.as_millis(),
                },
            );
            outcome.merge(SignalOutcome {
                duration: out.duration,
                returned_to_os: out.returned,
            });
            stats.records.push(PacketRecord {
                id,
                kind: kind.name(),
                bucket,
                wave,
                queued_waves: 0,
                planned_bytes,
                bytes: out.bytes,
                returned: out.returned,
                duration: out.duration,
            });
        }
        stats.waves = order.len() as u64;
        DrainResult { outcome, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_os::KernelConfig;
    use m3_sim::clock::SimDuration;
    use m3_sim::units::GIB;

    /// Synthetic participant: a log of executed packet labels plus a pool
    /// of "dead" bytes that Collect packets free and Release returns.
    #[derive(Default)]
    struct Ctx {
        ran: Vec<&'static str>,
        dead: u64,
        free: u64,
    }

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig::with_total(4 * GIB))
    }

    fn outcome(bytes: u64) -> PacketOutcome {
        PacketOutcome {
            bytes,
            returned: 0,
            duration: SimDuration::from_millis(5),
        }
    }

    #[test]
    fn buckets_execute_in_order_regardless_of_enqueue_order() {
        let mut os = kernel();
        let mut ctx = Ctx::default();
        let mut sched = ReclaimScheduler::new(7, SchedulerConfig::default());
        sched.add(PacketKind::Madvise, &[], |c: &mut Ctx, _| {
            c.ran.push("madvise");
            outcome(0)
        });
        sched.add(PacketKind::GcYoung, &[], |c: &mut Ctx, _| {
            c.ran.push("gc");
            outcome(100)
        });
        sched.add(PacketKind::EvictBlocks, &[], |c: &mut Ctx, _| {
            c.ran.push("evict");
            outcome(200)
        });
        let res = sched.drain(&mut ctx, &mut os);
        assert_eq!(ctx.ran, vec!["evict", "gc", "madvise"]);
        assert_eq!(res.stats.waves, 3, "one wave per non-empty bucket");
        assert_eq!(res.stats.bytes(), 300);
        assert_eq!(os.trace.count("reclaim.packet.start"), 3);
    }

    #[test]
    fn dependencies_gate_within_a_bucket_and_emit_stalls() {
        let mut os = kernel();
        let mut ctx = Ctx::default();
        let mut sched = ReclaimScheduler::new(7, SchedulerConfig::default());
        let young = sched.add(PacketKind::GcYoung, &[], |c: &mut Ctx, _| {
            c.ran.push("young");
            outcome(10)
        });
        sched.add(PacketKind::GcOld, &[young], |c: &mut Ctx, _| {
            c.ran.push("old");
            outcome(20)
        });
        // Flip enqueue order relative to execution: old depends on young
        // but a second independent young-bucket packet rides in wave 0.
        sched.add(PacketKind::GcYoung, &[], |c: &mut Ctx, _| {
            c.ran.push("young2");
            outcome(30)
        });
        let res = sched.drain(&mut ctx, &mut os);
        assert_eq!(ctx.ran, vec!["young", "young2", "old"]);
        assert_eq!(res.stats.waves, 2);
        assert_eq!(res.stats.stalls, 1, "old stalled one wave behind young");
        let stall = os.trace.first("reclaim.packet.stall").expect("stall event");
        match &stall.data {
            TraceData::PacketStall {
                packet, waiting_on, ..
            } => {
                assert_eq!(*packet, 1);
                assert_eq!(*waiting_on, young);
            }
            other => panic!("unexpected stall payload {other:?}"),
        }
        let old = res.stats.of_kind("gc_old")[0];
        assert_eq!(old.queued_waves, 1);
    }

    #[test]
    fn drain_is_identical_for_any_worker_count() {
        let run = |workers: usize| {
            let mut os = kernel();
            let mut ctx = Ctx {
                dead: 600,
                ..Ctx::default()
            };
            let mut sched = ReclaimScheduler::new(
                7,
                SchedulerConfig {
                    workers: Some(workers),
                    ablate_bucket_order: false,
                },
            );
            // A wave wide enough to trip the parallel costing path.
            for i in 0..6u64 {
                sched.add_costed(
                    PacketKind::EvictClass,
                    &[],
                    move |c: &Ctx| c.dead / 6 + i,
                    move |c: &mut Ctx, _| {
                        let freed = c.dead / 6;
                        c.dead -= freed;
                        c.free += freed;
                        outcome(freed)
                    },
                );
            }
            let res = sched.drain(&mut ctx, &mut os);
            let planned: Vec<u64> = res.stats.records.iter().map(|r| r.planned_bytes).collect();
            (planned, res.stats.bytes(), ctx.free, os.trace.len())
        };
        let baseline = run(1);
        assert_eq!(run(4), baseline);
        assert_eq!(run(8), baseline);
    }

    #[test]
    fn ablated_drain_reverses_buckets_and_ignores_deps() {
        let mut os = kernel();
        let mut ctx = Ctx::default();
        let mut sched = ReclaimScheduler::new(
            7,
            SchedulerConfig {
                workers: Some(1),
                ablate_bucket_order: true,
            },
        );
        let ev = sched.add(PacketKind::EvictBlocks, &[], |c: &mut Ctx, _| {
            c.ran.push("evict");
            outcome(100)
        });
        let gc = sched.add(PacketKind::GcYoung, &[ev], |c: &mut Ctx, _| {
            c.ran.push("gc");
            outcome(50)
        });
        sched.add(PacketKind::Madvise, &[gc], |c: &mut Ctx, _| {
            c.ran.push("madvise");
            outcome(0)
        });
        sched.drain(&mut ctx, &mut os);
        assert_eq!(
            ctx.ran,
            vec!["madvise", "gc", "evict"],
            "ablation must reverse the bucket order"
        );
    }

    #[test]
    #[should_panic(expected = "later bucket")]
    fn dependency_on_a_later_bucket_is_rejected() {
        let mut sched: ReclaimScheduler<Ctx> = ReclaimScheduler::new(7, SchedulerConfig::default());
        let madv = sched.add(PacketKind::Madvise, &[], |_, _| PacketOutcome::default());
        sched.add(PacketKind::EvictBlocks, &[madv], |_, _| {
            PacketOutcome::default()
        });
    }

    #[test]
    fn empty_drain_is_a_no_op() {
        let mut os = kernel();
        let mut ctx = Ctx::default();
        let sched: ReclaimScheduler<Ctx> = ReclaimScheduler::new(7, SchedulerConfig::default());
        let res = sched.drain(&mut ctx, &mut os);
        assert_eq!(res.outcome, SignalOutcome::default());
        assert!(res.stats.records.is_empty());
        assert!(os.trace.is_empty());
    }
}
