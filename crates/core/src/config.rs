//! Monitor configuration with the paper's §6 defaults.

use m3_sim::clock::SimDuration;
use m3_sim::units::GIB;
use serde::{Deserialize, Serialize};

use crate::selection::SortOrder;

/// All tunables of the M3 monitor.
///
/// The defaults mirror the paper's evaluation machine (§6): top of memory at
/// 62 GB of 64 GB, thresholds initialised to 50/55 GB, both ratio targets
/// 1:32 over a 32-poll sliding window, 2 % adjustment steps, one-second
/// polling.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Top of memory: the acceptable application memory ceiling, at or just
    /// below physical memory.
    pub top: u64,
    /// Initial low threshold (adjusted dynamically unless `adaptive` is
    /// off).
    pub initial_low: u64,
    /// Initial high threshold.
    pub initial_high: u64,
    /// Monitor polling period (`MemAvailable` is read once per period).
    pub poll_period: SimDuration,
    /// Sliding window length, in polls, over which the above/below ratios
    /// are computed.
    pub window: usize,
    /// Target ratio of time above : below the high threshold (resp. the
    /// top), expressed as the "above" share, e.g. `1.0 / 32.0`.
    pub ratio_target: f64,
    /// Threshold adjustment step as a fraction of `top`.
    pub step_fraction: f64,
    /// Algorithm 1 sort order (the paper's evaluation uses newest-first).
    pub sort_order: SortOrder,
    /// How long the system may stay above top (with everyone signalled)
    /// before the monitor starts killing processes.
    pub kill_timeout: SimDuration,
    /// If false, thresholds stay at their initial values (paper Fig. 10's
    /// "static thresholds" baseline).
    pub adaptive: bool,
    /// Ablation switch: if true, the red zone signals *every* registered
    /// process instead of running Algorithm 1's selective notification.
    pub signal_all: bool,
    /// Reclamation watchdog: a participant high-signalled this many
    /// consecutive polls with zero reclaimed bytes is escalated — re-signalled
    /// with bounded backoff and deprioritized into the kill ordering.
    pub watchdog_polls: u32,
    /// Upper bound, in polls, of the watchdog's exponential re-signal
    /// backoff for escalated participants.
    pub watchdog_backoff_max: u32,
    /// Degraded-mode polling: each consecutive failed meminfo read widens
    /// the red-zone margin by this fraction of `top` (thresholds are pulled
    /// down), so enforcement turns conservative instead of stopping.
    pub degraded_margin_fraction: f64,
    /// Ablation switch: if true, Algorithm 1 ignores criticality classes
    /// and sorts by posture alone (the paper's original ordering). Under a
    /// mixed-criticality load this is exactly the broken policy the
    /// oracle's `kill.class.order` invariant must catch.
    pub crit_blind: bool,
}

impl MonitorConfig {
    /// The paper's configuration for a 64-GB node.
    pub fn paper_64gb() -> Self {
        MonitorConfig {
            top: 62 * GIB,
            initial_low: 50 * GIB,
            initial_high: 55 * GIB,
            ..MonitorConfig::scaled(64 * GIB)
        }
    }

    /// A configuration scaled to an arbitrary physical memory size, keeping
    /// the paper's proportions (top ≈ 97 %, low ≈ 78 %, high ≈ 86 %).
    pub fn scaled(phys_total: u64) -> Self {
        MonitorConfig {
            top: phys_total / 32 * 31,
            initial_low: phys_total / 32 * 25,
            initial_high: phys_total / 32 * 27,
            poll_period: SimDuration::from_secs(1),
            window: 32,
            ratio_target: 1.0 / 32.0,
            step_fraction: 0.02,
            sort_order: SortOrder::NewestFirst,
            kill_timeout: SimDuration::from_secs(30),
            adaptive: true,
            signal_all: false,
            watchdog_polls: 5,
            watchdog_backoff_max: 8,
            degraded_margin_fraction: 0.02,
            crit_blind: false,
        }
    }

    /// The adjustment step in bytes.
    pub fn step(&self) -> u64 {
        (self.top as f64 * self.step_fraction) as u64
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if thresholds are not ordered `low <= high <= top` or the
    /// window/ratio are degenerate. Call once at construction sites.
    pub fn validate(&self) {
        assert!(
            self.initial_low <= self.initial_high,
            "low must not exceed high"
        );
        assert!(self.initial_high <= self.top, "high must not exceed top");
        assert!(self.window > 0, "window must be non-empty");
        assert!(
            self.ratio_target > 0.0 && self.ratio_target < 1.0,
            "ratio target must be in (0, 1)"
        );
        assert!(!self.poll_period.is_zero(), "poll period must be positive");
        assert!(self.watchdog_polls > 0, "watchdog needs at least one poll");
        assert!(
            self.watchdog_backoff_max >= 1,
            "backoff cap must allow re-signalling"
        );
        assert!(
            (0.0..1.0).contains(&self.degraded_margin_fraction),
            "degraded margin fraction must be in [0, 1)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_6() {
        let c = MonitorConfig::paper_64gb();
        assert_eq!(c.top, 62 * GIB);
        assert_eq!(c.initial_low, 50 * GIB);
        assert_eq!(c.initial_high, 55 * GIB);
        assert_eq!(c.window, 32);
        assert!((c.ratio_target - 1.0 / 32.0).abs() < 1e-12);
        assert_eq!(c.poll_period, SimDuration::from_secs(1));
        assert!((c.step_fraction - 0.02).abs() < 1e-12);
        assert_eq!(c.sort_order, SortOrder::NewestFirst);
        assert!(c.adaptive);
        c.validate();
    }

    #[test]
    fn scaled_keeps_ordering() {
        for gib in [1u64, 4, 8, 64, 256] {
            let c = MonitorConfig::scaled(gib * GIB);
            c.validate();
            assert!(c.initial_low < c.initial_high);
            assert!(c.initial_high < c.top);
            assert!(c.top <= gib * GIB);
        }
    }

    #[test]
    fn step_is_two_percent_of_top() {
        let c = MonitorConfig::paper_64gb();
        assert_eq!(c.step(), (62.0 * GIB as f64 * 0.02) as u64);
    }

    #[test]
    #[should_panic(expected = "low must not exceed high")]
    fn validate_rejects_inverted_thresholds() {
        let mut c = MonitorConfig::paper_64gb();
        c.initial_low = c.initial_high + 1;
        c.validate();
    }
}
