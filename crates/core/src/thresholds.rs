//! Adaptive threshold adjustment (§5.2).
//!
//! Static thresholds cannot fit applications that reclaim at different
//! speeds, so the monitor moves both thresholds dynamically:
//!
//! - the **low** threshold tempers how often usage reaches the *high*
//!   threshold: over a sliding window of polls, if the fraction of time
//!   spent above the high threshold exceeds the target (1:32), the low
//!   threshold drops (earlier warnings); if it is below the target, the low
//!   threshold rises (fewer unnecessary signals);
//! - the **high** threshold applies the same rule against the *top of
//!   memory*.
//!
//! Guards prevent over-fitting: a threshold is lowered only while the
//! pressure that justifies it is still present (usage above high, resp.
//! above top), raised only while usage is at least at that threshold (below
//! it no signals are sent, so there is nothing to learn), and the ordering
//! `low <= high <= top` is always preserved.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use crate::config::MonitorConfig;

/// One poll's classification, as remembered by the sliding window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct PollRecord {
    above_high: bool,
    above_top: bool,
}

/// What one [`AdaptiveThresholds::observe`] call changed: `(old, new)` per
/// threshold, `None` where the threshold did not move. The monitor turns
/// these into `threshold.adjust.*` trace events; the conformance oracle
/// replays the same algorithm and checks the recorded moves match.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThresholdUpdate {
    /// Low-threshold move, bytes.
    pub low: Option<(u64, u64)>,
    /// High-threshold move, bytes.
    pub high: Option<(u64, u64)>,
}

/// The dynamically adjusted low/high thresholds.
#[derive(Debug, Clone)]
pub struct AdaptiveThresholds {
    low: u64,
    high: u64,
    top: u64,
    step: u64,
    ratio_target: f64,
    window: usize,
    adaptive: bool,
    records: VecDeque<PollRecord>,
}

impl AdaptiveThresholds {
    /// Creates thresholds from a monitor configuration.
    pub fn new(cfg: &MonitorConfig) -> Self {
        cfg.validate();
        AdaptiveThresholds {
            low: cfg.initial_low,
            high: cfg.initial_high,
            top: cfg.top,
            step: cfg.step(),
            ratio_target: cfg.ratio_target,
            window: cfg.window,
            adaptive: cfg.adaptive,
            records: VecDeque::with_capacity(cfg.window),
        }
    }

    /// The current low threshold, bytes.
    pub fn low(&self) -> u64 {
        self.low
    }

    /// The current high threshold, bytes.
    pub fn high(&self) -> u64 {
        self.high
    }

    /// The top of memory, bytes.
    pub fn top(&self) -> u64 {
        self.top
    }

    /// Fraction of windowed polls above the high threshold.
    fn red_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.above_high).count() as f64 / self.records.len() as f64
    }

    /// Fraction of windowed polls above the top.
    fn above_top_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.above_top).count() as f64 / self.records.len() as f64
    }

    /// Feeds one poll's memory usage and adjusts the thresholds, reporting
    /// which thresholds moved.
    ///
    /// Adjustments only happen once the window is full, so early polls do
    /// not whipsaw the thresholds.
    pub fn observe(&mut self, used: u64) -> ThresholdUpdate {
        if self.records.len() == self.window {
            self.records.pop_front();
        }
        self.records.push_back(PollRecord {
            above_high: used > self.high,
            above_top: used > self.top,
        });
        if !self.adaptive || self.records.len() < self.window {
            return ThresholdUpdate::default();
        }
        let (low0, high0) = (self.low, self.high);

        // Low threshold: temper how often the high threshold is reached.
        let red = self.red_fraction();
        if red > self.ratio_target && used > self.high {
            // Reached high too often and pressure persists: warn earlier.
            self.low = self.low.saturating_sub(self.step);
        } else if red < self.ratio_target && used >= self.low {
            // High rarely reached and the low threshold is actually in play:
            // relax it to avoid unnecessary signals.
            self.low = (self.low + self.step).min(self.high);
        }

        // High threshold: same rule against the top of memory. Fig. 6 shows
        // both thresholds rising while the system operates in the yellow
        // zone, so the raise guard is "usage at least at the low threshold"
        // (in green nothing adjusts: memory is simply not in demand).
        let over_top = self.above_top_fraction();
        if over_top > self.ratio_target && used > self.top {
            // Operating above top too often: signal sooner. (This does not
            // change how much is reclaimed, only when reclamation starts.)
            self.high = self.high.saturating_sub(self.step).max(self.low);
        } else if over_top < self.ratio_target && used >= self.low {
            // Never reaching top: utilization headroom exists, raise high —
            // but keep one step of red band below top, so Algorithm 1's
            // selective notification still has room to act before the
            // signal-everyone above-top escalation.
            self.high = (self.high + self.step).min(self.top.saturating_sub(self.step));
        }

        debug_assert!(self.low <= self.high && self.high <= self.top);
        ThresholdUpdate {
            low: (self.low != low0).then_some((low0, self.low)),
            high: (self.high != high0).then_some((high0, self.high)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_sim::units::GIB;

    fn cfg() -> MonitorConfig {
        MonitorConfig::paper_64gb()
    }

    fn fill_window(t: &mut AdaptiveThresholds, used: u64) {
        for _ in 0..32 {
            t.observe(used);
        }
    }

    #[test]
    fn initial_values_from_config() {
        let t = AdaptiveThresholds::new(&cfg());
        assert_eq!(t.low(), 50 * GIB);
        assert_eq!(t.high(), 55 * GIB);
        assert_eq!(t.top(), 62 * GIB);
    }

    #[test]
    fn no_adjustment_until_window_full() {
        let mut t = AdaptiveThresholds::new(&cfg());
        for _ in 0..31 {
            t.observe(61 * GIB); // above high
        }
        assert_eq!(t.low(), 50 * GIB, "window not yet full");
    }

    #[test]
    fn sustained_red_lowers_low_threshold() {
        let mut t = AdaptiveThresholds::new(&cfg());
        let low0 = t.low();
        fill_window(&mut t, 58 * GIB); // above high (55), below top (62)
        assert!(t.low() < low0, "low should drop under sustained pressure");
    }

    #[test]
    fn sustained_red_below_top_raises_high_threshold() {
        // §7.2.1/Fig. 6: "the high threshold keeps increasing, as the system
        // still operates underneath the top of memory."
        let mut t = AdaptiveThresholds::new(&cfg());
        let high0 = t.high();
        fill_window(&mut t, 58 * GIB);
        assert!(t.high() > high0);
        assert!(t.high() <= t.top());
    }

    #[test]
    fn quiet_yellow_zone_raises_low_threshold() {
        // Usage sits between low and high: high is never reached, so low
        // creeps up to reduce unnecessary signals.
        let mut t = AdaptiveThresholds::new(&cfg());
        let low0 = t.low();
        fill_window(&mut t, 52 * GIB);
        assert!(t.low() > low0);
        assert!(t.low() <= t.high());
    }

    #[test]
    fn green_zone_changes_nothing() {
        // "M3 does not adjust thresholds when the system is operating in the
        // green or yellow zone" — in green, neither guard passes.
        let mut t = AdaptiveThresholds::new(&cfg());
        fill_window(&mut t, 10 * GIB);
        assert_eq!(t.low(), 50 * GIB);
        assert_eq!(t.high(), 55 * GIB);
    }

    #[test]
    fn above_top_lowers_high_threshold() {
        let mut t = AdaptiveThresholds::new(&cfg());
        let high0 = t.high();
        fill_window(&mut t, 63 * GIB); // above top
        assert!(t.high() < high0, "persistent above-top must signal sooner");
        assert!(t.high() >= t.low());
    }

    #[test]
    fn thresholds_self_limit_near_operating_point() {
        let mut t = AdaptiveThresholds::new(&cfg());
        // Long quiet-yellow phase: the raise guards stop firing once the low
        // threshold climbs past the operating point, so neither threshold
        // runs away.
        for _ in 0..500 {
            t.observe(54 * GIB);
        }
        assert!(t.low() <= t.high());
        assert!(t.low() >= 54 * GIB, "low climbed past the operating point");
        assert!(
            t.low() <= 54 * GIB + 2 * t.step,
            "low self-limits just above the operating point (got {})",
            t.low()
        );
    }

    #[test]
    fn high_never_exceeds_top() {
        let mut t = AdaptiveThresholds::new(&cfg());
        for _ in 0..500 {
            t.observe(61 * GIB); // red but under top
        }
        assert!(t.high() <= t.top());
    }

    #[test]
    fn static_mode_never_moves() {
        let mut c = cfg();
        c.adaptive = false;
        let mut t = AdaptiveThresholds::new(&c);
        for _ in 0..200 {
            t.observe(61 * GIB);
        }
        assert_eq!(t.low(), 50 * GIB);
        assert_eq!(t.high(), 55 * GIB);
    }

    #[test]
    fn figure_6_narrative_yellow_zone_raises_both() {
        // "Both the low and high thresholds gradually increase at the
        // beginning, as the system operates under the high threshold."
        let mut t = AdaptiveThresholds::new(&cfg());
        let (low0, high0) = (t.low(), t.high());
        fill_window(&mut t, 52 * GIB); // yellow: above low (50), below high (55)
        assert!(t.low() > low0);
        assert!(t.high() > high0);
    }

    #[test]
    fn figure_6_narrative_red_drops_low_but_high_keeps_rising() {
        // "usage repeatedly reaches the high threshold, causing the low
        // threshold to drop. However, the high threshold keeps increasing,
        // as the system still operates underneath the top of memory."
        let mut t = AdaptiveThresholds::new(&cfg());
        fill_window(&mut t, 52 * GIB);
        let (low1, high1) = (t.low(), t.high());
        // A workload that keeps growing: usage tracks just above the high
        // threshold (but stays under top) poll after poll.
        for _ in 0..32 {
            let used = (t.high() + GIB).min(t.top());
            t.observe(used);
        }
        assert!(t.low() < low1, "low must drop in sustained red");
        assert!(t.high() > high1, "high keeps rising while under top");
    }

    #[test]
    fn observe_reports_moves_with_old_and_new() {
        let mut t = AdaptiveThresholds::new(&cfg());
        for _ in 0..31 {
            assert_eq!(t.observe(58 * GIB), ThresholdUpdate::default());
        }
        // 32nd poll fills the window: low drops, high rises, both reported.
        let up = t.observe(58 * GIB);
        assert_eq!(up.low, Some((50 * GIB, 50 * GIB - t.step)));
        assert_eq!(up.high, Some((55 * GIB, 55 * GIB + t.step)));
        // A green-zone poll moves nothing and reports nothing.
        let red_gone: Vec<ThresholdUpdate> = (0..32).map(|_| t.observe(GIB)).collect();
        assert_eq!(*red_gone.last().unwrap(), ThresholdUpdate::default());
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn zero_width_window_fails_construction() {
        let mut c = cfg();
        c.window = 0;
        AdaptiveThresholds::new(&c);
    }

    #[test]
    #[should_panic(expected = "high must not exceed top")]
    fn top_below_initial_thresholds_fails_construction() {
        // A top of memory smaller than the initial low/high gap cannot hold
        // the initial thresholds; construction must fail cleanly instead of
        // producing an inverted ordering.
        let mut c = cfg();
        c.top = 40 * GIB; // below initial_high (55 GiB)
        AdaptiveThresholds::new(&c);
    }

    #[test]
    fn degenerate_zero_gap_config_stays_ordered() {
        // low == high == top is valid (zero-width yellow and red zones);
        // the ordering must survive sustained pressure from both sides.
        let mut c = cfg();
        c.initial_low = c.top;
        c.initial_high = c.top;
        let mut t = AdaptiveThresholds::new(&c);
        for used in [c.top + GIB, c.top - GIB, c.top + GIB] {
            for _ in 0..64 {
                t.observe(used);
                assert!(t.low() <= t.high());
                assert!(t.high() <= t.top());
            }
        }
    }

    #[test]
    fn degenerate_tiny_top_with_zero_step_stays_ordered() {
        // A top so small the 2% step truncates to zero bytes: adjustments
        // become no-ops but must never invert the ordering.
        let mut c = cfg();
        c.top = 40;
        c.initial_low = 10;
        c.initial_high = 20;
        let mut t = AdaptiveThresholds::new(&c);
        assert_eq!(t.step, 0);
        for used in [25u64, 45, 5, 45, 15] {
            for _ in 0..40 {
                t.observe(used);
                assert!(t.low() <= t.high());
                assert!(t.high() <= t.top());
            }
        }
    }

    #[test]
    fn window_slides() {
        let mut t = AdaptiveThresholds::new(&cfg());
        fill_window(&mut t, 58 * GIB);
        let low_after_pressure = t.low();
        // 32 quiet polls age the red records out; low stops moving down and
        // starts recovering once usage is yellow.
        fill_window(&mut t, 52 * GIB);
        assert!(t.low() >= low_after_pressure);
    }
}
