//! Expected-reclamation estimation (§5.1).
//!
//! Algorithm 1 needs, for every registered process, an estimate of how much
//! memory a high-threshold signal will recover: "the average reclamation of
//! this process over the last five signals". Before any history exists we
//! use an optimistic fraction of the process's RSS, so a fresh process is
//! still eligible for selection.

use m3_os::Pid;
use m3_sim::units::MIB;
use std::collections::{BTreeMap, VecDeque};

/// Number of past signal responses averaged (the paper uses five).
pub const HISTORY_LEN: usize = 5;

/// Fraction of RSS assumed reclaimable for a process with no history yet
/// (public so the conformance oracle can replay fresh-process estimates).
pub const DEFAULT_RSS_FRACTION: f64 = 0.10;

/// Floor on the default estimate, so tiny processes still get selected.
pub const DEFAULT_FLOOR: u64 = 64 * MIB;

/// Tracks per-process reclamation history.
#[derive(Debug, Clone, Default)]
pub struct ReclaimTracker {
    history: BTreeMap<Pid, VecDeque<u64>>,
}

impl ReclaimTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        ReclaimTracker::default()
    }

    /// Records the bytes a process reclaimed in response to a signal.
    pub fn record(&mut self, pid: Pid, bytes: u64) {
        let h = self.history.entry(pid).or_default();
        if h.len() == HISTORY_LEN {
            h.pop_front();
        }
        h.push_back(bytes);
    }

    /// The expected reclamation for `pid`: the mean of its last
    /// [`HISTORY_LEN`] responses, or a default based on `rss` when no
    /// history exists.
    pub fn expected(&self, pid: Pid, rss: u64) -> u64 {
        match self.history.get(&pid) {
            Some(h) if !h.is_empty() => (h.iter().sum::<u64>() as f64 / h.len() as f64) as u64,
            _ => ((rss as f64 * DEFAULT_RSS_FRACTION) as u64).max(DEFAULT_FLOOR),
        }
    }

    /// Number of recorded responses for `pid`.
    pub fn history_len(&self, pid: Pid) -> usize {
        self.history.get(&pid).map_or(0, VecDeque::len)
    }

    /// Discards history for an exited process.
    pub fn forget(&mut self, pid: Pid) {
        self.history.remove(&pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_sim::units::GIB;

    #[test]
    fn default_estimate_uses_rss_with_floor() {
        let t = ReclaimTracker::new();
        assert_eq!(t.expected(1, 10 * GIB), GIB, "10% of RSS");
        assert_eq!(t.expected(1, 0), DEFAULT_FLOOR, "floor for tiny processes");
    }

    #[test]
    fn average_of_history() {
        let mut t = ReclaimTracker::new();
        t.record(1, 100);
        t.record(1, 300);
        assert_eq!(t.expected(1, 0), 200);
    }

    #[test]
    fn history_is_bounded_to_last_five() {
        let mut t = ReclaimTracker::new();
        for v in [1000, 10, 10, 10, 10, 10] {
            t.record(1, v);
        }
        assert_eq!(t.history_len(1), HISTORY_LEN);
        assert_eq!(t.expected(1, 0), 10, "oldest (1000) must have aged out");
    }

    #[test]
    fn processes_are_independent() {
        let mut t = ReclaimTracker::new();
        t.record(1, 500);
        assert_eq!(t.expected(2, 10 * GIB), GIB, "pid 2 has no history");
        assert_eq!(t.expected(1, 10 * GIB), 500);
    }

    #[test]
    fn forget_resets_to_default() {
        let mut t = ReclaimTracker::new();
        t.record(1, 500);
        t.forget(1);
        assert_eq!(t.history_len(1), 0);
        assert_eq!(t.expected(1, 0), DEFAULT_FLOOR);
    }
}
