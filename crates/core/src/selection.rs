//! Algorithm 1: selective notification (§5.1).
//!
//! When the system is above the high threshold, only *selected* processes
//! are signalled, to minimise handling overhead. The processes are sorted by
//! a configurable order and signalled one by one until the sum of their
//! expected reclamation amounts covers the target (current usage minus the
//! high threshold). The same routine, with the same ordering, also selects
//! kill victims when the system stays above the top of memory.

use m3_os::Pid;
use m3_sim::clock::SimTime;
use m3_sim::trace::{CandidateInfo, Criticality};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// The configurable sort order of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SortOrder {
    /// Newest process first (favours batch jobs; the paper's default).
    NewestFirst,
    /// Oldest process first (favours interactive jobs).
    OldestFirst,
    /// Largest memory usage first.
    LargestRss,
    /// Largest expected reclamation first.
    LargestExpectedReclaim,
}

impl SortOrder {
    /// Stable name recorded in trace events.
    pub fn name(self) -> &'static str {
        match self {
            SortOrder::NewestFirst => "newest_first",
            SortOrder::OldestFirst => "oldest_first",
            SortOrder::LargestRss => "largest_rss",
            SortOrder::LargestExpectedReclaim => "largest_expected_reclaim",
        }
    }

    /// Parses a [`SortOrder::name`] string back (used by the trace oracle).
    pub fn from_name(s: &str) -> Option<SortOrder> {
        match s {
            "newest_first" => Some(SortOrder::NewestFirst),
            "oldest_first" => Some(SortOrder::OldestFirst),
            "largest_rss" => Some(SortOrder::LargestRss),
            "largest_expected_reclaim" => Some(SortOrder::LargestExpectedReclaim),
            _ => None,
        }
    }
}

/// A candidate process as Algorithm 1 sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The process id.
    pub pid: Pid,
    /// When the process was spawned.
    pub spawned_at: SimTime,
    /// Current resident set size, bytes.
    pub rss: u64,
    /// Expected reclamation on a high signal, bytes.
    pub expected_reclaim: u64,
    /// The process's criticality class (primary sort key).
    pub crit: Criticality,
}

impl Candidate {
    /// The candidate as recorded in [`m3_sim::trace`] selection events.
    pub fn info(&self) -> CandidateInfo {
        CandidateInfo {
            pid: self.pid,
            spawned_at_ms: self.spawned_at.as_millis(),
            rss: self.rss,
            expected_reclaim: self.expected_reclaim,
            crit: self.crit,
        }
    }

    /// Rebuilds a candidate from its trace record (used by the oracle to
    /// replay Algorithm 1).
    pub fn from_info(i: &CandidateInfo) -> Candidate {
        Candidate {
            pid: i.pid,
            spawned_at: SimTime::from_millis(i.spawned_at_ms),
            rss: i.rss,
            expected_reclaim: i.expected_reclaim,
            crit: i.crit,
        }
    }
}

/// The paper's posture-only comparison: the configured order, ties broken
/// by pid for determinism.
fn posture_cmp(a: &Candidate, b: &Candidate, order: SortOrder) -> Ordering {
    let by_posture = match order {
        SortOrder::NewestFirst => b.spawned_at.cmp(&a.spawned_at),
        SortOrder::OldestFirst => a.spawned_at.cmp(&b.spawned_at),
        SortOrder::LargestRss => b.rss.cmp(&a.rss),
        SortOrder::LargestExpectedReclaim => b.expected_reclaim.cmp(&a.expected_reclaim),
    };
    by_posture.then(a.pid.cmp(&b.pid))
}

/// Sorts candidates in signalling priority order (highest priority first).
///
/// Criticality is the primary key — more-expendable classes (batch before
/// standard before latency-critical) sort ahead — and the paper's configured
/// posture order breaks ties *within* a class. A fleet where every job is
/// `Standard` (the default) therefore sorts exactly as the paper's
/// Algorithm 1 did. Final ties break by pid so results are deterministic.
pub fn sort_candidates(candidates: &mut [Candidate], order: SortOrder) {
    candidates.sort_by(|a, b| {
        b.crit
            .expendability()
            .cmp(&a.crit.expendability())
            .then_with(|| posture_cmp(a, b, order))
    });
}

/// Criticality-blind variant of [`sort_candidates`]: the paper's original
/// posture-only ordering. Kept as an ablation knob — a policy sorted this
/// way under a mixed-criticality load is exactly what the oracle's
/// `kill.class.order` invariant must catch.
pub fn sort_candidates_blind(candidates: &mut [Candidate], order: SortOrder) {
    candidates.sort_by(|a, b| posture_cmp(a, b, order));
}

/// Algorithm 1: returns the pids to signal, in order, so that the sum of
/// their expected reclamation amounts reaches `target` (usage minus the high
/// threshold). Returns an empty vector when `target` is zero.
///
/// # Examples
///
/// ```
/// use m3_core::selection::{select_processes, Candidate, SortOrder};
/// use m3_sim::trace::Criticality;
/// use m3_sim::SimTime;
///
/// let candidates = vec![
///     Candidate { pid: 1, spawned_at: SimTime::from_secs(0), rss: 100, expected_reclaim: 40,
///                 crit: Criticality::Standard },
///     Candidate { pid: 2, spawned_at: SimTime::from_secs(9), rss: 100, expected_reclaim: 40,
///                 crit: Criticality::Standard },
/// ];
/// // Newest first: pid 2 alone covers a target of 30.
/// assert_eq!(select_processes(&candidates, SortOrder::NewestFirst, 30), vec![2]);
/// // A target of 50 needs both.
/// assert_eq!(select_processes(&candidates, SortOrder::NewestFirst, 50), vec![2, 1]);
/// ```
pub fn select_processes(candidates: &[Candidate], order: SortOrder, target: u64) -> Vec<Pid> {
    if target == 0 {
        return Vec::new();
    }
    let mut sorted = candidates.to_vec();
    sort_candidates(&mut sorted, order);
    take_until_target(&sorted, target)
}

/// [`select_processes`] with the criticality-blind posture-only ordering
/// (the `crit_blind` ablation).
pub fn select_processes_blind(candidates: &[Candidate], order: SortOrder, target: u64) -> Vec<Pid> {
    if target == 0 {
        return Vec::new();
    }
    let mut sorted = candidates.to_vec();
    sort_candidates_blind(&mut sorted, order);
    take_until_target(&sorted, target)
}

fn take_until_target(sorted: &[Candidate], target: u64) -> Vec<Pid> {
    let mut selected = Vec::new();
    let mut expected: u64 = 0;
    for c in sorted {
        if expected >= target {
            break;
        }
        selected.push(c.pid);
        expected += c.expected_reclaim;
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(pid: Pid, spawn_s: u64, rss: u64, expect: u64) -> Candidate {
        Candidate {
            pid,
            spawned_at: SimTime::from_secs(spawn_s),
            rss,
            expected_reclaim: expect,
            crit: Criticality::Standard,
        }
    }

    fn classed(pid: Pid, spawn_s: u64, crit: Criticality) -> Candidate {
        Candidate {
            crit,
            ..cand(pid, spawn_s, 100, 30)
        }
    }

    #[test]
    fn zero_target_selects_nobody() {
        let cs = vec![cand(1, 0, 100, 50)];
        assert!(select_processes(&cs, SortOrder::NewestFirst, 0).is_empty());
    }

    #[test]
    fn selection_stops_once_target_covered() {
        let cs = vec![cand(1, 0, 0, 30), cand(2, 1, 0, 30), cand(3, 2, 0, 30)];
        // Newest first: 3, then 2; 60 >= 50, so 1 is spared.
        assert_eq!(
            select_processes(&cs, SortOrder::NewestFirst, 50),
            vec![3, 2]
        );
    }

    #[test]
    fn all_selected_when_target_exceeds_total() {
        let cs = vec![cand(1, 0, 0, 10), cand(2, 1, 0, 10)];
        assert_eq!(
            select_processes(&cs, SortOrder::NewestFirst, 1000),
            vec![2, 1]
        );
    }

    #[test]
    fn oldest_first_reverses_priority() {
        let cs = vec![cand(1, 0, 0, 30), cand(2, 5, 0, 30)];
        assert_eq!(select_processes(&cs, SortOrder::OldestFirst, 10), vec![1]);
    }

    #[test]
    fn largest_rss_order() {
        let cs = vec![
            cand(1, 0, 500, 10),
            cand(2, 9, 100, 10),
            cand(3, 5, 900, 10),
        ];
        assert_eq!(
            select_processes(&cs, SortOrder::LargestRss, 25),
            vec![3, 1, 2]
        );
    }

    #[test]
    fn largest_expected_reclaim_order() {
        let cs = vec![cand(1, 0, 0, 10), cand(2, 0, 0, 90), cand(3, 0, 0, 40)];
        assert_eq!(
            select_processes(&cs, SortOrder::LargestExpectedReclaim, 100),
            vec![2, 3]
        );
    }

    #[test]
    fn ties_break_by_pid_for_determinism() {
        let cs = vec![cand(7, 3, 50, 20), cand(4, 3, 50, 20), cand(9, 3, 50, 20)];
        assert_eq!(
            select_processes(&cs, SortOrder::NewestFirst, 1000),
            vec![4, 7, 9]
        );
    }

    #[test]
    fn empty_candidates_is_fine() {
        assert!(select_processes(&[], SortOrder::LargestRss, 100).is_empty());
    }

    #[test]
    fn criticality_dominates_the_posture_order() {
        // Newest-first would pick the latency-critical pid 3 (spawned last);
        // criticality must redirect pressure onto batch, then standard.
        let cs = vec![
            classed(1, 0, Criticality::Batch),
            classed(2, 5, Criticality::Standard),
            classed(3, 9, Criticality::LatencyCritical),
        ];
        assert_eq!(
            select_processes(&cs, SortOrder::NewestFirst, 1000),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn posture_breaks_ties_within_a_class() {
        let cs = vec![
            classed(1, 0, Criticality::Batch),
            classed(2, 9, Criticality::Batch),
            classed(3, 5, Criticality::LatencyCritical),
        ];
        // Within Batch, newest-first puts pid 2 ahead of pid 1.
        assert_eq!(
            select_processes(&cs, SortOrder::NewestFirst, 1000),
            vec![2, 1, 3]
        );
    }

    #[test]
    fn blind_sort_ignores_criticality() {
        let mut cs = vec![
            classed(1, 0, Criticality::Batch),
            classed(2, 9, Criticality::LatencyCritical),
        ];
        sort_candidates_blind(&mut cs, SortOrder::NewestFirst);
        assert_eq!(cs[0].pid, 2, "posture-only order picks the newest");
    }

    #[test]
    fn candidate_info_round_trips_criticality() {
        let c = classed(7, 3, Criticality::Batch);
        assert_eq!(Candidate::from_info(&c.info()), c);
    }
}
