//! Process registration (§6: "Processes register by creating PID files in
//! a known directory").
//!
//! The monitor does not discover processes; participating applications
//! opt in by dropping a PID file, and remove it on clean shutdown. Crashed
//! processes leave stale files behind, so the registry sweeps entries whose
//! pid no longer maps to a living process — exactly the failure mode a
//! real PID-file directory has.

use m3_os::{Kernel, Pid};
use m3_sim::trace::Criticality;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One registration entry (the "PID file").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PidFile {
    /// The registering process.
    pub pid: Pid,
    /// The application name written into the file (for operator tooling).
    pub app_name: String,
    /// The incarnation of the process that wrote the file. Pids are reused;
    /// a file whose incarnation no longer matches the live process names a
    /// *different* (dead) process and is stale, even though the pid is
    /// alive. (Real PID files approximate this with the process start time
    /// from `/proc/<pid>/stat`.)
    pub incarnation: u64,
    /// The criticality class the participant declared in its PID file
    /// (`Standard` when it declared nothing).
    pub crit: Criticality,
}

/// The known registration directory.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    entries: BTreeMap<Pid, PidFile>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers a process (creates its PID file), capturing the live
    /// process's incarnation so a later pid-reuser cannot be mistaken for
    /// it. Re-registration overwrites the previous file, as writing the
    /// same path would.
    pub fn register(&mut self, os: &Kernel, pid: Pid, app_name: impl Into<String>) {
        self.register_with_class(os, pid, app_name, Criticality::Standard);
    }

    /// Like [`Registry::register`], with an explicit criticality class
    /// written into the PID file. The monitor reads the class on its next
    /// directory sync and uses it as the primary key of Algorithm 1.
    pub fn register_with_class(
        &mut self,
        os: &Kernel,
        pid: Pid,
        app_name: impl Into<String>,
        crit: Criticality,
    ) {
        let incarnation = os.process(pid).map_or(0, |p| p.incarnation);
        self.entries.insert(
            pid,
            PidFile {
                pid,
                app_name: app_name.into(),
                incarnation,
                crit,
            },
        );
    }

    /// Deregisters a process (removes its PID file). Missing files are
    /// ignored, like `unlink` on a cleaned-up path.
    pub fn deregister(&mut self, pid: Pid) {
        self.entries.remove(&pid);
    }

    /// True if a PID file exists for `pid`.
    pub fn contains(&self, pid: Pid) -> bool {
        self.entries.contains_key(&pid)
    }

    /// All registered pids, in pid order.
    pub fn pids(&self) -> Vec<Pid> {
        self.entries.keys().copied().collect()
    }

    /// The entry for `pid`, if registered.
    pub fn entry(&self, pid: Pid) -> Option<&PidFile> {
        self.entries.get(&pid)
    }

    /// Number of PID files present.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no process is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sweeps stale files: entries whose process is no longer alive
    /// (crashed before deregistering), *or* whose pid is now occupied by a
    /// different incarnation — a fresh process that reused the number must
    /// not inherit the dead one's registration. Returns the removed pids.
    pub fn sweep_stale(&mut self, os: &Kernel) -> Vec<Pid> {
        let stale: Vec<Pid> = self
            .entries
            .iter()
            .filter(|(&p, file)| {
                !os.process(p)
                    .is_some_and(|pr| pr.is_alive() && pr.incarnation == file.incarnation)
            })
            .map(|(&p, _)| p)
            .collect();
        for p in &stale {
            self.entries.remove(p);
        }
        stale
    }

    /// Synchronises a [`crate::Monitor`] with the registry: registers every
    /// live entry, unregisters everything stale. The world loop calls this
    /// each poll period, mirroring the monitor re-reading the directory.
    pub fn sync_monitor(&mut self, monitor: &mut crate::Monitor, os: &Kernel) {
        for pid in self.sweep_stale(os) {
            monitor.unregister(pid);
        }
        for (&pid, file) in &self.entries {
            if !monitor.is_registered(pid) {
                monitor.register_with_class(pid, file.crit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Monitor, MonitorConfig};
    use m3_os::KernelConfig;
    use m3_sim::units::GIB;

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig::with_total(4 * GIB))
    }

    #[test]
    fn register_deregister_round_trip() {
        let mut os = kernel();
        let pid = os.spawn("app");
        let mut reg = Registry::new();
        assert!(reg.is_empty());
        reg.register(&os, pid, "spark-executor");
        assert!(reg.contains(pid));
        assert_eq!(reg.entry(pid).unwrap().app_name, "spark-executor");
        assert_eq!(reg.pids(), vec![pid]);
        reg.deregister(pid);
        assert!(!reg.contains(pid));
        reg.deregister(pid); // idempotent, like unlink on a missing path
    }

    #[test]
    fn reregistration_overwrites() {
        let mut os = kernel();
        let pid = os.spawn("app");
        let mut reg = Registry::new();
        reg.register(&os, pid, "old");
        reg.register(&os, pid, "new");
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.entry(pid).unwrap().app_name, "new");
    }

    #[test]
    fn stale_files_are_swept() {
        let mut os = kernel();
        let live = os.spawn("live");
        let dead = os.spawn("dead");
        let mut reg = Registry::new();
        reg.register(&os, live, "a");
        reg.register(&os, dead, "b");
        os.kill(dead);
        assert_eq!(reg.sweep_stale(&os), vec![dead]);
        assert_eq!(reg.pids(), vec![live]);
    }

    #[test]
    fn pid_reuse_does_not_inherit_the_stale_registration() {
        let mut os = kernel();
        let victim = os.spawn("participant");
        let mut reg = Registry::new();
        reg.register(&os, victim, "participant");
        // The participant crashes, and — before any sweep runs — an
        // unrelated process spawns under the same pid.
        os.kill(victim);
        let bystander = os.spawn_reusing(victim, "bystander");
        assert_eq!(bystander, victim);
        assert!(os.is_alive(bystander), "the pid is alive again...");
        let swept = reg.sweep_stale(&os);
        assert_eq!(
            swept,
            vec![victim],
            "...but the file names a dead incarnation and must be swept"
        );
        assert!(!reg.contains(bystander));
    }

    #[test]
    fn pid_reuse_never_reaches_the_monitor() {
        let mut os = kernel();
        let mut reg = Registry::new();
        let mut mon = Monitor::new(MonitorConfig::scaled(4 * GIB));
        let victim = os.spawn("participant");
        reg.register(&os, victim, "participant");
        reg.sync_monitor(&mut mon, &os);
        assert!(mon.is_registered(victim));
        // Crash + pid reuse between two syncs: the bystander must not be
        // registered (it never dropped a PID file of its own).
        os.kill(victim);
        os.spawn_reusing(victim, "bystander");
        reg.sync_monitor(&mut mon, &os);
        assert!(
            !mon.is_registered(victim),
            "the reused pid must not inherit M3 participation"
        );
        assert!(!reg.contains(victim));
    }

    #[test]
    fn reregistration_by_the_reuser_is_fresh() {
        let mut os = kernel();
        let mut reg = Registry::new();
        let victim = os.spawn("old");
        reg.register(&os, victim, "old");
        os.kill(victim);
        let pid = os.spawn_reusing(victim, "new");
        // The new process opts in itself: the overwritten file now carries
        // the live incarnation and survives the sweep.
        reg.register(&os, pid, "new");
        assert!(reg.sweep_stale(&os).is_empty());
        assert_eq!(reg.entry(pid).unwrap().app_name, "new");
    }

    #[test]
    fn pid_file_class_reaches_the_monitor() {
        let mut os = kernel();
        let batch = os.spawn("batch");
        let plain = os.spawn("plain");
        let mut reg = Registry::new();
        let mut mon = Monitor::new(MonitorConfig::scaled(4 * GIB));
        reg.register_with_class(&os, batch, "batch", Criticality::Batch);
        reg.register(&os, plain, "plain");
        assert_eq!(reg.entry(batch).unwrap().crit, Criticality::Batch);
        assert_eq!(reg.entry(plain).unwrap().crit, Criticality::Standard);
        reg.sync_monitor(&mut mon, &os);
        assert_eq!(mon.criticality_of(batch), Criticality::Batch);
        assert_eq!(mon.criticality_of(plain), Criticality::Standard);
    }

    #[test]
    fn sync_monitor_tracks_the_directory() {
        let mut os = kernel();
        let a = os.spawn("a");
        let b = os.spawn("b");
        let mut reg = Registry::new();
        let mut mon = Monitor::new(MonitorConfig::scaled(4 * GIB));
        reg.register(&os, a, "a");
        reg.register(&os, b, "b");
        reg.sync_monitor(&mut mon, &os);
        assert!(mon.is_registered(a) && mon.is_registered(b));
        // b crashes without deregistering.
        os.exit(b);
        reg.sync_monitor(&mut mon, &os);
        assert!(mon.is_registered(a));
        assert!(!mon.is_registered(b));
        assert!(!reg.contains(b));
    }
}
