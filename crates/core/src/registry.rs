//! Process registration (§6: "Processes register by creating PID files in
//! a known directory").
//!
//! The monitor does not discover processes; participating applications
//! opt in by dropping a PID file, and remove it on clean shutdown. Crashed
//! processes leave stale files behind, so the registry sweeps entries whose
//! pid no longer maps to a living process — exactly the failure mode a
//! real PID-file directory has.

use m3_os::{Kernel, Pid};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One registration entry (the "PID file").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PidFile {
    /// The registering process.
    pub pid: Pid,
    /// The application name written into the file (for operator tooling).
    pub app_name: String,
}

/// The known registration directory.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    entries: BTreeMap<Pid, PidFile>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers a process (creates its PID file). Re-registration
    /// overwrites the previous file, as writing the same path would.
    pub fn register(&mut self, pid: Pid, app_name: impl Into<String>) {
        self.entries.insert(
            pid,
            PidFile {
                pid,
                app_name: app_name.into(),
            },
        );
    }

    /// Deregisters a process (removes its PID file). Missing files are
    /// ignored, like `unlink` on a cleaned-up path.
    pub fn deregister(&mut self, pid: Pid) {
        self.entries.remove(&pid);
    }

    /// True if a PID file exists for `pid`.
    pub fn contains(&self, pid: Pid) -> bool {
        self.entries.contains_key(&pid)
    }

    /// All registered pids, in pid order.
    pub fn pids(&self) -> Vec<Pid> {
        self.entries.keys().copied().collect()
    }

    /// The entry for `pid`, if registered.
    pub fn entry(&self, pid: Pid) -> Option<&PidFile> {
        self.entries.get(&pid)
    }

    /// Number of PID files present.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no process is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sweeps stale files: entries whose process is no longer alive
    /// (crashed before deregistering). Returns the removed pids.
    pub fn sweep_stale(&mut self, os: &Kernel) -> Vec<Pid> {
        let stale: Vec<Pid> = self
            .entries
            .keys()
            .copied()
            .filter(|&p| !os.is_alive(p))
            .collect();
        for p in &stale {
            self.entries.remove(p);
        }
        stale
    }

    /// Synchronises a [`crate::Monitor`] with the registry: registers every
    /// live entry, unregisters everything stale. The world loop calls this
    /// each poll period, mirroring the monitor re-reading the directory.
    pub fn sync_monitor(&mut self, monitor: &mut crate::Monitor, os: &Kernel) {
        for pid in self.sweep_stale(os) {
            monitor.unregister(pid);
        }
        for &pid in self.entries.keys() {
            if !monitor.is_registered(pid) {
                monitor.register(pid);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Monitor, MonitorConfig};
    use m3_os::KernelConfig;
    use m3_sim::units::GIB;

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig::with_total(4 * GIB))
    }

    #[test]
    fn register_deregister_round_trip() {
        let mut os = kernel();
        let pid = os.spawn("app");
        let mut reg = Registry::new();
        assert!(reg.is_empty());
        reg.register(pid, "spark-executor");
        assert!(reg.contains(pid));
        assert_eq!(reg.entry(pid).unwrap().app_name, "spark-executor");
        assert_eq!(reg.pids(), vec![pid]);
        reg.deregister(pid);
        assert!(!reg.contains(pid));
        reg.deregister(pid); // idempotent, like unlink on a missing path
    }

    #[test]
    fn reregistration_overwrites() {
        let mut os = kernel();
        let pid = os.spawn("app");
        let mut reg = Registry::new();
        reg.register(pid, "old");
        reg.register(pid, "new");
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.entry(pid).unwrap().app_name, "new");
    }

    #[test]
    fn stale_files_are_swept() {
        let mut os = kernel();
        let live = os.spawn("live");
        let dead = os.spawn("dead");
        let mut reg = Registry::new();
        reg.register(live, "a");
        reg.register(dead, "b");
        os.kill(dead);
        assert_eq!(reg.sweep_stale(&os), vec![dead]);
        assert_eq!(reg.pids(), vec![live]);
    }

    #[test]
    fn sync_monitor_tracks_the_directory() {
        let mut os = kernel();
        let a = os.spawn("a");
        let b = os.spawn("b");
        let mut reg = Registry::new();
        let mut mon = Monitor::new(MonitorConfig::scaled(4 * GIB));
        reg.register(a, "a");
        reg.register(b, "b");
        reg.sync_monitor(&mut mon, &os);
        assert!(mon.is_registered(a) && mon.is_registered(b));
        // b crashes without deregistering.
        os.exit(b);
        reg.sync_monitor(&mut mon, &os);
        assert!(mon.is_registered(a));
        assert!(!mon.is_registered(b));
        assert!(!reg.contains(b));
    }
}
