//! The vocabulary shared between the monitor and participating applications.
//!
//! M3 keeps the kernel/monitor side deliberately ignorant of application
//! internals (the end-to-end principle): all it knows is that a registered
//! process can be sent a low or high threshold signal and will eventually
//! reclaim some memory. Applications implement [`M3Participant`]; the
//! layering *inside* an application (e.g. Spark evicting blocks before
//! calling down into the JVM) is each application's own policy, encoded in
//! its `handle_signal` implementation.

use m3_os::{Kernel, Pid};
use m3_sim::clock::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The two memory-pressure notifications of M3 (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThresholdSignal {
    /// Early warning: prioritize reclamation *speed* over quantity.
    Low,
    /// Severe pressure: prioritize reclamation *quantity*, and run the
    /// adaptive allocation protocol afterwards.
    High,
}

impl ThresholdSignal {
    /// The OS signal used to deliver this notification.
    pub fn as_os_signal(self) -> m3_os::Signal {
        match self {
            ThresholdSignal::Low => m3_os::Signal::LowMemory,
            ThresholdSignal::High => m3_os::Signal::HighMemory,
        }
    }

    /// Converts an OS signal back, if it is one of the two thresholds.
    pub fn from_os_signal(sig: m3_os::Signal) -> Option<Self> {
        match sig {
            m3_os::Signal::LowMemory => Some(ThresholdSignal::Low),
            m3_os::Signal::HighMemory => Some(ThresholdSignal::High),
            m3_os::Signal::Kill => None,
        }
    }
}

/// What a signal handler accomplished, reported back so the monitor can
/// track expected reclamation and the allocator can size its epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SignalOutcome {
    /// Wall time the handler spent (the *epoch length* of §4.2: from signal
    /// receipt to memory returned).
    pub duration: SimDuration,
    /// Bytes returned to the OS by the whole stack, top layer first.
    pub returned_to_os: u64,
}

impl SignalOutcome {
    /// Merges a nested layer's outcome into this one (durations add, bytes
    /// add).
    pub fn merge(&mut self, other: SignalOutcome) {
        self.duration += other.duration;
        self.returned_to_os += other.returned_to_os;
    }
}

/// An application stack participating in M3.
///
/// Implementations encode the paper's Table 1 policies: which reclamation
/// mechanism each signal maps to, and in which order the stack's layers
/// reclaim (upper layers first, each notifying the layer below when done).
pub trait M3Participant {
    /// The OS process this stack runs in.
    fn pid(&self) -> Pid;

    /// Handles a threshold signal, reclaiming memory according to the
    /// stack's policy. Returns what was accomplished.
    fn handle_signal(
        &mut self,
        sig: ThresholdSignal,
        os: &mut Kernel,
        now: SimTime,
    ) -> SignalOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_mapping_round_trips() {
        for sig in [ThresholdSignal::Low, ThresholdSignal::High] {
            assert_eq!(
                ThresholdSignal::from_os_signal(sig.as_os_signal()),
                Some(sig)
            );
        }
        assert_eq!(ThresholdSignal::from_os_signal(m3_os::Signal::Kill), None);
    }

    #[test]
    fn outcomes_merge() {
        let mut a = SignalOutcome {
            duration: SimDuration::from_millis(100),
            returned_to_os: 10,
        };
        a.merge(SignalOutcome {
            duration: SimDuration::from_millis(50),
            returned_to_os: 5,
        });
        assert_eq!(a.duration.as_millis(), 150);
        assert_eq!(a.returned_to_os, 15);
    }
}
