//! The adaptive allocation protocol (§4.2).
//!
//! After a high-threshold signal, the *top-most* memory-managing layer of
//! each application (Spark, Go-Cache, Memcached — the place allocations
//! originate and the layer with the best domain knowledge) throttles its own
//! growth:
//!
//! ```text
//! allow_rate = min(time_since_last_high_signal / (epoch_len × NUM_epochs), 100 %)
//! ```
//!
//! where the *epoch length* is the time the application spent handling the
//! last high signal (from receipt until memory was returned). Only every
//! ⌊1/allow_rate⌋-th allocation proceeds as normal; a delayed allocation
//! first evicts enough of the application's own data to satisfy itself, so
//! it never fails — it merely takes longer. This rewards fast reclaimers
//! (small epoch → rate recovers quickly) and lets the application with the
//! higher demand grow more (more `alloc()` calls → more allowed calls).

use m3_sim::clock::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How the allow rate recovers after a high signal.
///
/// The paper evaluated alternatives and kept the linear ramp: "We
/// experimented with other strategies, such as exponential growth instead
/// of linear, and found that this protocol is the most effective"
/// (§4.2, footnote 4). The alternatives are retained for the ablation
/// harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RateCurve {
    /// `r = t / T` — the paper's protocol.
    #[default]
    Linear,
    /// `r = 2^(t/T) − 1` (slow start, fast finish).
    Exponential,
    /// `r = 0` until `T`, then `1` (all-or-nothing backoff).
    Step,
}

impl RateCurve {
    /// Stable name used in trace events.
    pub fn name(self) -> &'static str {
        match self {
            RateCurve::Linear => "linear",
            RateCurve::Exponential => "exponential",
            RateCurve::Step => "step",
        }
    }

    /// Maps normalized elapsed time `x = t / T` (clamped to `[0, 1]`) to an
    /// allow rate in `[0, 1]`.
    pub fn rate(self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        match self {
            RateCurve::Linear => x,
            RateCurve::Exponential => (2f64.powf(x) - 1.0).clamp(0.0, 1.0),
            RateCurve::Step => {
                if x >= 1.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// A point-in-time view of the allocation gate, used by trace emission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateSnapshot {
    /// The allow rate at snapshot time.
    pub rate: f64,
    /// Milliseconds since the last high signal (zero if none).
    pub elapsed_ms: u64,
    /// The current epoch length in milliseconds.
    pub epoch_ms: u64,
    /// `NUM_epochs`.
    pub num_epochs: u32,
    /// The recovery curve's stable name.
    pub curve: &'static str,
}

/// Protocol state for one application's top-most layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveAllocator {
    /// `NUM_epochs`: how many epoch lengths until the rate returns to 100 %
    /// (the paper uses 1 for Spark, 5 for the caches).
    num_epochs: u32,
    /// When the last high signal was received (`None` once fully recovered
    /// or before any signal).
    last_signal: Option<SimTime>,
    /// Duration of handling the last high signal.
    epoch_len: SimDuration,
    /// Signal-receipt time of an epoch currently being measured.
    epoch_started: Option<SimTime>,
    /// The recovery curve (the paper's protocol is linear).
    curve: RateCurve,
    /// Rolling allocation counter implementing the ⌊1/r⌋ gate.
    counter: u64,
    /// Fractional carry for batched gating, in allocations.
    batch_carry: f64,
}

impl AdaptiveAllocator {
    /// Creates protocol state with the given `NUM_epochs`.
    ///
    /// # Panics
    ///
    /// Panics if `num_epochs` is zero.
    pub fn new(num_epochs: u32) -> Self {
        assert!(num_epochs > 0, "NUM_epochs must be positive");
        AdaptiveAllocator {
            num_epochs,
            last_signal: None,
            epoch_len: SimDuration::from_secs(1),
            epoch_started: None,
            curve: RateCurve::Linear,
            counter: 0,
            batch_carry: 0.0,
        }
    }

    /// Creates protocol state with an alternative recovery curve (footnote
    /// 4 ablations).
    ///
    /// # Panics
    ///
    /// Panics if `num_epochs` is zero.
    pub fn with_curve(num_epochs: u32, curve: RateCurve) -> Self {
        AdaptiveAllocator {
            curve,
            ..AdaptiveAllocator::new(num_epochs)
        }
    }

    /// The configured recovery curve.
    pub fn curve(&self) -> RateCurve {
        self.curve
    }

    /// `NUM_epochs`.
    pub fn num_epochs(&self) -> u32 {
        self.num_epochs
    }

    /// The current epoch length (time spent handling the last high signal).
    pub fn epoch_len(&self) -> SimDuration {
        self.epoch_len
    }

    /// Records receipt of a high-threshold signal: the allow rate resets to
    /// (nearly) zero and a new epoch measurement begins.
    pub fn on_high_signal(&mut self, now: SimTime) {
        self.last_signal = Some(now);
        self.epoch_started = Some(now);
    }

    /// Records that the reclamation for the in-flight signal finished,
    /// fixing the epoch length.
    pub fn on_reclaim_done(&mut self, now: SimTime) {
        if let Some(t0) = self.epoch_started.take() {
            // An epoch is never zero-length: even an instantaneous handler
            // occupies one scheduling quantum.
            self.epoch_len = now.saturating_since(t0).max(SimDuration::from_millis(1));
        }
    }

    /// The allow rate in `[0, 1]` at time `now`.
    pub fn allow_rate(&self, now: SimTime) -> f64 {
        let Some(t0) = self.last_signal else {
            return 1.0;
        };
        let elapsed = now.saturating_since(t0).as_millis() as f64;
        let denom = (self.epoch_len.as_millis() * self.num_epochs as u64).max(1) as f64;
        self.curve.rate(elapsed / denom)
    }

    /// True once the throttle has fully released (rate back to 100 %).
    pub fn fully_recovered(&self, now: SimTime) -> bool {
        self.allow_rate(now) >= 1.0
    }

    /// Everything a trace event needs to replay the gating decision made at
    /// `now`: the computed rate and the formula's inputs (§4.2).
    pub fn gate_snapshot(&self, now: SimTime) -> GateSnapshot {
        GateSnapshot {
            rate: self.allow_rate(now),
            elapsed_ms: self
                .last_signal
                .map_or(0, |t0| now.saturating_since(t0).as_millis()),
            epoch_ms: self.epoch_len.as_millis(),
            num_epochs: self.num_epochs,
            curve: self.curve.name(),
        }
    }

    /// Per-allocation gate: returns `true` if this `alloc()` call must be
    /// *delayed* (evict first), `false` if it proceeds as normal.
    ///
    /// With rate `r`, every ⌊1/r⌋-th call proceeds; at `r = 0` everything is
    /// delayed; at `r = 1` nothing is.
    pub fn should_delay(&mut self, now: SimTime) -> bool {
        let r = self.allow_rate(now);
        if r >= 1.0 {
            return false;
        }
        self.counter += 1;
        if r <= 0.0 {
            return true;
        }
        let stride = (1.0 / r).floor().max(1.0) as u64;
        !self.counter.is_multiple_of(stride)
    }

    /// Batched gate for drivers that simulate many allocations per tick:
    /// of `n` allocation attempts at time `now`, returns how many are
    /// *delayed*. Fractional remainders carry across calls so long-run
    /// proportions are exact.
    pub fn delayed_of(&mut self, n: u64, now: SimTime) -> u64 {
        let r = self.allow_rate(now);
        if r >= 1.0 || n == 0 {
            return 0;
        }
        let exact = n as f64 * (1.0 - r) + self.batch_carry;
        let delayed = (exact.floor() as u64).min(n);
        self.batch_carry = exact - delayed as f64;
        delayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn rate_is_full_without_signal() {
        let a = AdaptiveAllocator::new(1);
        assert_eq!(a.allow_rate(t(0)), 1.0);
        assert!(a.fully_recovered(t(0)));
    }

    #[test]
    fn rate_resets_to_zero_on_signal_then_grows_linearly() {
        let mut a = AdaptiveAllocator::new(1);
        a.on_high_signal(t(1000));
        a.on_reclaim_done(t(3000)); // epoch = 2 s
        assert_eq!(a.allow_rate(t(1000)), 0.0);
        assert!((a.allow_rate(t(2000)) - 0.5).abs() < 1e-9);
        assert!((a.allow_rate(t(3000)) - 1.0).abs() < 1e-9);
        assert_eq!(a.allow_rate(t(9000)), 1.0);
    }

    #[test]
    fn num_epochs_stretches_recovery() {
        let mut a = AdaptiveAllocator::new(5);
        a.on_high_signal(t(0));
        a.on_reclaim_done(t(1000)); // epoch = 1 s, recovery = 5 s
        assert!((a.allow_rate(t(1000)) - 0.2).abs() < 1e-9);
        assert!(!a.fully_recovered(t(4000)));
        assert!(a.fully_recovered(t(5000)));
    }

    #[test]
    fn new_signal_resets_rate() {
        let mut a = AdaptiveAllocator::new(1);
        a.on_high_signal(t(0));
        a.on_reclaim_done(t(1000));
        assert!(a.fully_recovered(t(1000)));
        a.on_high_signal(t(5000));
        assert_eq!(a.allow_rate(t(5000)), 0.0);
    }

    #[test]
    fn fast_reclaimers_recover_faster() {
        // §4.2: "the faster an application can reclaim memory, the faster it
        // is allowed to grow."
        let mut fast = AdaptiveAllocator::new(1);
        let mut slow = AdaptiveAllocator::new(1);
        fast.on_high_signal(t(0));
        fast.on_reclaim_done(t(100)); // 100 ms epoch
        slow.on_high_signal(t(0));
        slow.on_reclaim_done(t(4000)); // 4 s epoch
        assert!(fast.allow_rate(t(500)) > slow.allow_rate(t(500)));
        assert!(fast.fully_recovered(t(500)));
        assert!(!slow.fully_recovered(t(500)));
    }

    #[test]
    fn gate_passes_one_in_stride() {
        let mut a = AdaptiveAllocator::new(1);
        a.on_high_signal(t(0));
        a.on_reclaim_done(t(10_000)); // epoch = 10 s
                                      // At t = 1 s the rate is 10 %; every 10th alloc proceeds.
        let now = t(1000);
        let allowed = (0..100).filter(|_| !a.should_delay(now)).count();
        assert_eq!(allowed, 10);
    }

    #[test]
    fn gate_blocks_everything_at_zero_rate() {
        let mut a = AdaptiveAllocator::new(1);
        a.on_high_signal(t(500));
        assert!((0..50).all(|_| a.should_delay(t(500))));
    }

    #[test]
    fn gate_open_at_full_rate() {
        let mut a = AdaptiveAllocator::new(1);
        assert!((0..50).all(|_| !a.should_delay(t(0))));
    }

    #[test]
    fn batched_gate_matches_rate() {
        let mut a = AdaptiveAllocator::new(1);
        a.on_high_signal(t(0));
        a.on_reclaim_done(t(10_000));
        // Rate 25% at t = 2.5 s: of 1000 allocs, 750 delayed.
        assert_eq!(a.delayed_of(1000, t(2500)), 750);
        // Carry keeps proportions exact across odd batch sizes.
        let mut total = 0;
        for _ in 0..100 {
            total += a.delayed_of(7, t(2500));
        }
        assert!((total as i64 - 525).abs() <= 1, "got {total}");
    }

    #[test]
    fn batched_gate_idle_when_recovered() {
        let mut a = AdaptiveAllocator::new(1);
        assert_eq!(a.delayed_of(1000, t(0)), 0);
        assert_eq!(a.delayed_of(0, t(0)), 0);
    }

    #[test]
    fn epoch_has_floor() {
        let mut a = AdaptiveAllocator::new(1);
        a.on_high_signal(t(100));
        a.on_reclaim_done(t(100)); // instantaneous handler
        assert!(a.epoch_len() >= SimDuration::from_millis(1));
        // And the rate still recovers.
        assert!(a.fully_recovered(t(101)));
    }

    #[test]
    #[should_panic(expected = "NUM_epochs must be positive")]
    fn zero_epochs_rejected() {
        AdaptiveAllocator::new(0);
    }

    #[test]
    fn curve_shapes() {
        assert_eq!(RateCurve::Linear.rate(0.5), 0.5);
        assert!(RateCurve::Exponential.rate(0.5) < 0.5, "slow start");
        assert_eq!(RateCurve::Exponential.rate(1.0), 1.0);
        assert_eq!(RateCurve::Step.rate(0.99), 0.0);
        assert_eq!(RateCurve::Step.rate(1.0), 1.0);
        for c in [RateCurve::Linear, RateCurve::Exponential, RateCurve::Step] {
            assert_eq!(c.rate(-1.0), 0.0);
            assert_eq!(c.rate(2.0), 1.0);
        }
    }

    #[test]
    fn alternative_curves_throttle_harder_early() {
        let mut lin = AdaptiveAllocator::new(1);
        let mut exp = AdaptiveAllocator::with_curve(1, RateCurve::Exponential);
        let mut step = AdaptiveAllocator::with_curve(1, RateCurve::Step);
        for a in [&mut lin, &mut exp, &mut step] {
            a.on_high_signal(t(0));
            a.on_reclaim_done(t(10_000));
        }
        let probe = t(3000); // 30% through recovery
        assert!(exp.allow_rate(probe) < lin.allow_rate(probe));
        assert_eq!(step.allow_rate(probe), 0.0);
        assert_eq!(step.curve(), RateCurve::Step);
    }
}
