//! Swap-pressure cost model.
//!
//! When committed memory exceeds physical memory, the overflow lives on the
//! swap device and every running process pays a progress penalty: the paper's
//! baselines hit exactly this when a static configuration lets combined peaks
//! exceed RAM ("It could further trigger expensive OS swapping", §2.2). We
//! model the penalty as a multiplicative slow-down on useful work, a standard
//! thrashing curve: mild overflow costs little (inactive pages go out first),
//! deep overflow collapses throughput.

use serde::{Deserialize, Serialize};

/// Parameters of the thrashing model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SwapModel {
    /// Swap device capacity in bytes.
    pub capacity: u64,
    /// Penalty steepness: work-speed multiplier is
    /// `1 / (1 + steepness × overflow_fraction²)` where `overflow_fraction`
    /// is swapped bytes over physical total.
    pub steepness: f64,
}

impl SwapModel {
    /// A model matching a 7,200 RPM disk swap device: thrashing is severe.
    pub fn hdd(capacity: u64) -> Self {
        SwapModel {
            capacity,
            steepness: 400.0,
        }
    }

    /// Work-speed multiplier in `(0, 1]` given swapped bytes and physical
    /// total.
    pub fn speed_multiplier(&self, swapped: u64, phys_total: u64) -> f64 {
        if swapped == 0 || phys_total == 0 {
            return 1.0;
        }
        let frac = swapped as f64 / phys_total as f64;
        1.0 / (1.0 + self.steepness * frac * frac)
    }

    /// True if `swapped` exceeds the device capacity (OOM-kill territory).
    pub fn exhausted(&self, swapped: u64) -> bool {
        swapped > self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_sim::units::GIB;

    #[test]
    fn no_swap_no_penalty() {
        let m = SwapModel::hdd(8 * GIB);
        assert_eq!(m.speed_multiplier(0, 64 * GIB), 1.0);
    }

    #[test]
    fn penalty_grows_with_overflow() {
        let m = SwapModel::hdd(8 * GIB);
        let mild = m.speed_multiplier(GIB, 64 * GIB);
        let deep = m.speed_multiplier(8 * GIB, 64 * GIB);
        assert!(mild < 1.0);
        assert!(deep < mild);
        assert!(deep > 0.0);
        // 12.5% overflow on an HDD should be crippling (well under half speed).
        assert!(deep < 0.5, "deep thrash multiplier {deep} should be severe");
    }

    #[test]
    fn zero_total_is_safe() {
        let m = SwapModel::hdd(GIB);
        assert_eq!(m.speed_multiplier(GIB, 0), 1.0);
    }

    #[test]
    fn exhaustion_boundary() {
        let m = SwapModel::hdd(2 * GIB);
        assert!(!m.exhausted(2 * GIB));
        assert!(m.exhausted(2 * GIB + 1));
    }
}
