//! Control-group (container) accounting.
//!
//! The paper's testbed caps each node at 64 GB with a Linux control group
//! (§7.1), and its future work asks whether M3 extends to containers (§9).
//! This module provides the accounting half: named groups of processes with
//! a byte limit, usage aggregation, and an over-limit query. *Policy* —
//! what to do when a container exceeds its limit (throttle, signal, kill) —
//! stays outside the kernel, exactly as M3's end-to-end principle demands;
//! the workloads crate uses this to build a per-container static-limit
//! baseline in the spirit of `memory.high` (and of MemOpLight's container
//! world, §8).

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

use crate::kernel::Kernel;
use crate::process::Pid;

/// A named group of processes with a memory limit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cgroup {
    /// Human-readable name.
    pub name: String,
    /// Byte limit (`memory.high` semantics: exceeding triggers reclaim
    /// pressure, not an immediate kill).
    pub limit: u64,
    /// Member processes.
    members: BTreeSet<Pid>,
}

impl Cgroup {
    /// Creates an empty group.
    pub fn new(name: impl Into<String>, limit: u64) -> Self {
        Cgroup {
            name: name.into(),
            limit,
            members: BTreeSet::new(),
        }
    }

    /// Adds a process to the group.
    pub fn add(&mut self, pid: Pid) {
        self.members.insert(pid);
    }

    /// Removes a process (exit or migration).
    pub fn remove(&mut self, pid: Pid) {
        self.members.remove(&pid);
    }

    /// True if `pid` is a member.
    pub fn contains(&self, pid: Pid) -> bool {
        self.members.contains(&pid)
    }

    /// The member processes.
    pub fn members(&self) -> impl Iterator<Item = Pid> + '_ {
        self.members.iter().copied()
    }

    /// Combined committed bytes of all (living) members.
    pub fn usage(&self, os: &Kernel) -> u64 {
        self.members.iter().map(|&p| os.rss(p)).sum()
    }

    /// Bytes over the limit (zero when within it).
    pub fn over_limit(&self, os: &Kernel) -> u64 {
        self.usage(os).saturating_sub(self.limit)
    }
}

/// A set of disjoint control groups.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CgroupSet {
    groups: Vec<Cgroup>,
}

impl CgroupSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        CgroupSet::default()
    }

    /// Adds a group and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if any member already belongs to another group.
    pub fn add(&mut self, group: Cgroup) -> usize {
        for existing in &self.groups {
            for pid in group.members() {
                assert!(
                    !existing.contains(pid),
                    "pid {pid} already in cgroup {}",
                    existing.name
                );
            }
        }
        self.groups.push(group);
        self.groups.len() - 1
    }

    /// The groups.
    pub fn groups(&self) -> &[Cgroup] {
        &self.groups
    }

    /// Mutable access to a group by index.
    pub fn group_mut(&mut self, idx: usize) -> &mut Cgroup {
        &mut self.groups[idx]
    }

    /// The group containing `pid`, if any.
    pub fn group_of(&self, pid: Pid) -> Option<&Cgroup> {
        self.groups.iter().find(|g| g.contains(pid))
    }

    /// Indices of groups currently over their limit.
    pub fn over_limit(&self, os: &Kernel) -> Vec<usize> {
        self.groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.over_limit(os) > 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Sum of all group limits (for provisioning sanity checks).
    pub fn total_limit(&self) -> u64 {
        self.groups.iter().map(|g| g.limit).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;
    use m3_sim::units::GIB;

    fn setup() -> (Kernel, CgroupSet) {
        (
            Kernel::new(KernelConfig::with_total(64 * GIB)),
            CgroupSet::new(),
        )
    }

    #[test]
    fn usage_aggregates_members() {
        let (mut os, mut set) = setup();
        let a = os.spawn("a");
        let b = os.spawn("b");
        let mut g = Cgroup::new("tenant", 8 * GIB);
        g.add(a);
        g.add(b);
        let idx = set.add(g);
        os.grow(a, 3 * GIB).unwrap();
        os.grow(b, 2 * GIB).unwrap();
        assert_eq!(set.groups()[idx].usage(&os), 5 * GIB);
        assert_eq!(set.groups()[idx].over_limit(&os), 0);
        os.grow(b, 4 * GIB).unwrap();
        assert_eq!(set.groups()[idx].over_limit(&os), GIB);
        assert_eq!(set.over_limit(&os), vec![idx]);
    }

    #[test]
    fn exited_members_stop_counting() {
        let (mut os, mut set) = setup();
        let a = os.spawn("a");
        let mut g = Cgroup::new("t", GIB);
        g.add(a);
        set.add(g);
        os.grow(a, 2 * GIB).unwrap();
        os.exit(a);
        assert_eq!(set.groups()[0].usage(&os), 0);
        assert!(set.over_limit(&os).is_empty());
    }

    #[test]
    fn group_of_finds_membership() {
        let (mut os, mut set) = setup();
        let a = os.spawn("a");
        let b = os.spawn("b");
        let mut g = Cgroup::new("t", GIB);
        g.add(a);
        set.add(g);
        assert_eq!(set.group_of(a).map(|g| g.name.as_str()), Some("t"));
        assert!(set.group_of(b).is_none());
    }

    #[test]
    #[should_panic(expected = "already in cgroup")]
    fn disjointness_enforced() {
        let (mut os, mut set) = setup();
        let a = os.spawn("a");
        let mut g1 = Cgroup::new("one", GIB);
        g1.add(a);
        set.add(g1);
        let mut g2 = Cgroup::new("two", GIB);
        g2.add(a);
        set.add(g2);
    }

    #[test]
    fn membership_changes() {
        let (mut os, mut set) = setup();
        let a = os.spawn("a");
        let idx = set.add(Cgroup::new("t", GIB));
        set.group_mut(idx).add(a);
        assert!(set.groups()[idx].contains(a));
        set.group_mut(idx).remove(a);
        assert!(!set.groups()[idx].contains(a));
        assert_eq!(set.total_limit(), GIB);
    }
}
