//! Simulated Linux-like kernel substrate.
//!
//! M3's monitor consumes three things from the operating system: global
//! physical-memory availability (`MemAvailable` in `/proc/meminfo`),
//! application-defined real-time signals, and the `madvise` path by which
//! runtimes return freed pages. This crate models exactly that surface, plus
//! the failure modes the paper's baselines hit (swap thrashing, the OOM
//! killer) and the disk that Spark-like workloads re-read evicted blocks
//! from.
//!
//! The model is intentionally *accounting-level*: physical memory is a
//! page-granular counter per process, not a frame table. M3 never inspects
//! page contents, so nothing finer is needed to reproduce the paper's
//! behaviour (see DESIGN.md §2).
//!
//! # Examples
//!
//! ```
//! use m3_os::{Kernel, KernelConfig, Signal};
//! use m3_sim::units::GIB;
//!
//! let mut k = Kernel::new(KernelConfig::with_total(4 * GIB));
//! let pid = k.spawn("cache");
//! k.grow(pid, GIB).unwrap();
//! assert_eq!(k.meminfo().available, 3 * GIB);
//! k.send_signal(pid, Signal::HighMemory);
//! assert_eq!(k.take_signals(pid), vec![Signal::HighMemory]);
//! ```

pub mod cgroup;
pub mod disk;
pub mod kernel;
pub mod meminfo;
pub mod process;
pub mod signals;
pub mod swap;

pub use cgroup::{Cgroup, CgroupSet};
pub use disk::DiskModel;
pub use kernel::{Kernel, KernelConfig, KernelError};
pub use meminfo::MemInfo;
pub use process::{Pid, ProcessState};
pub use signals::{SendOutcome, Signal, SignalFaultConfig, SignalFaultStats};
