//! The kernel facade: process table, memory accounting, signal delivery, OOM.

use m3_sim::clock::SimTime;
use m3_sim::trace::{SigKind, TraceData, TraceLog};

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use crate::meminfo::MemInfo;
use crate::process::{Pid, Process, ProcessState};
use crate::signals::{SendOutcome, Signal, SignalBus, SignalFaultConfig, SignalFaultStats};
use crate::swap::SwapModel;

/// Kernel construction parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Physical memory visible to applications (the cgroup limit).
    pub total: u64,
    /// Swap model (capacity + thrash curve).
    pub swap: SwapModel,
}

impl KernelConfig {
    /// A config with the given physical total and an 8-GiB-class HDD swap
    /// sized at one quarter of physical memory.
    pub fn with_total(total: u64) -> Self {
        KernelConfig {
            total,
            swap: SwapModel::hdd(total / 4),
        }
    }
}

/// Errors returned by kernel memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelError {
    /// The target process does not exist or has terminated.
    NoSuchProcess(Pid),
    /// Both physical memory and swap are exhausted; the allocation cannot be
    /// backed. (The caller should expect the OOM killer to fire.)
    OutOfMemory,
    /// `/proc/meminfo` could not be read (injected poll outage). The monitor
    /// is expected to degrade gracefully, not to panic.
    MemInfoUnavailable,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NoSuchProcess(pid) => write!(f, "no such process: {pid}"),
            KernelError::OutOfMemory => write!(f, "out of memory and swap"),
            KernelError::MemInfoUnavailable => write!(f, "meminfo read failed"),
        }
    }
}

impl std::error::Error for KernelError {}

/// The simulated kernel.
///
/// Owns the process table, byte-level (page-aligned) memory accounting, the
/// signal bus and the trace log. The world loop calls [`Kernel::grow`] /
/// [`Kernel::release`] on behalf of runtimes and reads
/// [`Kernel::meminfo`] on behalf of the M3 monitor.
#[derive(Debug)]
pub struct Kernel {
    config: KernelConfig,
    procs: BTreeMap<Pid, Process>,
    signals: SignalBus,
    next_pid: Pid,
    /// Lifetime spawn counter: stamps each process with a unique
    /// incarnation so pid reuse is detectable.
    spawn_seq: u64,
    now: SimTime,
    /// Injected meminfo outage: while set, [`Kernel::try_meminfo`] fails.
    meminfo_down: bool,
    /// Structured event log (signals, kills, OOM) for tests and figures.
    pub trace: TraceLog,
}

impl Kernel {
    /// Creates a kernel with the given configuration.
    pub fn new(config: KernelConfig) -> Self {
        Kernel {
            config,
            procs: BTreeMap::new(),
            signals: SignalBus::new(),
            next_pid: 1,
            spawn_seq: 0,
            now: SimTime::ZERO,
            meminfo_down: false,
            trace: TraceLog::new(),
        }
    }

    /// The kernel configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Updates the kernel's notion of "now" (used to timestamp spawns and
    /// trace events), delivering any deferred signals that have come due.
    /// The world loop calls this once per tick.
    pub fn set_time(&mut self, now: SimTime) {
        self.now = now;
        self.signals.deliver_due(now);
    }

    /// The kernel's current time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Creates a new process and returns its pid.
    pub fn spawn(&mut self, name: impl Into<String>) -> Pid {
        let pid = self.next_pid;
        self.next_pid += 1;
        self.spawn_seq += 1;
        let proc = Process::new(pid, name, self.now, self.spawn_seq);
        self.trace
            .record_with(self.now, pid, || TraceData::ProcSpawn {
                name: proc.name.clone(),
            });
        self.procs.insert(pid, proc);
        pid
    }

    /// Creates a new process *reusing* a dead process's pid (the PID-reuse
    /// hazard real registries face: a fresh, unrelated process appears under
    /// a number a stale PID file still names). The new process gets a fresh
    /// incarnation and inherits nothing — pending and in-flight signals for
    /// the old pid are discarded.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is still alive (a real kernel never reuses a live
    /// pid) or was never allocated.
    pub fn spawn_reusing(&mut self, pid: Pid, name: impl Into<String>) -> Pid {
        assert!(
            pid < self.next_pid,
            "cannot reuse a pid that was never allocated"
        );
        assert!(!self.is_alive(pid), "cannot reuse a live pid");
        self.signals.forget(pid);
        self.spawn_seq += 1;
        let proc = Process::new(pid, name, self.now, self.spawn_seq);
        self.trace
            .record_with(self.now, pid, || TraceData::ProcRespawn {
                name: proc.name.clone(),
            });
        self.procs.insert(pid, proc);
        pid
    }

    /// Marks a process exited and releases all of its memory.
    pub fn exit(&mut self, pid: Pid) {
        if let Some(p) = self.procs.get_mut(&pid) {
            p.committed = 0;
            p.state = ProcessState::Exited;
            self.signals.forget(pid);
            self.trace.record(self.now, pid, TraceData::ProcExit);
        }
    }

    /// Kills a process (OOM killer / M3 kill escalation), releasing its
    /// memory and queueing a `Kill` signal so the world loop can observe it.
    pub fn kill(&mut self, pid: Pid) {
        if let Some(p) = self.procs.get_mut(&pid) {
            if p.state == ProcessState::Running {
                p.committed = 0;
                p.state = ProcessState::Killed;
                self.signals.send(pid, Signal::Kill);
                self.trace.record(self.now, pid, TraceData::ProcKill);
            }
        }
    }

    /// True if `pid` exists and is running.
    pub fn is_alive(&self, pid: Pid) -> bool {
        self.procs.get(&pid).is_some_and(Process::is_alive)
    }

    /// The process table entry, if present.
    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(&pid)
    }

    /// Pids of all running processes, in pid order.
    pub fn running_pids(&self) -> Vec<Pid> {
        self.procs
            .values()
            .filter(|p| p.is_alive())
            .map(|p| p.pid)
            .collect()
    }

    /// Grows a process's committed memory by `bytes`.
    ///
    /// Accounting is byte-exact; page granularity is a property of the
    /// *callers* (runtimes commit region-sized chunks, caches release whole
    /// slabs), so the kernel does not re-align and the two sides of the
    /// ledger always agree.
    ///
    /// Succeeds even past physical memory — the overflow is charged to swap
    /// and slows everyone down. Growth past swap capacity also succeeds
    /// (Linux overcommit); the OOM killer fires on the next
    /// [`Kernel::check_oom`], which the world loop runs every tick.
    pub fn grow(&mut self, pid: Pid, bytes: u64) -> Result<(), KernelError> {
        let proc = self
            .procs
            .get_mut(&pid)
            .filter(|p| p.is_alive())
            .ok_or(KernelError::NoSuchProcess(pid))?;
        proc.committed += bytes;
        Ok(())
    }

    /// Returns `bytes` of a process's memory to the OS (`madvise(DONTNEED)`),
    /// saturating at the process's committed size.
    pub fn release(&mut self, pid: Pid, bytes: u64) -> Result<(), KernelError> {
        let proc = self
            .procs
            .get_mut(&pid)
            .filter(|p| p.is_alive())
            .ok_or(KernelError::NoSuchProcess(pid))?;
        let released = bytes.min(proc.committed);
        proc.committed -= released;
        if released > 0 {
            self.trace
                .record(self.now, pid, TraceData::Madvise { bytes: released });
        }
        Ok(())
    }

    /// Records a typed trace event at the kernel's current time. Layers
    /// above the kernel (monitor, runtimes, frameworks) emit their events
    /// through this so every component shares one clock and one log.
    pub fn record_trace(&mut self, pid: Pid, data: TraceData) {
        self.trace.record(self.now, pid, data);
    }

    /// Lazy variant of [`Kernel::record_trace`]: the payload is built only
    /// when tracing is enabled.
    pub fn record_trace_with(&mut self, pid: Pid, make: impl FnOnce() -> TraceData) {
        self.trace.record_with(self.now, pid, make);
    }

    /// A process's committed (resident + swapped) bytes; zero if unknown.
    pub fn rss(&self, pid: Pid) -> u64 {
        self.procs.get(&pid).map_or(0, |p| p.committed)
    }

    /// Sum of committed bytes over all running processes.
    pub fn committed(&self) -> u64 {
        self.procs
            .values()
            .filter(|p| p.is_alive())
            .map(|p| p.committed)
            .sum()
    }

    /// Bytes currently charged to swap (committed overflow past physical).
    pub fn swapped(&self) -> u64 {
        self.committed().saturating_sub(self.config.total)
    }

    /// `/proc/meminfo` snapshot.
    pub fn meminfo(&self) -> MemInfo {
        let committed = self.committed();
        let used = committed.min(self.config.total);
        MemInfo {
            total: self.config.total,
            used,
            available: self.config.total - used,
            swapped: committed.saturating_sub(self.config.total),
        }
    }

    /// Fallible `/proc/meminfo` read: fails while a poll outage is injected.
    /// Monitors should read through this and degrade on `Err` rather than
    /// assuming the snapshot is always available.
    pub fn try_meminfo(&self) -> Result<MemInfo, KernelError> {
        if self.meminfo_down {
            Err(KernelError::MemInfoUnavailable)
        } else {
            Ok(self.meminfo())
        }
    }

    /// Injects (or clears) a meminfo outage.
    pub fn set_meminfo_outage(&mut self, down: bool) {
        self.meminfo_down = down;
    }

    /// Installs (or clears) signal fault injection on the bus.
    pub fn set_signal_faults(&mut self, cfg: Option<SignalFaultConfig>) {
        self.signals.set_fault(cfg);
    }

    /// Signal fault-injection counters (zero when no faults are installed).
    pub fn signal_fault_stats(&self) -> SignalFaultStats {
        self.signals.fault_stats()
    }

    /// Work-speed multiplier in `(0, 1]` applied to every running process,
    /// reflecting swap thrashing.
    pub fn thrash_multiplier(&self) -> f64 {
        self.config
            .swap
            .speed_multiplier(self.swapped(), self.config.total)
    }

    /// Queues a signal for a running process, subject to any installed
    /// signal fault injection. Signals to dead processes are silently
    /// dropped (matching `kill(2)` on a reaped pid).
    pub fn send_signal(&mut self, pid: Pid, sig: Signal) {
        if self.is_alive(pid) {
            let kind = match sig {
                Signal::LowMemory => SigKind::Low,
                Signal::HighMemory => SigKind::High,
                Signal::Kill => SigKind::Kill,
            };
            let data = match self.signals.send_at(pid, sig, self.now) {
                SendOutcome::Delivered => TraceData::SignalSent { sig: kind },
                SendOutcome::Dropped => TraceData::SignalDropped { sig: kind },
                SendOutcome::Delayed => TraceData::SignalDelayed { sig: kind },
            };
            self.trace.record(self.now, pid, data);
        }
    }

    /// Drains pending signals for a process.
    pub fn take_signals(&mut self, pid: Pid) -> Vec<Signal> {
        self.signals.take(pid)
    }

    /// True if a signal of the given kind is pending for `pid`.
    pub fn has_pending_signal(&self, pid: Pid, sig: Signal) -> bool {
        self.signals.has_pending(pid, sig)
    }

    /// OOM check: if swap is exhausted, kills the largest running process
    /// and returns its pid.
    pub fn check_oom(&mut self) -> Option<Pid> {
        if !self.config.swap.exhausted(self.swapped()) {
            return None;
        }
        let victim = self
            .procs
            .values()
            .filter(|p| p.is_alive())
            .max_by_key(|p| (p.committed, p.pid))?
            .pid;
        self.trace.record(self.now, victim, TraceData::OomKill);
        self.kill(victim);
        Some(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_sim::units::{GIB, MIB, PAGE_SIZE};

    fn kernel(gib: u64) -> Kernel {
        Kernel::new(KernelConfig::with_total(gib * GIB))
    }

    #[test]
    fn spawn_grow_release_accounting() {
        let mut k = kernel(4);
        let a = k.spawn("a");
        let b = k.spawn("b");
        assert_ne!(a, b);
        k.grow(a, GIB).unwrap();
        k.grow(b, 2 * GIB).unwrap();
        assert_eq!(k.rss(a), GIB);
        assert_eq!(k.committed(), 3 * GIB);
        assert_eq!(k.meminfo().available, GIB);
        k.release(a, GIB / 2).unwrap();
        assert_eq!(k.rss(a), GIB / 2);
    }

    #[test]
    fn grow_is_byte_exact() {
        let mut k = kernel(1);
        let p = k.spawn("p");
        k.grow(p, 1).unwrap();
        assert_eq!(k.rss(p), 1);
        k.grow(p, PAGE_SIZE + 1).unwrap();
        assert_eq!(k.rss(p), PAGE_SIZE + 2, "ledger must match callers exactly");
    }

    #[test]
    fn release_saturates() {
        let mut k = kernel(1);
        let p = k.spawn("p");
        k.grow(p, MIB).unwrap();
        k.release(p, 10 * MIB).unwrap();
        assert_eq!(k.rss(p), 0);
    }

    #[test]
    fn operations_on_dead_process_fail() {
        let mut k = kernel(1);
        let p = k.spawn("p");
        k.exit(p);
        assert_eq!(k.grow(p, MIB), Err(KernelError::NoSuchProcess(p)));
        assert_eq!(k.release(p, MIB), Err(KernelError::NoSuchProcess(p)));
        assert_eq!(k.grow(999, MIB), Err(KernelError::NoSuchProcess(999)));
    }

    #[test]
    fn exit_releases_memory() {
        let mut k = kernel(4);
        let p = k.spawn("p");
        k.grow(p, 3 * GIB).unwrap();
        k.exit(p);
        assert_eq!(k.committed(), 0);
        assert_eq!(k.meminfo().available, 4 * GIB);
        assert!(!k.is_alive(p));
    }

    #[test]
    fn overcommit_goes_to_swap_and_thrashes() {
        let mut k = kernel(4);
        let p = k.spawn("p");
        k.grow(p, 4 * GIB).unwrap();
        assert_eq!(k.thrash_multiplier(), 1.0);
        k.grow(p, GIB / 2).unwrap();
        assert_eq!(k.swapped(), GIB / 2);
        assert!(k.thrash_multiplier() < 1.0);
        let mi = k.meminfo();
        assert_eq!(mi.available, 0);
        assert_eq!(mi.used, 4 * GIB);
        assert_eq!(mi.swapped, GIB / 2);
    }

    #[test]
    fn swap_exhaustion_allows_grow_until_oom() {
        let mut k = kernel(4); // swap = 1 GiB
        let p = k.spawn("p");
        k.grow(p, 5 * GIB).unwrap(); // exactly at swap capacity
        assert!(
            k.grow(p, GIB).is_ok(),
            "overcommit succeeds; OOM fires later"
        );
        assert_eq!(k.check_oom(), Some(p));
    }

    #[test]
    fn oom_kills_largest() {
        let mut k = kernel(4); // swap = 1 GiB
        let small = k.spawn("small");
        let big = k.spawn("big");
        k.grow(small, GIB).unwrap();
        k.grow(big, 4 * GIB).unwrap(); // committed 5 GiB, swapped 1 GiB: at capacity
        assert_eq!(k.check_oom(), None);
        // Push past swap capacity via the small process; the *largest* dies.
        k.grow(small, GIB / 2).unwrap();
        assert_eq!(k.check_oom(), Some(big));
        assert!(!k.is_alive(big));
        assert!(k.is_alive(small));
        assert_eq!(k.check_oom(), None, "pressure relieved after the kill");
    }

    #[test]
    fn signals_round_trip_and_drop_for_dead() {
        let mut k = kernel(1);
        let p = k.spawn("p");
        k.send_signal(p, Signal::LowMemory);
        k.send_signal(p, Signal::HighMemory);
        assert!(k.has_pending_signal(p, Signal::HighMemory));
        assert_eq!(
            k.take_signals(p),
            vec![Signal::LowMemory, Signal::HighMemory]
        );
        k.exit(p);
        k.send_signal(p, Signal::LowMemory);
        assert!(k.take_signals(p).is_empty());
    }

    #[test]
    fn kill_queues_kill_signal_and_traces() {
        let mut k = kernel(1);
        let p = k.spawn("p");
        k.grow(p, MIB).unwrap();
        k.kill(p);
        assert!(!k.is_alive(p));
        assert_eq!(k.rss(p), 0);
        assert_eq!(k.trace.count("proc.kill"), 1);
    }

    #[test]
    fn running_pids_excludes_dead() {
        let mut k = kernel(1);
        let a = k.spawn("a");
        let b = k.spawn("b");
        let c = k.spawn("c");
        k.exit(b);
        assert_eq!(k.running_pids(), vec![a, c]);
    }

    #[test]
    fn spawn_records_time() {
        let mut k = kernel(1);
        k.set_time(SimTime::from_secs(42));
        let p = k.spawn("late");
        assert_eq!(k.process(p).unwrap().spawned_at, SimTime::from_secs(42));
    }

    #[test]
    fn spawn_reusing_gets_fresh_incarnation_and_no_stale_signals() {
        let mut k = kernel(1);
        let p = k.spawn("victim");
        let first_inc = k.process(p).unwrap().incarnation;
        k.kill(p); // queues a Kill signal for the dead pid
        let reused = k.spawn_reusing(p, "bystander");
        assert_eq!(reused, p, "same pid, new process");
        assert!(k.is_alive(p));
        assert!(
            k.take_signals(p).is_empty(),
            "the reuser must not inherit the victim's Kill"
        );
        assert!(k.process(p).unwrap().incarnation > first_inc);
        assert_eq!(k.process(p).unwrap().name, "bystander");
    }

    #[test]
    #[should_panic(expected = "cannot reuse a live pid")]
    fn spawn_reusing_rejects_live_pids() {
        let mut k = kernel(1);
        let p = k.spawn("alive");
        k.spawn_reusing(p, "imposter");
    }

    #[test]
    fn meminfo_outage_fails_try_meminfo_only() {
        let mut k = kernel(4);
        let p = k.spawn("p");
        k.grow(p, GIB).unwrap();
        assert_eq!(k.try_meminfo().unwrap().used, GIB);
        k.set_meminfo_outage(true);
        assert_eq!(k.try_meminfo(), Err(KernelError::MemInfoUnavailable));
        k.set_meminfo_outage(false);
        assert!(k.try_meminfo().is_ok());
    }

    #[test]
    fn deferred_signals_flush_on_set_time() {
        use crate::signals::SignalFaultConfig;
        let mut k = kernel(1);
        let p = k.spawn("p");
        k.set_signal_faults(Some(SignalFaultConfig::laggy(
            1,
            1.0,
            SimTime::from_secs(3).saturating_since(SimTime::ZERO),
        )));
        k.send_signal(p, Signal::HighMemory);
        assert!(k.take_signals(p).is_empty(), "in flight");
        k.set_time(SimTime::from_secs(3));
        assert_eq!(k.take_signals(p), vec![Signal::HighMemory]);
        assert_eq!(k.signal_fault_stats().delayed, 1);
    }
}
