//! The kernel facade: process table, memory accounting, signal delivery, OOM.

use m3_sim::clock::SimTime;
use m3_sim::trace::TraceLog;

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use crate::meminfo::MemInfo;
use crate::process::{Pid, Process, ProcessState};
use crate::signals::{Signal, SignalBus};
use crate::swap::SwapModel;

/// Kernel construction parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Physical memory visible to applications (the cgroup limit).
    pub total: u64,
    /// Swap model (capacity + thrash curve).
    pub swap: SwapModel,
}

impl KernelConfig {
    /// A config with the given physical total and an 8-GiB-class HDD swap
    /// sized at one quarter of physical memory.
    pub fn with_total(total: u64) -> Self {
        KernelConfig {
            total,
            swap: SwapModel::hdd(total / 4),
        }
    }
}

/// Errors returned by kernel memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelError {
    /// The target process does not exist or has terminated.
    NoSuchProcess(Pid),
    /// Both physical memory and swap are exhausted; the allocation cannot be
    /// backed. (The caller should expect the OOM killer to fire.)
    OutOfMemory,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NoSuchProcess(pid) => write!(f, "no such process: {pid}"),
            KernelError::OutOfMemory => write!(f, "out of memory and swap"),
        }
    }
}

impl std::error::Error for KernelError {}

/// The simulated kernel.
///
/// Owns the process table, byte-level (page-aligned) memory accounting, the
/// signal bus and the trace log. The world loop calls [`Kernel::grow`] /
/// [`Kernel::release`] on behalf of runtimes and reads
/// [`Kernel::meminfo`] on behalf of the M3 monitor.
#[derive(Debug)]
pub struct Kernel {
    config: KernelConfig,
    procs: BTreeMap<Pid, Process>,
    signals: SignalBus,
    next_pid: Pid,
    now: SimTime,
    /// Structured event log (signals, kills, OOM) for tests and figures.
    pub trace: TraceLog,
}

impl Kernel {
    /// Creates a kernel with the given configuration.
    pub fn new(config: KernelConfig) -> Self {
        Kernel {
            config,
            procs: BTreeMap::new(),
            signals: SignalBus::new(),
            next_pid: 1,
            now: SimTime::ZERO,
            trace: TraceLog::new(),
        }
    }

    /// The kernel configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Updates the kernel's notion of "now" (used to timestamp spawns and
    /// trace events). The world loop calls this once per tick.
    pub fn set_time(&mut self, now: SimTime) {
        self.now = now;
    }

    /// The kernel's current time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Creates a new process and returns its pid.
    pub fn spawn(&mut self, name: impl Into<String>) -> Pid {
        let pid = self.next_pid;
        self.next_pid += 1;
        let proc = Process::new(pid, name, self.now);
        self.trace
            .record(self.now, pid, "proc.spawn", proc.name.clone());
        self.procs.insert(pid, proc);
        pid
    }

    /// Marks a process exited and releases all of its memory.
    pub fn exit(&mut self, pid: Pid) {
        if let Some(p) = self.procs.get_mut(&pid) {
            p.committed = 0;
            p.state = ProcessState::Exited;
            self.signals.forget(pid);
            self.trace.record(self.now, pid, "proc.exit", "");
        }
    }

    /// Kills a process (OOM killer / M3 kill escalation), releasing its
    /// memory and queueing a `Kill` signal so the world loop can observe it.
    pub fn kill(&mut self, pid: Pid) {
        if let Some(p) = self.procs.get_mut(&pid) {
            if p.state == ProcessState::Running {
                p.committed = 0;
                p.state = ProcessState::Killed;
                self.signals.send(pid, Signal::Kill);
                self.trace.record(self.now, pid, "proc.kill", "");
            }
        }
    }

    /// True if `pid` exists and is running.
    pub fn is_alive(&self, pid: Pid) -> bool {
        self.procs.get(&pid).is_some_and(Process::is_alive)
    }

    /// The process table entry, if present.
    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(&pid)
    }

    /// Pids of all running processes, in pid order.
    pub fn running_pids(&self) -> Vec<Pid> {
        self.procs
            .values()
            .filter(|p| p.is_alive())
            .map(|p| p.pid)
            .collect()
    }

    /// Grows a process's committed memory by `bytes`.
    ///
    /// Accounting is byte-exact; page granularity is a property of the
    /// *callers* (runtimes commit region-sized chunks, caches release whole
    /// slabs), so the kernel does not re-align and the two sides of the
    /// ledger always agree.
    ///
    /// Succeeds even past physical memory — the overflow is charged to swap
    /// and slows everyone down. Growth past swap capacity also succeeds
    /// (Linux overcommit); the OOM killer fires on the next
    /// [`Kernel::check_oom`], which the world loop runs every tick.
    pub fn grow(&mut self, pid: Pid, bytes: u64) -> Result<(), KernelError> {
        let proc = self
            .procs
            .get_mut(&pid)
            .filter(|p| p.is_alive())
            .ok_or(KernelError::NoSuchProcess(pid))?;
        proc.committed += bytes;
        Ok(())
    }

    /// Returns `bytes` of a process's memory to the OS (`madvise(DONTNEED)`),
    /// saturating at the process's committed size.
    pub fn release(&mut self, pid: Pid, bytes: u64) -> Result<(), KernelError> {
        let proc = self
            .procs
            .get_mut(&pid)
            .filter(|p| p.is_alive())
            .ok_or(KernelError::NoSuchProcess(pid))?;
        proc.committed = proc.committed.saturating_sub(bytes);
        Ok(())
    }

    /// A process's committed (resident + swapped) bytes; zero if unknown.
    pub fn rss(&self, pid: Pid) -> u64 {
        self.procs.get(&pid).map_or(0, |p| p.committed)
    }

    /// Sum of committed bytes over all running processes.
    pub fn committed(&self) -> u64 {
        self.procs
            .values()
            .filter(|p| p.is_alive())
            .map(|p| p.committed)
            .sum()
    }

    /// Bytes currently charged to swap (committed overflow past physical).
    pub fn swapped(&self) -> u64 {
        self.committed().saturating_sub(self.config.total)
    }

    /// `/proc/meminfo` snapshot.
    pub fn meminfo(&self) -> MemInfo {
        let committed = self.committed();
        let used = committed.min(self.config.total);
        MemInfo {
            total: self.config.total,
            used,
            available: self.config.total - used,
            swapped: committed.saturating_sub(self.config.total),
        }
    }

    /// Work-speed multiplier in `(0, 1]` applied to every running process,
    /// reflecting swap thrashing.
    pub fn thrash_multiplier(&self) -> f64 {
        self.config
            .swap
            .speed_multiplier(self.swapped(), self.config.total)
    }

    /// Queues a signal for a running process. Signals to dead processes are
    /// silently dropped (matching `kill(2)` on a reaped pid).
    pub fn send_signal(&mut self, pid: Pid, sig: Signal) {
        if self.is_alive(pid) {
            let kind = match sig {
                Signal::LowMemory => "signal.low",
                Signal::HighMemory => "signal.high",
                Signal::Kill => "signal.kill",
            };
            self.trace.record(self.now, pid, kind, "");
            self.signals.send(pid, sig);
        }
    }

    /// Drains pending signals for a process.
    pub fn take_signals(&mut self, pid: Pid) -> Vec<Signal> {
        self.signals.take(pid)
    }

    /// True if a signal of the given kind is pending for `pid`.
    pub fn has_pending_signal(&self, pid: Pid, sig: Signal) -> bool {
        self.signals.has_pending(pid, sig)
    }

    /// OOM check: if swap is exhausted, kills the largest running process
    /// and returns its pid.
    pub fn check_oom(&mut self) -> Option<Pid> {
        if !self.config.swap.exhausted(self.swapped()) {
            return None;
        }
        let victim = self
            .procs
            .values()
            .filter(|p| p.is_alive())
            .max_by_key(|p| (p.committed, p.pid))?
            .pid;
        self.trace.record(self.now, victim, "oom.kill", "");
        self.kill(victim);
        Some(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_sim::units::{GIB, MIB, PAGE_SIZE};

    fn kernel(gib: u64) -> Kernel {
        Kernel::new(KernelConfig::with_total(gib * GIB))
    }

    #[test]
    fn spawn_grow_release_accounting() {
        let mut k = kernel(4);
        let a = k.spawn("a");
        let b = k.spawn("b");
        assert_ne!(a, b);
        k.grow(a, GIB).unwrap();
        k.grow(b, 2 * GIB).unwrap();
        assert_eq!(k.rss(a), GIB);
        assert_eq!(k.committed(), 3 * GIB);
        assert_eq!(k.meminfo().available, GIB);
        k.release(a, GIB / 2).unwrap();
        assert_eq!(k.rss(a), GIB / 2);
    }

    #[test]
    fn grow_is_byte_exact() {
        let mut k = kernel(1);
        let p = k.spawn("p");
        k.grow(p, 1).unwrap();
        assert_eq!(k.rss(p), 1);
        k.grow(p, PAGE_SIZE + 1).unwrap();
        assert_eq!(k.rss(p), PAGE_SIZE + 2, "ledger must match callers exactly");
    }

    #[test]
    fn release_saturates() {
        let mut k = kernel(1);
        let p = k.spawn("p");
        k.grow(p, MIB).unwrap();
        k.release(p, 10 * MIB).unwrap();
        assert_eq!(k.rss(p), 0);
    }

    #[test]
    fn operations_on_dead_process_fail() {
        let mut k = kernel(1);
        let p = k.spawn("p");
        k.exit(p);
        assert_eq!(k.grow(p, MIB), Err(KernelError::NoSuchProcess(p)));
        assert_eq!(k.release(p, MIB), Err(KernelError::NoSuchProcess(p)));
        assert_eq!(k.grow(999, MIB), Err(KernelError::NoSuchProcess(999)));
    }

    #[test]
    fn exit_releases_memory() {
        let mut k = kernel(4);
        let p = k.spawn("p");
        k.grow(p, 3 * GIB).unwrap();
        k.exit(p);
        assert_eq!(k.committed(), 0);
        assert_eq!(k.meminfo().available, 4 * GIB);
        assert!(!k.is_alive(p));
    }

    #[test]
    fn overcommit_goes_to_swap_and_thrashes() {
        let mut k = kernel(4);
        let p = k.spawn("p");
        k.grow(p, 4 * GIB).unwrap();
        assert_eq!(k.thrash_multiplier(), 1.0);
        k.grow(p, GIB / 2).unwrap();
        assert_eq!(k.swapped(), GIB / 2);
        assert!(k.thrash_multiplier() < 1.0);
        let mi = k.meminfo();
        assert_eq!(mi.available, 0);
        assert_eq!(mi.used, 4 * GIB);
        assert_eq!(mi.swapped, GIB / 2);
    }

    #[test]
    fn swap_exhaustion_allows_grow_until_oom() {
        let mut k = kernel(4); // swap = 1 GiB
        let p = k.spawn("p");
        k.grow(p, 5 * GIB).unwrap(); // exactly at swap capacity
        assert!(
            k.grow(p, GIB).is_ok(),
            "overcommit succeeds; OOM fires later"
        );
        assert_eq!(k.check_oom(), Some(p));
    }

    #[test]
    fn oom_kills_largest() {
        let mut k = kernel(4); // swap = 1 GiB
        let small = k.spawn("small");
        let big = k.spawn("big");
        k.grow(small, GIB).unwrap();
        k.grow(big, 4 * GIB).unwrap(); // committed 5 GiB, swapped 1 GiB: at capacity
        assert_eq!(k.check_oom(), None);
        // Push past swap capacity via the small process; the *largest* dies.
        k.grow(small, GIB / 2).unwrap();
        assert_eq!(k.check_oom(), Some(big));
        assert!(!k.is_alive(big));
        assert!(k.is_alive(small));
        assert_eq!(k.check_oom(), None, "pressure relieved after the kill");
    }

    #[test]
    fn signals_round_trip_and_drop_for_dead() {
        let mut k = kernel(1);
        let p = k.spawn("p");
        k.send_signal(p, Signal::LowMemory);
        k.send_signal(p, Signal::HighMemory);
        assert!(k.has_pending_signal(p, Signal::HighMemory));
        assert_eq!(
            k.take_signals(p),
            vec![Signal::LowMemory, Signal::HighMemory]
        );
        k.exit(p);
        k.send_signal(p, Signal::LowMemory);
        assert!(k.take_signals(p).is_empty());
    }

    #[test]
    fn kill_queues_kill_signal_and_traces() {
        let mut k = kernel(1);
        let p = k.spawn("p");
        k.grow(p, MIB).unwrap();
        k.kill(p);
        assert!(!k.is_alive(p));
        assert_eq!(k.rss(p), 0);
        assert_eq!(k.trace.count("proc.kill"), 1);
    }

    #[test]
    fn running_pids_excludes_dead() {
        let mut k = kernel(1);
        let a = k.spawn("a");
        let b = k.spawn("b");
        let c = k.spawn("c");
        k.exit(b);
        assert_eq!(k.running_pids(), vec![a, c]);
    }

    #[test]
    fn spawn_records_time() {
        let mut k = kernel(1);
        k.set_time(SimTime::from_secs(42));
        let p = k.spawn("late");
        assert_eq!(k.process(p).unwrap().spawned_at, SimTime::from_secs(42));
    }
}
