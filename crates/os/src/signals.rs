//! Application-defined real-time signals.
//!
//! The paper's monitor uses two Linux real-time signal numbers for the low
//! and high memory-pressure notifications (§6). We model them as an enum plus
//! a `SIGKILL` analogue used by the kill-escalation path. Delivery is a
//! per-process FIFO queue that the process drains at its next scheduling
//! point, mirroring asynchronous signal delivery without needing actual
//! interrupt semantics.

use m3_sim::clock::{SimDuration, SimTime};
use m3_sim::rng::SimRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::process::Pid;

/// A signal deliverable to a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Signal {
    /// Early warning: system memory is becoming scarce (low threshold).
    LowMemory,
    /// Memory pressure is severe (high threshold); reclaim aggressively and
    /// run the adaptive allocation protocol.
    HighMemory,
    /// Unconditional termination (OOM killer / M3 kill escalation).
    Kill,
}

/// Fault injection for signal delivery: a deterministic, seeded lossy bus.
///
/// Each memory-pressure send rolls one uniform variate: below `drop_prob`
/// the signal is lost outright; in the next `delay_prob`-wide band it is
/// deferred by `delay` before entering the queue. `Kill` is immune — the
/// kernel's termination path is not a user-space notification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignalFaultConfig {
    /// Probability a pressure signal is silently lost.
    pub drop_prob: f64,
    /// Probability a (non-dropped) pressure signal is deferred.
    pub delay_prob: f64,
    /// Deferral applied to delayed signals.
    pub delay: SimDuration,
    /// RNG seed; the fault sequence is a pure function of it.
    pub seed: u64,
}

impl SignalFaultConfig {
    /// Drops each pressure signal with probability `drop_prob`.
    pub fn lossy(seed: u64, drop_prob: f64) -> Self {
        SignalFaultConfig {
            drop_prob,
            delay_prob: 0.0,
            delay: SimDuration::ZERO,
            seed,
        }
    }

    /// Delays each pressure signal with probability `delay_prob`.
    pub fn laggy(seed: u64, delay_prob: f64, delay: SimDuration) -> Self {
        SignalFaultConfig {
            drop_prob: 0.0,
            delay_prob,
            delay,
            seed,
        }
    }
}

/// Counters of what the fault injection did to the bus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignalFaultStats {
    /// Pressure signals silently lost.
    pub dropped: u64,
    /// Pressure signals deferred (they were delivered later).
    pub delayed: u64,
}

/// What happened to one send on a (possibly faulted) bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Queued for the target immediately.
    Delivered,
    /// Lost to injected signal loss.
    Dropped,
    /// Deferred; it will queue once the delay elapses.
    Delayed,
}

/// Per-process FIFO signal queues.
///
/// Duplicate *pending* memory-pressure signals are coalesced, matching the
/// semantics of POSIX real-time signal queues under M3's once-per-poll
/// sending discipline (a process that has not yet handled a pending high
/// signal gains nothing from a second copy).
#[derive(Debug, Clone, Default)]
pub struct SignalBus {
    queues: BTreeMap<Pid, Vec<Signal>>,
    fault: Option<(SignalFaultConfig, SimRng)>,
    /// Deferred `(due, pid, sig)` sends, in send order. The fixed per-bus
    /// delay keeps this chronologically sorted.
    deferred: Vec<(SimTime, Pid, Signal)>,
    stats: SignalFaultStats,
}

impl SignalBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        SignalBus::default()
    }

    /// Installs (or clears) signal fault injection. The RNG restarts from
    /// the configured seed, so installing the same config twice replays the
    /// same drop/delay sequence.
    pub fn set_fault(&mut self, cfg: Option<SignalFaultConfig>) {
        self.fault = cfg.map(|c| (c, SimRng::new(c.seed)));
    }

    /// Fault-injection counters so far.
    pub fn fault_stats(&self) -> SignalFaultStats {
        self.stats
    }

    /// Queues `sig` for `pid`. Memory-pressure signals already pending for
    /// the process are not duplicated; `Kill` always queues.
    pub fn send(&mut self, pid: Pid, sig: Signal) {
        let q = self.queues.entry(pid).or_default();
        if sig == Signal::Kill || !q.contains(&sig) {
            q.push(sig);
        }
    }

    /// Like [`SignalBus::send`], but subject to the installed fault
    /// injection; `now` timestamps deferred deliveries.
    pub fn send_at(&mut self, pid: Pid, sig: Signal, now: SimTime) -> SendOutcome {
        if sig != Signal::Kill {
            if let Some((cfg, rng)) = self.fault.as_mut() {
                let roll = rng.gen_f64();
                if roll < cfg.drop_prob {
                    self.stats.dropped += 1;
                    return SendOutcome::Dropped;
                }
                if roll < cfg.drop_prob + cfg.delay_prob {
                    self.stats.delayed += 1;
                    self.deferred.push((now + cfg.delay, pid, sig));
                    return SendOutcome::Delayed;
                }
            }
        }
        self.send(pid, sig);
        SendOutcome::Delivered
    }

    /// Moves deferred sends whose delay has elapsed into the queues (with
    /// the usual coalescing). The kernel calls this when its clock advances.
    pub fn deliver_due(&mut self, now: SimTime) {
        if self.deferred.is_empty() {
            return;
        }
        let mut due = Vec::new();
        self.deferred.retain(|&(t, pid, sig)| {
            if t <= now {
                due.push((pid, sig));
                false
            } else {
                true
            }
        });
        for (pid, sig) in due {
            self.send(pid, sig);
        }
    }

    /// Drains and returns all pending signals for `pid`, in delivery order.
    pub fn take(&mut self, pid: Pid) -> Vec<Signal> {
        self.queues.remove(&pid).unwrap_or_default()
    }

    /// True if `pid` has a pending signal of the given kind.
    pub fn has_pending(&self, pid: Pid, sig: Signal) -> bool {
        self.queues.get(&pid).is_some_and(|q| q.contains(&sig))
    }

    /// Number of pending signals for `pid`.
    pub fn pending_count(&self, pid: Pid) -> usize {
        self.queues.get(&pid).map_or(0, Vec::len)
    }

    /// Discards all state for an exited process — including deferred
    /// in-flight sends, so a later process reusing the pid cannot inherit
    /// the dead one's signals.
    pub fn forget(&mut self, pid: Pid) {
        self.queues.remove(&pid);
        self.deferred.retain(|&(_, p, _)| p != pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_is_fifo() {
        let mut bus = SignalBus::new();
        bus.send(1, Signal::LowMemory);
        bus.send(1, Signal::HighMemory);
        assert_eq!(bus.take(1), vec![Signal::LowMemory, Signal::HighMemory]);
        assert!(bus.take(1).is_empty());
    }

    #[test]
    fn pressure_signals_coalesce() {
        let mut bus = SignalBus::new();
        bus.send(1, Signal::HighMemory);
        bus.send(1, Signal::HighMemory);
        bus.send(1, Signal::HighMemory);
        assert_eq!(bus.pending_count(1), 1);
    }

    #[test]
    fn kill_does_not_coalesce() {
        let mut bus = SignalBus::new();
        bus.send(1, Signal::Kill);
        bus.send(1, Signal::Kill);
        assert_eq!(bus.pending_count(1), 2);
    }

    #[test]
    fn queues_are_per_process() {
        let mut bus = SignalBus::new();
        bus.send(1, Signal::LowMemory);
        bus.send(2, Signal::HighMemory);
        assert!(bus.has_pending(1, Signal::LowMemory));
        assert!(!bus.has_pending(1, Signal::HighMemory));
        assert_eq!(bus.take(2), vec![Signal::HighMemory]);
        assert_eq!(bus.take(1), vec![Signal::LowMemory]);
    }

    #[test]
    fn coalescing_resets_after_drain() {
        let mut bus = SignalBus::new();
        bus.send(1, Signal::HighMemory);
        let _ = bus.take(1);
        bus.send(1, Signal::HighMemory);
        assert_eq!(
            bus.pending_count(1),
            1,
            "a new signal after drain must queue"
        );
    }

    #[test]
    fn forget_clears_state() {
        let mut bus = SignalBus::new();
        bus.send(9, Signal::LowMemory);
        bus.forget(9);
        assert_eq!(bus.pending_count(9), 0);
    }

    #[test]
    fn lossy_bus_drops_deterministically() {
        let run = || {
            let mut bus = SignalBus::new();
            bus.set_fault(Some(SignalFaultConfig::lossy(7, 0.5)));
            (0..64)
                .map(|i| bus.send_at(i, Signal::HighMemory, SimTime::ZERO))
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same fault sequence");
        assert!(a.contains(&SendOutcome::Dropped));
        assert!(a.contains(&SendOutcome::Delivered));
    }

    #[test]
    fn kill_is_immune_to_fault_injection() {
        let mut bus = SignalBus::new();
        bus.set_fault(Some(SignalFaultConfig::lossy(1, 1.0)));
        assert_eq!(
            bus.send_at(3, Signal::Kill, SimTime::ZERO),
            SendOutcome::Delivered
        );
        assert_eq!(
            bus.send_at(3, Signal::HighMemory, SimTime::ZERO),
            SendOutcome::Dropped
        );
        assert_eq!(bus.take(3), vec![Signal::Kill]);
        assert_eq!(bus.fault_stats().dropped, 1);
    }

    #[test]
    fn delayed_signals_arrive_after_the_delay() {
        let mut bus = SignalBus::new();
        bus.set_fault(Some(SignalFaultConfig::laggy(
            2,
            1.0,
            SimDuration::from_secs(5),
        )));
        let t0 = SimTime::ZERO;
        assert_eq!(bus.send_at(1, Signal::HighMemory, t0), SendOutcome::Delayed);
        bus.deliver_due(t0 + SimDuration::from_secs(4));
        assert_eq!(bus.pending_count(1), 0, "still in flight");
        bus.deliver_due(t0 + SimDuration::from_secs(5));
        assert_eq!(bus.take(1), vec![Signal::HighMemory]);
        assert_eq!(bus.fault_stats().delayed, 1);
    }

    #[test]
    fn forget_purges_deferred_sends() {
        let mut bus = SignalBus::new();
        bus.set_fault(Some(SignalFaultConfig::laggy(
            2,
            1.0,
            SimDuration::from_secs(1),
        )));
        bus.send_at(4, Signal::HighMemory, SimTime::ZERO);
        bus.forget(4); // process died; a pid-reuser must not inherit this
        bus.deliver_due(SimTime::from_secs(10));
        assert_eq!(bus.pending_count(4), 0);
    }
}
