//! Application-defined real-time signals.
//!
//! The paper's monitor uses two Linux real-time signal numbers for the low
//! and high memory-pressure notifications (§6). We model them as an enum plus
//! a `SIGKILL` analogue used by the kill-escalation path. Delivery is a
//! per-process FIFO queue that the process drains at its next scheduling
//! point, mirroring asynchronous signal delivery without needing actual
//! interrupt semantics.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::process::Pid;

/// A signal deliverable to a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Signal {
    /// Early warning: system memory is becoming scarce (low threshold).
    LowMemory,
    /// Memory pressure is severe (high threshold); reclaim aggressively and
    /// run the adaptive allocation protocol.
    HighMemory,
    /// Unconditional termination (OOM killer / M3 kill escalation).
    Kill,
}

/// Per-process FIFO signal queues.
///
/// Duplicate *pending* memory-pressure signals are coalesced, matching the
/// semantics of POSIX real-time signal queues under M3's once-per-poll
/// sending discipline (a process that has not yet handled a pending high
/// signal gains nothing from a second copy).
#[derive(Debug, Clone, Default)]
pub struct SignalBus {
    queues: BTreeMap<Pid, Vec<Signal>>,
}

impl SignalBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        SignalBus::default()
    }

    /// Queues `sig` for `pid`. Memory-pressure signals already pending for
    /// the process are not duplicated; `Kill` always queues.
    pub fn send(&mut self, pid: Pid, sig: Signal) {
        let q = self.queues.entry(pid).or_default();
        if sig == Signal::Kill || !q.contains(&sig) {
            q.push(sig);
        }
    }

    /// Drains and returns all pending signals for `pid`, in delivery order.
    pub fn take(&mut self, pid: Pid) -> Vec<Signal> {
        self.queues.remove(&pid).unwrap_or_default()
    }

    /// True if `pid` has a pending signal of the given kind.
    pub fn has_pending(&self, pid: Pid, sig: Signal) -> bool {
        self.queues.get(&pid).is_some_and(|q| q.contains(&sig))
    }

    /// Number of pending signals for `pid`.
    pub fn pending_count(&self, pid: Pid) -> usize {
        self.queues.get(&pid).map_or(0, Vec::len)
    }

    /// Discards all state for an exited process.
    pub fn forget(&mut self, pid: Pid) {
        self.queues.remove(&pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_is_fifo() {
        let mut bus = SignalBus::new();
        bus.send(1, Signal::LowMemory);
        bus.send(1, Signal::HighMemory);
        assert_eq!(bus.take(1), vec![Signal::LowMemory, Signal::HighMemory]);
        assert!(bus.take(1).is_empty());
    }

    #[test]
    fn pressure_signals_coalesce() {
        let mut bus = SignalBus::new();
        bus.send(1, Signal::HighMemory);
        bus.send(1, Signal::HighMemory);
        bus.send(1, Signal::HighMemory);
        assert_eq!(bus.pending_count(1), 1);
    }

    #[test]
    fn kill_does_not_coalesce() {
        let mut bus = SignalBus::new();
        bus.send(1, Signal::Kill);
        bus.send(1, Signal::Kill);
        assert_eq!(bus.pending_count(1), 2);
    }

    #[test]
    fn queues_are_per_process() {
        let mut bus = SignalBus::new();
        bus.send(1, Signal::LowMemory);
        bus.send(2, Signal::HighMemory);
        assert!(bus.has_pending(1, Signal::LowMemory));
        assert!(!bus.has_pending(1, Signal::HighMemory));
        assert_eq!(bus.take(2), vec![Signal::HighMemory]);
        assert_eq!(bus.take(1), vec![Signal::LowMemory]);
    }

    #[test]
    fn coalescing_resets_after_drain() {
        let mut bus = SignalBus::new();
        bus.send(1, Signal::HighMemory);
        let _ = bus.take(1);
        bus.send(1, Signal::HighMemory);
        assert_eq!(
            bus.pending_count(1),
            1,
            "a new signal after drain must queue"
        );
    }

    #[test]
    fn forget_clears_state() {
        let mut bus = SignalBus::new();
        bus.send(9, Signal::LowMemory);
        bus.forget(9);
        assert_eq!(bus.pending_count(9), 0);
    }
}
