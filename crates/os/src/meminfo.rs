//! A `/proc/meminfo` analogue.
//!
//! The paper's monitor polls `MemAvailable` once per second (§6). We expose
//! the same quantity: the bytes an application could allocate without pushing
//! the system into swap.

use serde::{Deserialize, Serialize};

/// Snapshot of system memory state, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemInfo {
    /// Total physical memory visible to applications (the cgroup limit in
    /// the paper's testbed: 64 GB).
    pub total: u64,
    /// Physical memory currently resident.
    pub used: u64,
    /// `MemAvailable`: bytes allocatable without swapping.
    pub available: u64,
    /// Bytes currently swapped out (zero unless the system is overcommitted).
    pub swapped: u64,
}

impl MemInfo {
    /// Fraction of physical memory in use, in `[0, 1]`.
    pub fn used_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.used as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn used_fraction_is_bounded() {
        let mi = MemInfo {
            total: 100,
            used: 25,
            available: 75,
            swapped: 0,
        };
        assert!((mi.used_fraction() - 0.25).abs() < 1e-12);
        let zero = MemInfo {
            total: 0,
            used: 0,
            available: 0,
            swapped: 0,
        };
        assert_eq!(zero.used_fraction(), 0.0);
    }
}
