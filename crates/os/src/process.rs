//! Per-process kernel-side accounting.

use m3_sim::clock::SimTime;
use serde::{Deserialize, Serialize};

/// A process identifier. `0` is reserved for system-wide trace events.
pub type Pid = u64;

/// Life-cycle state of a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcessState {
    /// Running normally.
    Running,
    /// Terminated voluntarily (workload finished).
    Exited,
    /// Terminated by the kernel (OOM or M3 kill escalation).
    Killed,
}

/// Kernel-side process control block.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Process {
    /// The process identifier.
    pub pid: Pid,
    /// Human-readable name (command line in the paper's `ps` terms).
    pub name: String,
    /// When the process was spawned (Algorithm 1 sorts on this).
    pub spawned_at: SimTime,
    /// Resident set size in bytes (physical + swapped-out share).
    pub committed: u64,
    /// Life-cycle state.
    pub state: ProcessState,
    /// Monotonic spawn counter, unique across the kernel's lifetime even
    /// when pids are reused. A pid identifies a *slot*; the incarnation
    /// identifies the *process* — registries that remember pids across
    /// reuse must compare this (the PID-file staleness problem of §6).
    pub incarnation: u64,
}

impl Process {
    /// Creates a new running process with no memory.
    pub fn new(pid: Pid, name: impl Into<String>, spawned_at: SimTime, incarnation: u64) -> Self {
        Process {
            pid,
            name: name.into(),
            spawned_at,
            committed: 0,
            state: ProcessState::Running,
            incarnation,
        }
    }

    /// True while the process can run and receive signals.
    pub fn is_alive(&self) -> bool {
        self.state == ProcessState::Running
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_process_is_alive_and_empty() {
        let p = Process::new(3, "spark-executor", SimTime::from_secs(7), 3);
        assert!(p.is_alive());
        assert_eq!(p.committed, 0);
        assert_eq!(p.spawned_at.as_secs(), 7);
        assert_eq!(p.name, "spark-executor");
        assert_eq!(p.incarnation, 3);
    }

    #[test]
    fn terminal_states_are_not_alive() {
        let mut p = Process::new(1, "x", SimTime::ZERO, 1);
        p.state = ProcessState::Exited;
        assert!(!p.is_alive());
        p.state = ProcessState::Killed;
        assert!(!p.is_alive());
    }
}
