//! Disk cost model.
//!
//! The paper's nodes each have one 7,200 RPM hard drive that serves HDFS
//! re-reads when Spark's block cache misses, and suffers contention when
//! concurrent jobs overlap ("in an unmodified system ... jobs overlap and
//! additionally suffer from disk contention", §7.2.1). The model charges a
//! seek plus sequential transfer per request, scaled by the number of
//! concurrent readers.

use m3_sim::clock::SimDuration;
use serde::{Deserialize, Serialize};

/// A simple seek + streaming-bandwidth disk model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DiskModel {
    /// Sustained sequential bandwidth in bytes per second.
    pub bandwidth: u64,
    /// Average positioning cost per request, in milliseconds.
    pub seek_ms: u64,
    /// Extra fractional cost per additional concurrent reader (head
    /// contention on a spinning disk).
    pub contention: f64,
}

impl DiskModel {
    /// A 7,200 RPM hard drive, matching the paper's testbed
    /// (~160 MB/s streaming, ~8 ms positioning).
    pub fn hdd_7200rpm() -> Self {
        DiskModel {
            bandwidth: 160 * 1024 * 1024,
            seek_ms: 8,
            // Concurrent jobs interleave compute with I/O, so an extra
            // *running* reader costs well under a full head-contention
            // factor on average.
            contention: 0.35,
        }
    }

    /// Time to read `bytes` with `readers` concurrent streams
    /// (`readers >= 1`; `0` is treated as `1`).
    pub fn read_time(&self, bytes: u64, readers: usize) -> SimDuration {
        let readers = readers.max(1);
        let transfer_ms = bytes as f64 * 1000.0 / self.bandwidth as f64;
        let factor = 1.0 + self.contention * (readers - 1) as f64;
        SimDuration::from_millis(((self.seek_ms as f64 + transfer_ms) * factor).round() as u64)
    }

    /// Time to write `bytes` (same model as reads; spill path).
    pub fn write_time(&self, bytes: u64, writers: usize) -> SimDuration {
        self.read_time(bytes, writers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_sim::units::MIB;

    #[test]
    fn read_time_scales_with_size() {
        let d = DiskModel::hdd_7200rpm();
        let small = d.read_time(MIB, 1);
        let large = d.read_time(100 * MIB, 1);
        assert!(large > small);
        // 100 MiB at 160 MiB/s is 625 ms plus one seek.
        assert!((large.as_millis() as i64 - 633).abs() < 10, "got {large}");
    }

    #[test]
    fn contention_slows_reads() {
        let d = DiskModel::hdd_7200rpm();
        let alone = d.read_time(10 * MIB, 1);
        let contended = d.read_time(10 * MIB, 3);
        assert!(contended > alone);
        let expect = alone.as_millis() as f64 * (1.0 + 0.35 * 2.0);
        assert!((contended.as_millis() as f64 - expect).abs() < 3.0);
    }

    #[test]
    fn zero_readers_treated_as_one() {
        let d = DiskModel::hdd_7200rpm();
        assert_eq!(d.read_time(MIB, 0), d.read_time(MIB, 1));
    }

    #[test]
    fn write_matches_read_model() {
        let d = DiskModel::hdd_7200rpm();
        assert_eq!(d.write_time(5 * MIB, 2), d.read_time(5 * MIB, 2));
    }
}
