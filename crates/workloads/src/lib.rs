//! Workload assembly for the M3 evaluation (§7).
//!
//! This crate composes every substrate into runnable experiments:
//!
//! - [`apps`] — a uniform wrapper over the application drivers (Spark
//!   executors, cache servers, and the unmodified-JVM "alternating" servers
//!   of Fig. 2), with blueprints that defer construction to start time;
//! - [`machine`] — the world loop: one simulated node with a kernel, a
//!   disk, an optional M3 monitor, scheduled application starts, signal
//!   delivery, profile sampling, and OOM handling;
//! - [`hibench`] — calibrated per-node parameters for the three HiBench
//!   jobs (k-means / PageRank / n-weight) and the cache benchmarks;
//! - [`kvtrace`] — the key-granular cache-trace sweep: a production-shaped
//!   Zipf trace over millions of keys replayed under the M3, stock, and
//!   static-limit policies on an undersized node;
//! - [`scenario`] — the sixteen evaluation workloads (twelve Fig. 5
//!   workloads plus the four worst cases of Fig. 8);
//! - [`settings`] — the five configuration regimes: Default, Globally
//!   Optimal, Oracle, Oracle-with-Spark-configuration, and M3 (§7.1.2);
//! - [`runner`] — runs a scenario under a setting and extracts per-app
//!   runtimes and speedups;
//! - [`parallel`] — the parallel deterministic experiment harness: a
//!   work-sharing thread pool over independent runs plus a
//!   content-addressed run memoization cache;
//! - [`cluster`] — aggregates N independent worker nodes, job completion =
//!   slowest node (the paper's 8-worker setup);
//! - [`fleet`] — the pressure-aware cluster scheduler: admission control,
//!   least-pressured placement, and red-zone rebalancing over the nodes'
//!   exported pressure summaries;
//! - [`search`] — the bounded grid search standing in for the paper's
//!   four-month, 3400-test configuration hunt;
//! - [`alternating`] — the Cassandra/Elasticsearch-style alternating-load
//!   servers of Fig. 2.

pub mod alternating;
pub mod apps;
pub mod cluster;
pub mod faults;
pub mod fleet;
pub mod hibench;
pub mod kvtrace;
pub mod machine;
pub mod parallel;
pub mod runner;
pub mod scenario;
pub mod search;
pub mod settings;

pub use apps::{AnyApp, AppBlueprint};
pub use faults::{
    ChurnEvent, DegradationReport, FaultEvent, FaultKind, FaultPlan, FaultRecovery, OutageWindow,
    UnappliedFault, UnappliedReason,
};
pub use fleet::{
    demand_estimate, fleet_cache_stats, run_fleet, run_fleet_cached, FleetConfig, FleetResult,
    JobOutcome, NodeSpec, PlacementPolicy,
};
pub use kvtrace::{
    kvtrace_cache_stats, node_phys_bytes, run_cache_trace, run_cache_trace_cached,
    working_set_bytes, CachePolicy, CacheTraceOutcome,
};
pub use machine::{AppResult, Machine, MachineConfig, RunResult, ScheduleEntry};
pub use parallel::{
    cache_stats, parallel_map, run_scenario_cached, run_scenario_cached_faulted,
    run_scenarios_parallel, run_scenarios_parallel_with, worker_threads, CacheStats,
};
pub use runner::{app_name, run_scenario, run_scenario_with_faults, ScenarioOutcome};
pub use scenario::{AppKind, Scenario};
pub use settings::{AppConfig, Setting, SettingKind};
