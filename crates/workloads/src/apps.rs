//! Uniform application wrapper and deferred-construction blueprints.
//!
//! The world loop treats every application the same way: construct it when
//! its scheduled start arrives, tick it with a time budget, deliver
//! threshold signals, and record its completion. [`AnyApp`] is the uniform
//! wrapper; [`AppBlueprint`] is the recipe (configs captured up front,
//! process spawned at start time so Algorithm 1's spawn-order sorting sees
//! the real schedule).

use m3_cache::{KvApp, KvWorkload, TraceWorkload};
use m3_core::{M3Participant, SchedulerConfig, SignalOutcome, ThresholdSignal};
use m3_framework::{JobSpec, SparkApp, SparkConfig};
use m3_os::{DiskModel, Kernel, Pid};
use m3_runtime::{AllocatorKind, GoConfig, JvmConfig};
use m3_sim::clock::{SimDuration, SimTime};

use crate::alternating::{AlternatingApp, AlternatingProfile};

/// A recipe for constructing an application at its scheduled start.
#[derive(Debug, Clone)]
pub enum AppBlueprint {
    /// A Spark executor running an analytics job.
    Spark {
        /// JVM configuration (heap size, M3 mode).
        jvm: JvmConfig,
        /// Spark configuration (memory fractions, M3 mode).
        spark: SparkConfig,
        /// The job to run.
        job: JobSpec,
    },
    /// A Go-Cache server (cache library on the Go runtime).
    GoCache {
        /// Go runtime configuration (GOGC, M3 mode).
        go: GoConfig,
        /// The benchmark workload.
        workload: KvWorkload,
        /// Static cache size (ignored under M3).
        max_bytes: u64,
        /// Whether the cache runs the M3 policies.
        m3_mode: bool,
    },
    /// A Memcached server (native allocator).
    Memcached {
        /// Which allocator the binary links (`malloc` or `jemalloc`).
        allocator: AllocatorKind,
        /// The benchmark workload.
        workload: KvWorkload,
        /// Static cache size (ignored under M3).
        max_bytes: u64,
        /// Whether the cache runs the M3 policies.
        m3_mode: bool,
    },
    /// A Memcached server driven by a production-shaped key-granular trace
    /// (Zipf popularity, tiered values, GET/SET/DELETE mix) instead of the
    /// analytic uniform workload.
    TraceCache {
        /// The trace workload (keys, ops, skew, traffic pattern, seed).
        workload: TraceWorkload,
        /// Static cache size (ignored under M3; `u64::MAX / 2` ≈ unbounded).
        max_bytes: u64,
        /// Whether the cache runs the M3 policies.
        m3_mode: bool,
    },
    /// An unmodified JVM server with alternating load (Fig. 2).
    Alternating {
        /// JVM configuration.
        jvm: JvmConfig,
        /// The load profile.
        profile: AlternatingProfile,
    },
}

impl AppBlueprint {
    /// Constructs the application in process `pid`.
    pub fn build(&self, pid: Pid) -> AnyApp {
        self.build_salted(pid, 0)
    }

    /// Constructs the application with a node-specific salt, so different
    /// cluster nodes see different task-scheduling orders.
    pub fn build_salted(&self, pid: Pid, salt: u64) -> AnyApp {
        self.build_configured(pid, salt, SchedulerConfig::default())
    }

    /// Constructs the application with a salt and an explicit work-packet
    /// scheduler configuration (worker count, bucket-order ablation).
    pub fn build_configured(&self, pid: Pid, salt: u64, sched: SchedulerConfig) -> AnyApp {
        match self.clone() {
            AppBlueprint::Spark { jvm, spark, job } => AnyApp::Spark(
                SparkApp::new(pid, jvm, spark, job)
                    .with_seed(salt)
                    .with_scheduler(sched),
            ),
            AppBlueprint::GoCache {
                go,
                workload,
                max_bytes,
                m3_mode,
            } => AnyApp::Kv(
                KvApp::go_cache(pid, go, workload, max_bytes, m3_mode).with_scheduler(sched),
            ),
            AppBlueprint::Memcached {
                allocator,
                workload,
                max_bytes,
                m3_mode,
            } => AnyApp::Kv(
                KvApp::memcached(pid, allocator, workload, max_bytes, m3_mode)
                    .with_scheduler(sched),
            ),
            AppBlueprint::TraceCache {
                workload,
                max_bytes,
                m3_mode,
            } => AnyApp::Kv(
                KvApp::trace_memcached(pid, workload, max_bytes, m3_mode).with_scheduler(sched),
            ),
            AppBlueprint::Alternating { jvm, profile } => {
                AnyApp::Alternating(AlternatingApp::new(pid, jvm, profile).with_scheduler(sched))
            }
        }
    }

    /// True if this blueprint participates in M3 (registers with the
    /// monitor). Alternating servers always register: their (possibly
    /// modified) JVM is the participating layer.
    pub fn is_m3(&self) -> bool {
        match self {
            AppBlueprint::Spark { spark, .. } => spark.m3_mode,
            AppBlueprint::GoCache { m3_mode, .. }
            | AppBlueprint::Memcached { m3_mode, .. }
            | AppBlueprint::TraceCache { m3_mode, .. } => *m3_mode,
            AppBlueprint::Alternating { jvm, .. } => jvm.return_to_os,
        }
    }
}

/// A running application of any kind.
///
/// The variants differ in size (a Spark executor carries its visit order);
/// at most a handful of applications exist per node, so boxing would cost
/// clarity for no practical saving.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum AnyApp {
    /// Spark executor.
    Spark(SparkApp),
    /// Cache server (Go-Cache or Memcached).
    Kv(KvApp),
    /// Alternating-load JVM server.
    Alternating(AlternatingApp),
}

impl AnyApp {
    /// The owning process.
    pub fn pid(&self) -> Pid {
        match self {
            AnyApp::Spark(a) => a.pid(),
            AnyApp::Kv(a) => a.pid(),
            AnyApp::Alternating(a) => a.pid(),
        }
    }

    /// Whether this app issues disk reads (for the contention count).
    pub fn uses_disk(&self) -> bool {
        matches!(self, AnyApp::Spark(_))
    }

    /// Runs the app for one tick; returns true once finished.
    pub fn tick(
        &mut self,
        os: &mut Kernel,
        disk: &DiskModel,
        now: SimTime,
        budget: SimDuration,
        readers: usize,
    ) -> bool {
        match self {
            AnyApp::Spark(a) => a.tick(os, disk, now, budget, readers).finished,
            AnyApp::Kv(a) => a.tick(os, now, budget).finished,
            AnyApp::Alternating(a) => a.tick(os, now, budget),
        }
    }

    /// Delivers a threshold signal.
    pub fn handle_signal(
        &mut self,
        sig: ThresholdSignal,
        os: &mut Kernel,
        now: SimTime,
    ) -> SignalOutcome {
        match self {
            AnyApp::Spark(a) => a.handle_signal(sig, os, now),
            AnyApp::Kv(a) => a.handle_signal(sig, os, now),
            AnyApp::Alternating(a) => a.handle_signal(sig, os, now),
        }
    }

    /// Adds externally incurred time (signal handling) to the app's debt.
    pub fn add_debt(&mut self, d: SimDuration) {
        match self {
            AnyApp::Spark(a) => a.add_debt(d),
            AnyApp::Kv(a) => a.add_debt(d),
            AnyApp::Alternating(a) => a.add_debt(d),
        }
    }

    /// True if the app failed (stock Spark below its heap floor).
    pub fn failed(&self) -> bool {
        match self {
            AnyApp::Spark(a) => a.failed(),
            _ => false,
        }
    }

    /// Total GC pause accumulated by the app's runtime layer, if any.
    pub fn gc_pause(&self) -> SimDuration {
        match self {
            AnyApp::Spark(a) => a.jvm().stats.total_pause,
            AnyApp::Kv(a) => match a.backend() {
                m3_cache::KvBackend::Go(g) => g.stats.total_pause,
                m3_cache::KvBackend::Native(_) => SimDuration::ZERO,
            },
            AnyApp::Alternating(a) => a.jvm().stats.total_pause,
        }
    }

    /// Time spent in framework-level memory management (Spark's capacity
    /// misses), if applicable.
    pub fn mm_time(&self) -> SimDuration {
        match self {
            AnyApp::Spark(a) => a.stats.spark_mm,
            _ => SimDuration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_framework::JobKind;
    use m3_os::KernelConfig;
    use m3_sim::units::{GIB, MIB};

    fn job() -> JobSpec {
        JobSpec {
            kind: JobKind::KMeans,
            name: "m".into(),
            input_bytes: GIB,
            working_set: GIB,
            iterations: 1,
            compute_ms_per_block: 10,
            churn_per_block: MIB,
            min_heap: 0,
            churn_survival: 0.08,
            exec_demand: 0,
        }
    }

    #[test]
    fn blueprint_builds_and_runs_each_kind() {
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let disk = DiskModel::hdd_7200rpm();
        let blueprints = vec![
            AppBlueprint::Spark {
                jvm: JvmConfig::stock(8 * GIB),
                spark: SparkConfig::default(),
                job: job(),
            },
            AppBlueprint::GoCache {
                go: GoConfig::stock(100),
                workload: KvWorkload {
                    key_space: 1000,
                    total_requests: 1000,
                    ..KvWorkload::paper_gocache()
                },
                max_bytes: GIB,
                m3_mode: false,
            },
            AppBlueprint::Memcached {
                allocator: AllocatorKind::Jemalloc,
                workload: KvWorkload {
                    key_space: 1000,
                    total_requests: 1000,
                    ..KvWorkload::paper_memtier()
                },
                max_bytes: GIB,
                m3_mode: false,
            },
        ];
        for bp in blueprints {
            let pid = os.spawn("app");
            let mut app = bp.build(pid);
            assert_eq!(app.pid(), pid);
            assert!(!app.failed());
            let mut now = SimTime::ZERO;
            let tick = SimDuration::from_millis(100);
            let mut done = false;
            for _ in 0..400_000 {
                if app.tick(&mut os, &disk, now, tick, 1) {
                    done = true;
                    break;
                }
                now += tick;
            }
            assert!(done, "app must finish");
            os.exit(pid);
        }
    }

    #[test]
    fn m3_flags_detected() {
        assert!(AppBlueprint::Spark {
            jvm: JvmConfig::m3(62 * GIB),
            spark: SparkConfig::m3(),
            job: job(),
        }
        .is_m3());
        assert!(!AppBlueprint::Spark {
            jvm: JvmConfig::stock(8 * GIB),
            spark: SparkConfig::default(),
            job: job(),
        }
        .is_m3());
    }

    #[test]
    fn disk_usage_flag() {
        let mut os = Kernel::new(KernelConfig::with_total(GIB));
        let pid = os.spawn("x");
        let app = AppBlueprint::Spark {
            jvm: JvmConfig::stock(GIB),
            spark: SparkConfig::default(),
            job: job(),
        }
        .build(pid);
        assert!(app.uses_disk());
    }
}
