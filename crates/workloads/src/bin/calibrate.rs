//! Calibration probe: prints per-workload runtimes under each setting.
//!
//! Not an experiment deliverable — a development tool for checking that the
//! simulation reproduces the paper's *shapes* (who wins, by roughly what
//! factor) before the figure harnesses are run. Usage:
//!
//! ```text
//! cargo run --release -p m3-workloads --bin calibrate [WORKLOAD ...]
//! ```

use m3_sim::clock::SimDuration;
use m3_workloads::machine::MachineConfig;
use m3_workloads::runner::{run_scenario, speedup_report};
use m3_workloads::scenario::{all_scenarios, Scenario};
use m3_workloads::search::{search_oracle, search_ows, SearchSpace};
use m3_workloads::settings::Setting;

fn fmt(rts: &[Option<f64>]) -> String {
    rts.iter()
        .map(|r| match r {
            Some(s) => format!("{s:7.0}"),
            None => "   FAIL".to_string(),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = MachineConfig::stock_64gb();
    cfg.sample_period = None;
    cfg.max_time = SimDuration::from_secs(40_000);
    let space = SearchSpace::paper();

    let scenarios: Vec<Scenario> = if args.is_empty() {
        all_scenarios()
    } else {
        all_scenarios()
            .into_iter()
            .filter(|s| args.iter().any(|a| s.name.starts_with(a.as_str())))
            .collect()
    };

    println!(
        "{:<10} {:>9} {:>24} {:>24} {:>8} {:>8}",
        "workload", "M3 mean", "Oracle per-app", "M3 per-app", "vs Orcl", "vs OWS"
    );
    for scenario in &scenarios {
        let m3 = run_scenario(scenario, &Setting::m3(scenario.len()), cfg);
        let default = run_scenario(scenario, &Setting::default_for(scenario.len()), cfg);
        let oracle_setting = search_oracle(scenario, &space, cfg);
        let oracle = run_scenario(scenario, &oracle_setting, cfg);
        let ows_setting = search_ows(scenario, &space, cfg);
        let ows = run_scenario(scenario, &ows_setting, cfg);
        let rep_o = speedup_report(&m3, &oracle);
        let rep_w = speedup_report(&m3, &ows);
        println!(
            "{:<10} {:>9.0} {:>24} {:>24} {:>8} {:>8}   default: {}",
            scenario.name,
            m3.mean_runtime_secs().unwrap_or(f64::NAN),
            fmt(&oracle.runtimes_secs()),
            fmt(&m3.runtimes_secs()),
            rep_o
                .mean_speedup
                .map_or("INF".into(), |s| format!("{s:.2}x")),
            rep_w
                .mean_speedup
                .map_or("INF".into(), |s| format!("{s:.2}x")),
            fmt(&default.runtimes_secs()),
        );
        let heaps: Vec<String> = oracle_setting
            .per_app
            .iter()
            .map(|c| format!("{:.0}G", c.heap as f64 / (1 << 30) as f64))
            .collect();
        println!("           oracle heaps: {heaps:?}");
    }
}
