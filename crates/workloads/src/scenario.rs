//! The evaluation workloads (§7.1.1, Figs. 5 and 8).
//!
//! A workload is a sequence of applications started with fixed delays.
//! Names follow the paper: application letters (W = n-weight, P = PageRank,
//! C = Go-Cache, M = k-means) followed by the inter-job delay in seconds —
//! e.g. `MMW 180` starts two k-means jobs and an n-weight job 180 s apart.

use m3_sim::clock::SimDuration;
use m3_sim::trace::Criticality;
use serde::{Deserialize, Serialize};

/// The kinds of application the evaluation schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppKind {
    /// HiBench k-means on Spark ('M').
    KMeans,
    /// HiBench PageRank on Spark ('P').
    PageRank,
    /// HiBench n-weight on Spark ('W').
    NWeight,
    /// The Go-Cache benchmark ('C').
    GoCache,
    /// Memcached under memtier (Fig. 9 only).
    Memcached,
}

impl AppKind {
    /// The one-letter code used in workload names.
    pub fn code(self) -> char {
        match self {
            AppKind::KMeans => 'M',
            AppKind::PageRank => 'P',
            AppKind::NWeight => 'W',
            AppKind::GoCache => 'C',
            AppKind::Memcached => 'X',
        }
    }

    /// Parses a one-letter code.
    pub fn from_code(c: char) -> Option<Self> {
        match c {
            'M' => Some(AppKind::KMeans),
            'P' => Some(AppKind::PageRank),
            'W' => Some(AppKind::NWeight),
            'C' => Some(AppKind::GoCache),
            'X' => Some(AppKind::Memcached),
            _ => None,
        }
    }
}

/// Criticality class and optional latency SLO of one scheduled job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JobClass {
    /// The job's criticality class.
    pub crit: Criticality,
    /// Latency SLO in milliseconds; 0 declares no SLO.
    pub slo_ms: u64,
}

impl Default for JobClass {
    fn default() -> Self {
        JobClass {
            crit: Criticality::Standard,
            slo_ms: 0,
        }
    }
}

impl JobClass {
    /// A classed job with an SLO (`slo_ms == 0` declares none).
    pub fn new(crit: Criticality, slo_ms: u64) -> Self {
        JobClass { crit, slo_ms }
    }

    /// True for the implicit class of unclassified jobs.
    pub fn is_default(&self) -> bool {
        *self == JobClass::default()
    }
}

/// One evaluation workload: applications with start offsets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scenario {
    /// The paper-style name, e.g. `"MMW 180"`.
    pub name: String,
    /// `(kind, start offset)` per application, in schedule order.
    pub apps: Vec<(AppKind, SimDuration)>,
    /// Per-application criticality classes, parallel to `apps`. Empty means
    /// every job is `Standard` with no SLO (the pre-classification default),
    /// which keeps unclassified scenarios content-addressing exactly as
    /// before classes existed.
    pub classes: Vec<JobClass>,
}

impl Scenario {
    /// Builds a scenario from letter codes and a uniform inter-job delay in
    /// seconds (the paper's naming scheme).
    ///
    /// # Panics
    ///
    /// Panics on an unknown letter.
    pub fn uniform(codes: &str, delay_secs: u64) -> Self {
        let apps = codes
            .chars()
            .enumerate()
            .map(|(i, c)| {
                let kind = AppKind::from_code(c)
                    .unwrap_or_else(|| panic!("unknown app code {c:?} in {codes:?}"));
                (kind, SimDuration::from_secs(delay_secs * i as u64))
            })
            .collect();
        Scenario {
            name: format!("{codes} {delay_secs}"),
            apps,
            classes: Vec::new(),
        }
    }

    /// Attaches criticality classes, one per application.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is non-empty and its length differs from the
    /// application count.
    pub fn with_classes(mut self, classes: Vec<JobClass>) -> Self {
        assert!(
            classes.is_empty() || classes.len() == self.apps.len(),
            "classes must be empty or one per application ({} apps, {} classes)",
            self.apps.len(),
            classes.len()
        );
        // An all-default vector is the same declaration as an empty one;
        // normalise so the two content-address identically.
        if classes.iter().all(JobClass::is_default) {
            self.classes = Vec::new();
        } else {
            self.classes = classes;
        }
        self
    }

    /// The class of application `job` (default for unclassified scenarios).
    pub fn class_of(&self, job: usize) -> JobClass {
        self.classes.get(job).copied().unwrap_or_default()
    }

    /// True if any job declares a non-default class or an SLO.
    pub fn is_classified(&self) -> bool {
        !self.classes.is_empty()
    }

    /// Number of applications.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// True if the scenario schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// True if every application is the same kind started at the same time
    /// — the theoretical worst case for M3 (§7.1.1: "identical
    /// applications, with no delay, guarantee that there is no possibility
    /// for improvement").
    pub fn is_worst_case(&self) -> bool {
        let Some(&(first, _)) = self.apps.first() else {
            return false;
        };
        self.apps.iter().all(|&(k, d)| k == first && d.is_zero())
    }
}

/// The twelve Fig. 5 workloads, in the paper's order.
pub fn figure5_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::uniform("WPM", 180),
        Scenario::uniform("MCM", 180),
        Scenario::uniform("CPW", 180),
        Scenario::uniform("WMP", 240),
        Scenario::uniform("CWM", 180),
        Scenario::uniform("CCW", 300),
        Scenario::uniform("WMM", 300),
        Scenario::uniform("MMM", 180),
        Scenario::uniform("CMW", 180),
        Scenario::uniform("MWP", 180),
        Scenario::uniform("MMW", 180),
        Scenario::uniform("CCC", 480),
    ]
}

/// The four theoretical-worst-case workloads of Fig. 8.
pub fn figure8_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::uniform("PPP", 0),
        Scenario::uniform("WW", 0),
        Scenario::uniform("CCC", 0),
        Scenario::uniform("MMM", 0),
    ]
}

/// All sixteen evaluation workloads.
pub fn all_scenarios() -> Vec<Scenario> {
    let mut v = figure5_scenarios();
    v.extend(figure8_scenarios());
    v
}

/// The canonical fleet workload: six mixed jobs arriving two minutes apart
/// — enough jobs to exercise placement, reservation-based admission and
/// deferral on a small fleet, pinned by the golden snapshot test.
pub fn fleet_canonical() -> Scenario {
    Scenario::uniform("MMWMCM", 120)
}

/// The fleet-scale workload: ten waves of `nodes` jobs each (so `10 *
/// nodes` jobs total), waves sixteen minutes apart. Every job in a wave
/// arrives at the same instant — the scheduler's placements, not arrival
/// jitter, provide the per-node variety, which keeps node schedules
/// content-addressable across a large homogeneous fleet: with waves that
/// drain between arrivals, the fleet's nodes fall into a handful of
/// schedule classes regardless of N. The mix is k-means-dominated with an
/// n-weight and a go-cache job sprinkled across the waves (1/32 each of
/// the heavy kinds, which outlive a wave gap and monopolise a big node),
/// so admission control and deferral stay exercised at every scale.
pub fn fleet_scale_scenario(nodes: usize) -> Scenario {
    const WAVES: usize = 10;
    const WAVE_GAP_S: u64 = 960;
    let mut apps = Vec::with_capacity(WAVES * nodes);
    for wave in 0..WAVES {
        let at = SimDuration::from_secs(wave as u64 * WAVE_GAP_S);
        for i in 0..nodes {
            // Deterministic, wave-shifted sprinkle of heavy jobs.
            let kind = match (wave * 7 + i) % 64 {
                5 => AppKind::NWeight,
                37 => AppKind::GoCache,
                _ => AppKind::KMeans,
            };
            apps.push((kind, at));
        }
    }
    Scenario {
        name: format!("fleet-scale {nodes}x{WAVES}"),
        apps,
        classes: Vec::new(),
    }
}

/// The mixed-criticality co-location workload: a latency-critical
/// memcached-style cache tier scheduled *after* `batch` Spark k-means jobs,
/// so a criticality-blind newest-first policy would shoot the cache first
/// under pressure. The cache declares a latency SLO; the batch jobs are
/// expendable.
pub fn mixed_criticality_scenario(batch: usize, slo_ms: u64) -> Scenario {
    let mut apps: Vec<(AppKind, SimDuration)> = (0..batch)
        .map(|i| (AppKind::KMeans, SimDuration::from_secs(30 * i as u64)))
        .collect();
    let mut classes = vec![JobClass::new(Criticality::Batch, 0); batch];
    apps.push((
        AppKind::Memcached,
        SimDuration::from_secs(30 * batch as u64),
    ));
    classes.push(JobClass::new(Criticality::LatencyCritical, slo_ms));
    Scenario {
        name: format!("mixed-crit {batch}xM+X"),
        apps,
        classes,
    }
}

/// The fleet evaluation workloads: the canonical mix, a simultaneous-
/// arrival burst (admission control under a thundering herd), and a
/// memory-heavy sequence that forces deferrals.
pub fn fleet_scenarios() -> Vec<Scenario> {
    vec![
        fleet_canonical(),
        Scenario::uniform("MMMM", 0),
        Scenario::uniform("WWCC", 300),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_builds_offsets() {
        let s = Scenario::uniform("MMW", 180);
        assert_eq!(s.name, "MMW 180");
        assert_eq!(s.len(), 3);
        assert_eq!(s.apps[0], (AppKind::KMeans, SimDuration::ZERO));
        assert_eq!(s.apps[1], (AppKind::KMeans, SimDuration::from_secs(180)));
        assert_eq!(s.apps[2], (AppKind::NWeight, SimDuration::from_secs(360)));
    }

    #[test]
    fn paper_has_sixteen_workloads() {
        assert_eq!(figure5_scenarios().len(), 12);
        assert_eq!(figure8_scenarios().len(), 4);
        assert_eq!(all_scenarios().len(), 16);
    }

    #[test]
    fn worst_case_detection() {
        assert!(Scenario::uniform("PPP", 0).is_worst_case());
        assert!(Scenario::uniform("CCC", 0).is_worst_case());
        assert!(!Scenario::uniform("CCC", 480).is_worst_case());
        assert!(!Scenario::uniform("MMW", 0).is_worst_case());
        assert!(!Scenario::uniform("MMM", 180).is_worst_case());
    }

    #[test]
    fn figure8_are_all_worst_cases() {
        assert!(figure8_scenarios().iter().all(Scenario::is_worst_case));
        assert!(!figure5_scenarios().iter().any(Scenario::is_worst_case));
    }

    #[test]
    fn fleet_scenarios_are_well_formed() {
        let all = fleet_scenarios();
        assert_eq!(all[0].name, fleet_canonical().name);
        for s in &all {
            assert!(s.len() >= 4, "fleet workloads keep several nodes busy");
        }
        assert!(
            all.iter().any(|s| s.apps.iter().all(|(_, d)| d.is_zero())),
            "one burst workload with simultaneous arrivals"
        );
    }

    #[test]
    fn fleet_scale_scenario_shape() {
        let s = fleet_scale_scenario(8);
        assert_eq!(s.len(), 80, "ten waves of `nodes` jobs");
        assert_eq!(s.apps[0].1, SimDuration::ZERO);
        assert_eq!(s.apps[8].1, SimDuration::from_secs(960));
        assert_eq!(s.apps[79].1, SimDuration::from_secs(9 * 960));
        let heavy = s
            .apps
            .iter()
            .filter(|(k, _)| !matches!(k, AppKind::KMeans))
            .count();
        assert!(heavy > 0, "some heavy jobs in the mix");
        assert!(heavy * 4 < s.len(), "but k-means dominates");
        // Same node count, same scenario — byte-identical generation.
        assert_eq!(fleet_scale_scenario(8), s);
    }

    #[test]
    fn codes_round_trip() {
        for k in [
            AppKind::KMeans,
            AppKind::PageRank,
            AppKind::NWeight,
            AppKind::GoCache,
            AppKind::Memcached,
        ] {
            assert_eq!(AppKind::from_code(k.code()), Some(k));
        }
        assert_eq!(AppKind::from_code('z'), None);
    }

    #[test]
    #[should_panic(expected = "unknown app code")]
    fn bad_letters_rejected() {
        Scenario::uniform("MZ", 0);
    }

    #[test]
    fn classes_default_to_standard() {
        let s = Scenario::uniform("MMW", 180);
        assert!(!s.is_classified());
        assert_eq!(s.class_of(0), JobClass::default());
        assert_eq!(s.class_of(99), JobClass::default());
    }

    #[test]
    fn with_classes_attaches_and_normalises() {
        let classed = Scenario::uniform("MM", 0).with_classes(vec![
            JobClass::new(Criticality::Batch, 0),
            JobClass::new(Criticality::LatencyCritical, 500),
        ]);
        assert!(classed.is_classified());
        assert_eq!(classed.class_of(1).slo_ms, 500);
        // All-default classes normalise to the unclassified representation,
        // so the two content-address identically.
        let plain = Scenario::uniform("MM", 0).with_classes(vec![JobClass::default(); 2]);
        assert_eq!(plain, Scenario::uniform("MM", 0));
    }

    #[test]
    #[should_panic(expected = "one per application")]
    fn with_classes_rejects_length_mismatch() {
        let _ = Scenario::uniform("MMW", 0).with_classes(vec![JobClass::default()]);
    }

    #[test]
    fn mixed_criticality_scenario_shape() {
        let s = mixed_criticality_scenario(4, 500);
        assert_eq!(s.len(), 5);
        assert!(s.is_classified());
        // The cache tier arrives last — newest under a newest-first posture.
        assert_eq!(s.apps[4].0, AppKind::Memcached);
        assert!(s.apps[4].1 > s.apps[3].1);
        assert_eq!(s.class_of(4).crit, Criticality::LatencyCritical);
        assert_eq!(s.class_of(4).slo_ms, 500);
        for job in 0..4 {
            assert_eq!(s.class_of(job).crit, Criticality::Batch);
        }
    }
}
