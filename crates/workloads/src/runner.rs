//! Running scenarios under settings and scoring them (§7.2's methodology).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use crate::faults::FaultPlan;
use crate::machine::{Machine, MachineConfig, RunResult};
use crate::scenario::Scenario;
use crate::settings::{blueprint_for, Setting, SettingKind};

/// Returns the interned display name for schedule slot `i` of an app kind
/// (e.g. `"M 0"`). A sweep runs the same scenarios hundreds of times; the
/// interner makes every run share one allocation per `(kind, slot)` pair
/// instead of re-`format!`ing the name for every schedule entry.
pub fn app_name(code: char, i: usize) -> Arc<str> {
    type NameMap = HashMap<(char, usize), Arc<str>>;
    static NAMES: OnceLock<Mutex<NameMap>> = OnceLock::new();
    let mut names = NAMES
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("name interner poisoned");
    names
        .entry((code, i))
        .or_insert_with(|| format!("{code} {i}").into())
        .clone()
}

/// One scenario run under one setting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// The scenario name.
    pub scenario: String,
    /// The setting used.
    pub setting: SettingKind,
    /// The raw run result.
    pub run: RunResult,
}

/// Paper-style speedup report for one workload (Fig. 5 bars).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedupReport {
    /// The workload name.
    pub scenario: String,
    /// The baseline setting.
    pub baseline: String,
    /// Average of per-app speedups (baseline runtime / M3 runtime), or
    /// `None` when the baseline could not run the workload at all — the
    /// paper plots this as INF.
    pub mean_speedup: Option<f64>,
    /// Per-app speedups (None where the baseline app failed).
    pub per_app: Vec<Option<f64>>,
}

impl ScenarioOutcome {
    /// Per-app runtimes in seconds (`None` for failed/killed apps).
    pub fn runtimes_secs(&self) -> Vec<Option<f64>> {
        self.run
            .apps
            .iter()
            .map(|a| {
                if a.killed || a.failed {
                    None
                } else {
                    a.runtime().map(|d| d.as_secs_f64())
                }
            })
            .collect()
    }

    /// Mean per-app runtime in seconds, or `None` if any app failed.
    pub fn mean_runtime_secs(&self) -> Option<f64> {
        let rts = self.runtimes_secs();
        if rts.iter().any(Option::is_none) || rts.is_empty() {
            return None;
        }
        Some(rts.iter().map(|r| r.expect("checked")).sum::<f64>() / rts.len() as f64)
    }

    /// Search score: mean runtime, with failures heavily penalized so the
    /// grid search prefers any configuration that completes.
    pub fn score(&self) -> f64 {
        let rts = self.runtimes_secs();
        if rts.is_empty() {
            return f64::INFINITY;
        }
        let failures = rts.iter().filter(|r| r.is_none()).count() as f64;
        let sum: f64 = rts.iter().flatten().sum();
        sum / rts.len() as f64 + failures * 1.0e7
    }
}

/// Runs `scenario` under `setting` on a node described by `machine_cfg`
/// (whose `monitor` field is overridden to match the setting).
pub fn run_scenario(
    scenario: &Scenario,
    setting: &Setting,
    machine_cfg: MachineConfig,
) -> ScenarioOutcome {
    run_scenario_with_faults(scenario, setting, machine_cfg, &FaultPlan::none())
}

/// Like [`run_scenario`], but the run executes under a [`FaultPlan`]: a
/// chaos drill over a real scenario. The outcome's
/// [`RunResult::degradation`] reports what the plan did and how the monitor
/// coped.
pub fn run_scenario_with_faults(
    scenario: &Scenario,
    setting: &Setting,
    machine_cfg: MachineConfig,
    faults: &FaultPlan,
) -> ScenarioOutcome {
    assert!(
        setting.is_m3() || setting.per_app.len() == scenario.apps.len(),
        "setting must cover every scheduled app"
    );
    let machine = Machine::new(machine_cfg.with_setting(setting));
    let schedule = scenario
        .apps
        .iter()
        .enumerate()
        .map(|(i, &(kind, start))| {
            let cfg = setting
                .per_app
                .get(i)
                .copied()
                .unwrap_or_else(crate::settings::AppConfig::stock_default);
            let bp = blueprint_for(kind, &cfg, setting.is_m3());
            (app_name(kind.code(), i), start, bp)
        })
        .collect();
    let run = machine.run_with_faults_classed(schedule, faults, &scenario.classes);
    if let Ok(path) = std::env::var("M3_TRACE") {
        if !path.is_empty() {
            if let Ok(json) = serde_json::to_string_pretty(&run.trace) {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("M3_TRACE: failed to write {path}: {e}");
                }
            }
        }
    }
    ScenarioOutcome {
        scenario: scenario.name.clone(),
        setting: setting.kind,
        run,
    }
}

/// The paper's Fig. 5 metric: the average of each application's speedup of
/// `m3` over `baseline` (both outcomes of the *same* scenario).
pub fn speedup_report(m3: &ScenarioOutcome, baseline: &ScenarioOutcome) -> SpeedupReport {
    assert_eq!(m3.scenario, baseline.scenario, "same workload required");
    let m3_rts = m3.runtimes_secs();
    let base_rts = baseline.runtimes_secs();
    let per_app: Vec<Option<f64>> = m3_rts
        .iter()
        .zip(&base_rts)
        .map(|(m, b)| match (m, b) {
            (Some(m), Some(b)) if *m > 0.0 => Some(b / m),
            _ => None,
        })
        .collect();
    // If the baseline failed any app while M3 ran it, the workload's
    // speedup is unbounded (INF in Fig. 5) — represented as None.
    let baseline_failed = base_rts.iter().any(Option::is_none);
    let mean_speedup = if baseline_failed || per_app.is_empty() {
        None
    } else {
        let vals: Vec<f64> = per_app.iter().flatten().copied().collect();
        if vals.len() == per_app.len() {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        } else {
            None
        }
    };
    SpeedupReport {
        scenario: m3.scenario.clone(),
        baseline: baseline.setting.label().to_string(),
        mean_speedup,
        per_app,
    }
}

/// Convenience wrapper: run a scenario under M3 and under a static setting
/// on the paper's 64-GB node, returning the speedup report.
pub fn compare_m3_vs(
    scenario: &Scenario,
    baseline: &Setting,
    machine_cfg: MachineConfig,
) -> (SpeedupReport, ScenarioOutcome, ScenarioOutcome) {
    let m3 = run_scenario(scenario, &Setting::m3(scenario.len()), machine_cfg);
    let base = run_scenario(scenario, baseline, machine_cfg);
    (speedup_report(&m3, &base), m3, base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::AppResult;
    use crate::scenario::AppKind;
    use crate::settings::AppConfig;
    use m3_sim::clock::{SimDuration, SimTime};
    use m3_sim::metrics::Profile;

    fn outcome(scenario: &str, setting: SettingKind, runtimes: &[Option<f64>]) -> ScenarioOutcome {
        let apps = runtimes
            .iter()
            .enumerate()
            .map(|(i, r)| AppResult {
                name: format!("a{i}"),
                started: SimTime::ZERO,
                finished: r.map(|s| SimTime::from_millis((s * 1000.0) as u64)),
                ended: r.map(|s| SimTime::from_millis((s * 1000.0) as u64)),
                killed: false,
                failed: r.is_none(),
                gc_pause: SimDuration::ZERO,
                mm_time: SimDuration::ZERO,
                stall: SimDuration::ZERO,
                peak_rss: 0,
            })
            .collect();
        ScenarioOutcome {
            scenario: scenario.into(),
            setting,
            run: crate::machine::RunResult {
                apps,
                profile: Profile::new(),
                monitor_stats: None,
                pressure: None,
                pressure_timeline: Vec::new(),
                end: SimTime::ZERO,
                mean_rss: 0.0,
                degradation: Default::default(),
                trace: m3_sim::trace::TraceLog::disabled(),
                violations: Vec::new(),
            },
        }
    }

    #[test]
    fn speedup_is_mean_of_per_app_ratios() {
        let m3 = outcome("X", SettingKind::M3, &[Some(100.0), Some(100.0)]);
        let base = outcome("X", SettingKind::Oracle, &[Some(200.0), Some(100.0)]);
        let rep = speedup_report(&m3, &base);
        assert_eq!(rep.per_app, vec![Some(2.0), Some(1.0)]);
        assert_eq!(rep.mean_speedup, Some(1.5));
    }

    #[test]
    fn failed_baseline_is_infinite_speedup() {
        let m3 = outcome("X", SettingKind::M3, &[Some(100.0)]);
        let base = outcome("X", SettingKind::Default, &[None]);
        let rep = speedup_report(&m3, &base);
        assert_eq!(rep.mean_speedup, None, "INF in the paper's plot");
    }

    #[test]
    fn score_penalizes_failures() {
        let ok = outcome("X", SettingKind::Oracle, &[Some(100.0), Some(100.0)]);
        let bad = outcome("X", SettingKind::Oracle, &[Some(1.0), None]);
        assert!(ok.score() < bad.score());
    }

    #[test]
    fn mean_runtime_requires_all_finished() {
        let ok = outcome("X", SettingKind::Oracle, &[Some(10.0), Some(20.0)]);
        assert_eq!(ok.mean_runtime_secs(), Some(15.0));
        let bad = outcome("X", SettingKind::Oracle, &[Some(10.0), None]);
        assert_eq!(bad.mean_runtime_secs(), None);
    }

    #[test]
    fn run_scenario_end_to_end_small() {
        // A minimal but real end-to-end run: one k-means under Default.
        let scenario = Scenario {
            name: "M solo".into(),
            apps: vec![(AppKind::KMeans, SimDuration::ZERO)],
            classes: Vec::new(),
        };
        let setting = Setting::uniform(SettingKind::Default, AppConfig::stock_default(), 1);
        let out = run_scenario(&scenario, &setting, MachineConfig::stock_64gb());
        assert!(out.mean_runtime_secs().is_some());
    }
}
