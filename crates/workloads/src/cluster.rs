//! Cluster aggregation (§7.1: 8 worker nodes).
//!
//! The paper's jobs run across 8 workers, one executor per node, and a job
//! completes when its slowest node does. Every per-node decision M3 makes
//! is node-local, so the cluster is N independent node simulations with
//! different task-scheduling histories (the `node_salt`), aggregated by
//! taking the per-application maximum completion time.

use m3_sim::trace::Criticality;
use serde::{Deserialize, Serialize};

use crate::fleet::JobOutcome;
use crate::machine::{Machine, MachineConfig, RunResult};
use crate::parallel::{run_scenario_cached, worker_threads};
use crate::scenario::Scenario;
use crate::settings::Setting;

/// The paper's worker count.
pub const PAPER_NODES: usize = 8;

/// Why a job produced no runtime. A typed reason instead of killed/failed
/// booleans: fleet-level chaos adds ways to lose a job (node death, retry
/// budget exhaustion) that are not monitor kills or crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobFailure {
    /// The M3 monitor killed the job to relieve memory pressure.
    Killed,
    /// The job itself failed (allocation failure, kernel OOM).
    Crashed,
    /// The job's node died mid-run and its retry budget ran out.
    NodeLost,
    /// The scheduler gave up placing the job after exhausting deferrals.
    GaveUp,
}

/// Aggregated outcome of a cluster run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterResult {
    /// Per-application runtime: the *slowest node's* runtime, or `None` if
    /// the app failed or was killed on any node.
    pub app_runtimes_s: Vec<Option<f64>>,
    /// Per-application, per-node runtimes (outer = app, inner = node).
    pub per_node_s: Vec<Vec<Option<f64>>>,
    /// Spread (max − min) across nodes per application, seconds — the
    /// straggler effect.
    pub spread_s: Vec<f64>,
    /// Per-application failure reason, `None` for apps that completed.
    pub failures: Vec<Option<JobFailure>>,
}

/// Mean cluster runtime, with failures accounted rather than collapsing
/// the whole cluster to "no answer": one killed app should not hide how the
/// other N−1 fared.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterMean {
    /// Mean runtime over the *completed* apps, seconds — `None` only when
    /// no app completed at all.
    pub mean_secs: Option<f64>,
    /// Apps that completed on every node.
    pub completed_apps: usize,
    /// Apps that failed or were killed on at least one node.
    pub failed_apps: usize,
    /// Of the failed apps, those the monitor killed.
    pub killed_apps: usize,
    /// Of the failed apps, those that crashed on their own.
    pub crashed_apps: usize,
    /// Of the failed apps, those abandoned after their node died.
    pub node_lost_apps: usize,
    /// Of the failed apps, those the scheduler gave up placing.
    pub gave_up_apps: usize,
    /// Per-criticality-class slices (one entry per class that had jobs;
    /// empty for passthrough/legacy paths, where no per-job class data
    /// exists). Filled by [`ClusterMean::with_classes`].
    pub classes: Vec<ClassSummary>,
}

/// One criticality class's slice of a fleet run: how many of its jobs ran,
/// whether the class held its latency SLOs, and how much reclamation stall
/// it absorbed — the per-class attainment report the mixed-criticality
/// bench plots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSummary {
    /// The criticality class.
    pub crit: Criticality,
    /// Jobs submitted in this class.
    pub jobs: usize,
    /// Of those, jobs that completed.
    pub completed: usize,
    /// Of those, jobs that failed (killed, crashed, lost, or given up).
    pub failed: usize,
    /// Jobs in this class that declared a latency SLO (`slo_ms > 0`).
    pub slo_jobs: usize,
    /// Completed jobs whose SLO held (jobs without one count as met).
    pub slo_met: usize,
    /// Mean runtime over the class's completed jobs, seconds.
    pub mean_secs: Option<f64>,
    /// Total reclamation-handler stall the class absorbed, ms.
    pub stall_ms: u64,
}

impl ClusterMean {
    /// True if every app completed.
    pub fn all_completed(&self) -> bool {
        self.failed_apps == 0 && self.completed_apps > 0
    }

    /// Fills the per-class slices from a fleet run's per-job outcomes.
    /// Classes with no jobs are omitted (an empty mix stays empty), so
    /// unclassified fleets — where every job reports `Standard` — get
    /// exactly one summary line.
    pub fn with_classes(mut self, jobs: &[JobOutcome]) -> Self {
        self.classes = Criticality::ALL
            .iter()
            .filter_map(|&crit| {
                let of_class: Vec<&JobOutcome> = jobs.iter().filter(|j| j.crit == crit).collect();
                if of_class.is_empty() {
                    return None;
                }
                let runtimes: Vec<f64> = of_class.iter().filter_map(|j| j.runtime_s).collect();
                Some(ClassSummary {
                    crit,
                    jobs: of_class.len(),
                    completed: runtimes.len(),
                    failed: of_class.len() - runtimes.len(),
                    slo_jobs: of_class.iter().filter(|j| j.slo_ms > 0).count(),
                    slo_met: of_class.iter().filter(|j| j.slo_met == Some(true)).count(),
                    mean_secs: if runtimes.is_empty() {
                        None
                    } else {
                        Some(runtimes.iter().sum::<f64>() / runtimes.len() as f64)
                    },
                    stall_ms: of_class.iter().map(|j| j.stall_ms).sum(),
                })
            })
            .collect();
        self
    }

    /// The summary of one class, if it had jobs.
    pub fn class(&self, crit: Criticality) -> Option<&ClassSummary> {
        self.classes.iter().find(|c| c.crit == crit)
    }
}

impl ClusterResult {
    /// Mean of the per-app cluster runtimes over the apps that completed,
    /// alongside failed-app counts broken out by [`JobFailure`] reason.
    pub fn mean_runtime_secs(&self) -> ClusterMean {
        let completed: Vec<f64> = self.app_runtimes_s.iter().flatten().copied().collect();
        let count = |r| self.failures.iter().filter(|f| **f == Some(r)).count();
        ClusterMean {
            mean_secs: if completed.is_empty() {
                None
            } else {
                Some(completed.iter().sum::<f64>() / completed.len() as f64)
            },
            completed_apps: completed.len(),
            failed_apps: self.app_runtimes_s.len() - completed.len(),
            killed_apps: count(JobFailure::Killed),
            crashed_apps: count(JobFailure::Crashed),
            node_lost_apps: count(JobFailure::NodeLost),
            gave_up_apps: count(JobFailure::GaveUp),
            classes: Vec::new(),
        }
    }
}

fn runtimes(res: &RunResult) -> Vec<Option<f64>> {
    res.apps
        .iter()
        .map(|a| {
            if a.failed || a.killed {
                None
            } else {
                a.runtime().map(|d| d.as_secs_f64())
            }
        })
        .collect()
}

/// Runs `scenario` under `setting` on `nodes` independent workers and
/// aggregates per-application completion as the slowest node.
pub fn run_cluster(
    scenario: &Scenario,
    setting: &Setting,
    machine_cfg: MachineConfig,
    nodes: usize,
) -> ClusterResult {
    // Nodes are independent simulations (only the salt differs), so they
    // fan out on the worker pool; results come back in node order.
    let node_cfgs: Vec<MachineConfig> = (0..nodes)
        .map(|node| {
            let mut cfg = machine_cfg;
            cfg.node_salt = node as u64 + 1;
            cfg
        })
        .collect();
    run_cluster_nodes(scenario, setting, node_cfgs)
}

/// [`run_cluster`] over an explicit per-node configuration list (the fleet
/// layer's passthrough path: heterogeneous node sizes, pre-salted configs).
/// Aggregation is identical — per-app slowest node wins.
pub fn run_cluster_nodes(
    scenario: &Scenario,
    setting: &Setting,
    node_cfgs: Vec<MachineConfig>,
) -> ClusterResult {
    assert!(!node_cfgs.is_empty(), "need at least one node");
    let nodes = node_cfgs.len();
    let napps = scenario.len();
    let outs = crate::parallel::parallel_map(node_cfgs, worker_threads(), |cfg| {
        run_scenario_cached(scenario, setting, cfg)
    });
    let mut per_node: Vec<Vec<Option<f64>>> = vec![Vec::with_capacity(nodes); napps];
    let mut failures: Vec<Option<JobFailure>> = vec![None; napps];
    for out in &outs {
        for (i, rt) in runtimes(&out.run).into_iter().enumerate() {
            per_node[i].push(rt);
        }
        // A kill on any node trumps a crash: the monitor's decision is the
        // reason the cluster-level job has no runtime.
        for (i, a) in out.run.apps.iter().enumerate() {
            if a.killed {
                failures[i] = Some(JobFailure::Killed);
            } else if a.failed && failures[i].is_none() {
                failures[i] = Some(JobFailure::Crashed);
            }
        }
    }
    let app_runtimes_s: Vec<Option<f64>> = per_node
        .iter()
        .map(|node_rts| {
            if node_rts.iter().any(Option::is_none) {
                None
            } else {
                node_rts
                    .iter()
                    .flatten()
                    .cloned()
                    .fold(None, |acc: Option<f64>, v| {
                        Some(acc.map_or(v, |a| a.max(v)))
                    })
            }
        })
        .collect();
    let spread_s = per_node
        .iter()
        .map(|node_rts| {
            let vals: Vec<f64> = node_rts.iter().flatten().copied().collect();
            match (
                vals.iter().cloned().reduce(f64::max),
                vals.iter().cloned().reduce(f64::min),
            ) {
                (Some(mx), Some(mn)) => mx - mn,
                _ => 0.0,
            }
        })
        .collect();
    ClusterResult {
        app_runtimes_s,
        per_node_s: per_node,
        spread_s,
        failures,
    }
}

/// Convenience: the `Machine` type for a node of this cluster (salted).
pub fn node_machine(mut cfg: MachineConfig, node: usize) -> Machine {
    cfg.node_salt = node as u64 + 1;
    Machine::new(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::SettingKind;
    use m3_sim::clock::SimDuration;
    use m3_sim::units::GIB;

    fn quick_cfg() -> MachineConfig {
        let mut cfg = MachineConfig::stock_64gb();
        cfg.sample_period = None;
        cfg.max_time = SimDuration::from_secs(40_000);
        cfg
    }

    #[test]
    fn cluster_aggregates_slowest_node() {
        let scenario = Scenario::uniform("M", 0);
        let setting = Setting::m3(1);
        let res = run_cluster(&scenario, &setting, quick_cfg(), 3);
        assert_eq!(res.per_node_s[0].len(), 3);
        let max = res.per_node_s[0]
            .iter()
            .flatten()
            .cloned()
            .fold(f64::MIN, f64::max);
        assert_eq!(res.app_runtimes_s[0], Some(max));
        let mean = res.mean_runtime_secs();
        assert_eq!(mean.mean_secs, Some(max));
        assert_eq!(mean.completed_apps, 1);
        assert_eq!(mean.failed_apps, 0);
        assert!(mean.all_completed());
    }

    #[test]
    fn nodes_differ_but_not_wildly() {
        // Different salts → different task orders → slightly different
        // runtimes; the spread must stay a small fraction of the runtime.
        let scenario = Scenario::uniform("MM", 120);
        let setting = Setting::m3(2);
        let res = run_cluster(&scenario, &setting, quick_cfg(), 4);
        for (i, spread) in res.spread_s.iter().enumerate() {
            let rt = res.app_runtimes_s[i].expect("finished");
            assert!(
                *spread <= rt * 0.5,
                "node spread {spread} too large vs runtime {rt}"
            );
        }
    }

    #[test]
    fn failure_on_any_node_fails_the_job() {
        // n-weight under the Default heap fails on every node.
        let scenario = Scenario::uniform("W", 0);
        let setting = Setting {
            kind: SettingKind::Default,
            per_app: vec![crate::settings::AppConfig::stock_default()],
        };
        let res = run_cluster(&scenario, &setting, quick_cfg(), 2);
        assert_eq!(res.app_runtimes_s[0], None);
        let mean = res.mean_runtime_secs();
        assert_eq!(mean.mean_secs, None, "nothing completed");
        assert_eq!(mean.completed_apps, 0);
        assert_eq!(mean.failed_apps, 1);
        assert_eq!(
            mean.killed_apps + mean.crashed_apps,
            1,
            "the node-level failure has a typed reason: {mean:?}"
        );
        assert_eq!(mean.node_lost_apps, 0);
        assert_eq!(mean.gave_up_apps, 0);
        assert!(res.failures[0].is_some());
        assert!(!mean.all_completed());
        let _ = 64 * GIB;
    }

    #[test]
    fn one_failed_app_does_not_hide_the_others() {
        // M completes under the stock default heap, n-weight does not: the
        // mean must survive as the mean over the completed apps, with the
        // failure reported alongside.
        let scenario = Scenario::uniform("MW", 0);
        let setting = Setting {
            kind: SettingKind::Default,
            per_app: vec![crate::settings::AppConfig::stock_default(); 2],
        };
        let res = run_cluster(&scenario, &setting, quick_cfg(), 2);
        assert!(res.app_runtimes_s[0].is_some(), "M completes");
        assert_eq!(res.app_runtimes_s[1], None, "n-weight fails");
        let mean = res.mean_runtime_secs();
        assert_eq!(mean.mean_secs, res.app_runtimes_s[0]);
        assert_eq!(mean.completed_apps, 1);
        assert_eq!(mean.failed_apps, 1);
        assert_eq!(res.failures[0], None, "completed app carries no reason");
        assert!(res.failures[1].is_some());
        assert!(!mean.all_completed());
    }

    #[test]
    fn run_cluster_nodes_matches_run_cluster_with_salted_cfgs() {
        let scenario = Scenario::uniform("M", 0);
        let setting = Setting::m3(1);
        let via_cluster = run_cluster(&scenario, &setting, quick_cfg(), 2);
        let cfgs: Vec<MachineConfig> = (0..2)
            .map(|node| {
                let mut cfg = quick_cfg();
                cfg.node_salt = node as u64 + 1;
                cfg
            })
            .collect();
        let via_nodes = run_cluster_nodes(&scenario, &setting, cfgs);
        assert_eq!(via_cluster.app_runtimes_s, via_nodes.app_runtimes_s);
        assert_eq!(via_cluster.per_node_s, via_nodes.per_node_s);
        assert_eq!(via_cluster.spread_s, via_nodes.spread_s);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let scenario = Scenario::uniform("M", 0);
        run_cluster(&scenario, &Setting::m3(1), quick_cfg(), 0);
    }

    // ---- per-class aggregation edge cases -----------------------------

    fn job(job: usize, crit: Criticality, slo_ms: u64, runtime_s: Option<f64>) -> JobOutcome {
        JobOutcome {
            job,
            node: runtime_s.map(|_| 0),
            deferrals: 0,
            migrations: 0,
            reschedules: 0,
            failure: runtime_s.is_none().then_some(JobFailure::Killed),
            runtime_s,
            crit,
            slo_ms,
            stall_ms: 250,
            slo_met: runtime_s.map(|rt| slo_ms == 0 || (rt * 1000.0) as u64 <= slo_ms),
        }
    }

    fn empty_mean() -> ClusterMean {
        ClusterResult {
            app_runtimes_s: Vec::new(),
            per_node_s: Vec::new(),
            spread_s: Vec::new(),
            failures: Vec::new(),
        }
        .mean_runtime_secs()
    }

    #[test]
    fn class_summaries_skip_empty_classes() {
        // No jobs at all: no slices. One Standard job: exactly one slice,
        // and the unpopulated classes stay absent rather than reporting
        // zeros.
        let mean = empty_mean().with_classes(&[]);
        assert!(mean.classes.is_empty());
        assert!(mean.class(Criticality::Batch).is_none());
        let mean = empty_mean().with_classes(&[job(0, Criticality::Standard, 0, Some(10.0))]);
        assert_eq!(mean.classes.len(), 1);
        assert!(mean.class(Criticality::LatencyCritical).is_none());
        assert!(mean.class(Criticality::Batch).is_none());
        let std = mean.class(Criticality::Standard).expect("populated");
        assert_eq!((std.jobs, std.completed, std.failed), (1, 1, 0));
        assert_eq!(std.mean_secs, Some(10.0));
    }

    #[test]
    fn all_failed_class_reports_no_mean_and_no_met_slos() {
        let jobs = [
            job(0, Criticality::LatencyCritical, 5_000, None),
            job(1, Criticality::LatencyCritical, 5_000, None),
            job(2, Criticality::Batch, 0, Some(100.0)),
        ];
        let mean = empty_mean().with_classes(&jobs);
        let lc = mean.class(Criticality::LatencyCritical).expect("slice");
        assert_eq!((lc.jobs, lc.completed, lc.failed), (2, 0, 2));
        assert_eq!(lc.mean_secs, None, "nothing completed");
        assert_eq!(lc.slo_jobs, 2, "declared SLOs still count");
        assert_eq!(lc.slo_met, 0, "a failed job never meets its SLO");
        assert_eq!(lc.stall_ms, 500, "stall is accounted even for failures");
    }

    #[test]
    fn slo_attainment_counts_only_held_slos() {
        let jobs = [
            job(0, Criticality::LatencyCritical, 5_000, Some(4.0)), // met
            job(1, Criticality::LatencyCritical, 5_000, Some(6.0)), // missed
            job(2, Criticality::LatencyCritical, 0, Some(60.0)),    // no SLO
        ];
        let mean = empty_mean().with_classes(&jobs);
        let lc = mean.class(Criticality::LatencyCritical).expect("slice");
        assert_eq!(lc.slo_jobs, 2);
        assert_eq!(lc.slo_met, 2, "the held SLO plus the SLO-less job");
        assert_eq!(lc.mean_secs, Some(70.0 / 3.0));
    }

    #[test]
    fn class_report_round_trips_through_serde() {
        let jobs = [
            job(0, Criticality::LatencyCritical, 5_000, Some(4.0)),
            job(1, Criticality::Standard, 0, Some(20.0)),
            job(2, Criticality::Batch, 0, None),
        ];
        let mean = empty_mean().with_classes(&jobs);
        assert_eq!(mean.classes.len(), 3);
        let json = serde_json::to_string(&mean).expect("serialize");
        let back: ClusterMean = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(mean, back, "the per-class report must round-trip");
    }
}
