//! The simulated node: world loop tying kernel, disk, monitor and apps.
//!
//! One [`Machine::run`] is one experiment on one worker node (all of the
//! paper's per-node profiles — Figs. 2, 6, 7, 10 — are exactly this view).
//! The loop is time-stepped: each tick it starts due applications, lets the
//! monitor poll (once per second of simulated time), delivers threshold
//! signals, advances every application by a time budget scaled by the
//! kernel's swap-thrash multiplier, runs the OOM check, and samples the
//! memory profile.

use std::sync::Arc;

use m3_core::{Monitor, MonitorConfig, Registry, ThresholdSignal, Zone};
use m3_oracle::{Oracle, Violation};
use m3_os::cgroup::{Cgroup, CgroupSet};
use m3_os::{DiskModel, Kernel, KernelConfig, Pid, Signal};
use m3_sim::clock::{SimDuration, SimTime};
use m3_sim::metrics::Profile;
use m3_sim::trace::{Criticality, SigKind, TraceData, TraceLog};
use m3_sim::units::{bytes_to_gib, GIB};
use serde::{Deserialize, Serialize};

use crate::apps::{AnyApp, AppBlueprint};
use crate::faults::{
    DegradationReport, FaultKind, FaultPlan, FaultRecovery, UnappliedFault, UnappliedReason,
};
use crate::scenario::JobClass;
use crate::settings::Setting;

/// One schedule entry: display name, start delay, and the blueprint built at
/// start time. Names are `Arc<str>` so interned names are shared across the
/// many runs of a sweep instead of being reallocated per run.
pub type ScheduleEntry = (Arc<str>, SimDuration, AppBlueprint);

/// World parameters.
///
/// Serializable so a `(scenario, setting, machine_cfg)` triple can be
/// content-addressed by the run memoization cache (see
/// [`crate::parallel`]).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Physical memory of the node (the paper: 64 GB by cgroup).
    pub phys_total: u64,
    /// The M3 monitor configuration; `None` runs a stock system.
    pub monitor: Option<MonitorConfig>,
    /// World tick length.
    pub tick: SimDuration,
    /// Profile sampling period (`None` disables capture, for benches).
    pub sample_period: Option<SimDuration>,
    /// Hard wall-clock cap on the simulation.
    pub max_time: SimDuration,
    /// Node salt: perturbs application-internal orderings so cluster nodes
    /// are not bit-identical (0 for single-node runs).
    pub node_salt: u64,
    /// Enables the world-loop fast path: when no application process is
    /// live, the clock jumps to the next scheduled instant (app start,
    /// chaos kill, monitor poll, cgroup enforcement, profile sample)
    /// instead of idling tick by tick. Results are bit-identical either
    /// way; the flag exists so the determinism test can compare both
    /// paths. Part of the memoization cache key.
    pub fast_path: bool,
    /// Captures a typed end-to-end event trace and runs the conformance
    /// oracle over it after the run (see [`RunResult::trace`] and
    /// [`RunResult::violations`]). Off, the kernel's trace log is disabled
    /// and records nothing. Part of the memoization cache key.
    pub capture_trace: bool,
    /// Records the monitor's pressure summary every `n` polls into
    /// [`RunResult::pressure_timeline`] (`None` disables capture). The fleet
    /// scheduler sets this on its probe runs so one full-horizon simulation
    /// answers pressure queries at every instant. Part of the memoization
    /// cache key.
    pub pressure_timeline_polls: Option<u64>,
    /// Ablation: drain reclamation work packets in *reverse* bucket order,
    /// ignoring dependency edges. Exists to prove the `reclaim.packet.*`
    /// oracle invariants catch ordering violations; never set in a correct
    /// configuration. Part of the memoization cache key.
    pub packet_ablation: bool,
}

impl MachineConfig {
    /// A stock 64-GB node (no monitor).
    pub fn stock_64gb() -> Self {
        MachineConfig {
            phys_total: 64 * GIB,
            monitor: None,
            tick: SimDuration::from_millis(100),
            sample_period: Some(SimDuration::from_secs(2)),
            max_time: SimDuration::from_secs(30_000),
            node_salt: 0,
            fast_path: true,
            capture_trace: true,
            pressure_timeline_polls: None,
            packet_ablation: false,
        }
    }

    /// The paper's M3 node: 64 GB with the §6 monitor parameters.
    pub fn m3_64gb() -> Self {
        MachineConfig {
            monitor: Some(MonitorConfig::paper_64gb()),
            ..MachineConfig::stock_64gb()
        }
    }

    /// A scaled node (e.g. the 8-GB Memcached node of Fig. 9).
    pub fn scaled(phys_total: u64, m3: bool) -> Self {
        MachineConfig {
            phys_total,
            monitor: m3.then(|| MonitorConfig::scaled(phys_total)),
            ..MachineConfig::stock_64gb()
        }
    }

    /// Resolves the monitor field against a setting: M3 settings get a
    /// monitor scaled to the node (keeping an explicit one if present),
    /// every other regime runs stock. This is the single place the
    /// setting→monitor rule lives; the runner, comparison, and search
    /// paths all go through it.
    pub fn with_setting(mut self, setting: &Setting) -> Self {
        if setting.is_m3() {
            if self.monitor.is_none() {
                self.monitor = Some(MonitorConfig::scaled(self.phys_total));
            }
        } else {
            self.monitor = None;
        }
        self
    }

    /// The work-packet scheduler configuration every app on this node is
    /// built with (worker count comes from `M3_JOBS` at drain time).
    pub fn scheduler_config(&self) -> m3_core::SchedulerConfig {
        m3_core::SchedulerConfig {
            workers: None,
            ablate_bucket_order: self.packet_ablation,
        }
    }
}

/// Outcome for one scheduled application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppResult {
    /// Display name (unique within the run, e.g. `"k-means 0"`).
    pub name: String,
    /// Scheduled start time.
    pub started: SimTime,
    /// Completion time, if the app finished.
    pub finished: Option<SimTime>,
    /// When the app stopped occupying memory, whatever the reason: equals
    /// `finished` for completed apps, the kill instant for killed apps, the
    /// spawn instant for failed ones. `None` only if the run's time cap hit
    /// while the app was still live.
    pub ended: Option<SimTime>,
    /// True if the app was killed (OOM or M3 escalation).
    pub killed: bool,
    /// True if the app failed to run (static heap below the job's floor).
    pub failed: bool,
    /// Total GC pause in the app's runtime layer.
    pub gc_pause: SimDuration,
    /// Framework memory-management time (Spark capacity misses).
    pub mm_time: SimDuration,
    /// Time spent inside reclamation signal handlers — the memory-pressure
    /// stall the scheduler charges against a job's latency SLO.
    pub stall: SimDuration,
    /// Peak resident set size observed.
    pub peak_rss: u64,
}

impl AppResult {
    /// The app's runtime, if it completed.
    pub fn runtime(&self) -> Option<SimDuration> {
        self.finished.map(|f| f.saturating_since(self.started))
    }
}

/// Outcome of one experiment run.
///
/// Serializable end to end: the determinism regression test compares runs
/// by their serialized bytes, and the memoization cache hands out shared
/// results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Per-application outcomes, in schedule order.
    pub apps: Vec<AppResult>,
    /// The sampled memory profile (empty when sampling is disabled).
    pub profile: Profile,
    /// Monitor statistics, when a monitor ran.
    pub monitor_stats: Option<m3_core::monitor::MonitorStats>,
    /// The node's pressure state at the end of the run, when a monitor ran
    /// (what a fleet scheduler ranks this node by).
    pub pressure: Option<m3_core::monitor::PressureSummary>,
    /// `(time ms, summary)` samples taken every
    /// [`MachineConfig::pressure_timeline_polls`] monitor polls (empty when
    /// capture is off or no monitor ran). The fleet scheduler reads a
    /// node's pressure at time `t` as the last sample at or before `t`.
    pub pressure_timeline: Vec<(u64, m3_core::monitor::PressureSummary)>,
    /// When the last application terminated (or the cap was hit).
    pub end: SimTime,
    /// Time-weighted mean of total committed bytes (§7.3's effective
    /// utilization measure).
    pub mean_rss: f64,
    /// Fault-injection accounting and monitor degradation telemetry
    /// (all-zero for fault-free runs).
    pub degradation: DegradationReport,
    /// The typed end-to-end event trace (empty when capture is disabled).
    pub trace: TraceLog,
    /// Conformance-oracle findings: divergences between the recorded trace
    /// and the paper's invariants. Empty for a conformant (or untraced) run.
    pub violations: Vec<Violation>,
}

impl RunResult {
    /// True if every application finished (none failed, none killed).
    pub fn all_finished(&self) -> bool {
        self.apps
            .iter()
            .all(|a| a.finished.is_some() && !a.killed && !a.failed)
    }
}

struct Slot {
    idx: usize,
    app: AnyApp,
    peak_rss: u64,
    /// The job's criticality class (drives per-class signal handling).
    class: JobClass,
    /// Accumulated reclamation-handler time.
    stall: SimDuration,
    /// Injected non-cooperation: when set, the app's signal handler still
    /// runs but only this fraction of freed bytes is returned to the OS.
    unresponsive: Option<f64>,
    /// Injected leak rate in bytes per simulated second (0 = none).
    leak_rate: u64,
    /// Sub-second leak remainder carried between ticks (exact integer
    /// accounting, so results stay bit-deterministic).
    leak_carry: u64,
}

/// Internal event type of the fault queue.
enum FaultAction {
    /// Apply `FaultPlan::events[i]`.
    App(usize),
    /// Run `FaultPlan::churn[i]`: ghost registers, dies, pid is reused.
    ChurnSpawn(usize),
    /// Retire churn `i`'s bystander.
    ChurnRetire(usize),
}

/// A simulated node.
#[derive(Debug, Clone, Copy)]
pub struct Machine {
    cfg: MachineConfig,
}

impl Machine {
    /// Creates a node.
    pub fn new(cfg: MachineConfig) -> Self {
        Machine { cfg }
    }

    /// The node configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Runs a schedule of `(name, start, blueprint)` to completion (or the
    /// time cap) and returns per-app results plus the memory profile.
    pub fn run(&self, schedule: Vec<ScheduleEntry>) -> RunResult {
        self.run_full(schedule, None, &FaultPlan::none(), &[])
    }

    /// Like [`Machine::run`], with a criticality class per schedule entry
    /// (missing entries default to `Standard`). Classes change how a job
    /// answers pressure: batch jobs treat the advisory low signal as a high
    /// one (earlier, larger reclamation), latency-critical jobs ignore the
    /// low signal and only reclaim on high, and the class is written into
    /// the job's PID file so the monitor's kill ordering sees it.
    pub fn run_classed(&self, schedule: Vec<ScheduleEntry>, classes: &[JobClass]) -> RunResult {
        self.run_full(schedule, None, &FaultPlan::none(), classes)
    }

    /// Like [`Machine::run`], but places each scheduled application in its
    /// own container with a static limit (`memory.high` semantics: members
    /// of an over-limit container receive reclaim pressure once per second).
    /// This is the per-container static baseline for the paper's §9
    /// container question.
    pub fn run_with_containers(
        &self,
        schedule: Vec<ScheduleEntry>,
        container_limits: Option<Vec<u64>>,
    ) -> RunResult {
        self.run_full(schedule, container_limits, &FaultPlan::none(), &[])
    }

    /// Legacy failure injection: the application at schedule index `idx` is
    /// killed (as by a crash) at each `(t, idx)` in `kills`. Equivalent to
    /// [`Machine::run_with_faults`] with a crash-only [`FaultPlan`].
    pub fn run_with_chaos(
        &self,
        schedule: Vec<ScheduleEntry>,
        kills: Vec<(SimDuration, usize)>,
    ) -> RunResult {
        self.run_full(schedule, None, &FaultPlan::from_kills(kills), &[])
    }

    /// Fault injection: runs the schedule while executing `faults` against
    /// it — crashes, non-cooperation, leaks, signal loss/delay, meminfo
    /// outages, registration churn. The returned
    /// [`RunResult::degradation`] accounts for every injected item.
    pub fn run_with_faults(&self, schedule: Vec<ScheduleEntry>, faults: &FaultPlan) -> RunResult {
        self.run_full(schedule, None, faults, &[])
    }

    /// [`Machine::run_with_faults`] with per-entry criticality classes (see
    /// [`Machine::run_classed`]).
    pub fn run_with_faults_classed(
        &self,
        schedule: Vec<ScheduleEntry>,
        faults: &FaultPlan,
        classes: &[JobClass],
    ) -> RunResult {
        self.run_full(schedule, None, faults, classes)
    }

    fn run_full(
        &self,
        schedule: Vec<ScheduleEntry>,
        container_limits: Option<Vec<u64>>,
        faults: &FaultPlan,
        classes: &[JobClass],
    ) -> RunResult {
        let mut kernel = Kernel::new(KernelConfig::with_total(self.cfg.phys_total));
        if !self.cfg.capture_trace {
            kernel.trace = TraceLog::disabled();
        }
        let disk = DiskModel::hdd_7200rpm();
        let mut monitor = self.cfg.monitor.map(Monitor::new);
        let mut queue: m3_sim::EventQueue<usize> = m3_sim::EventQueue::new();
        let mut results: Vec<AppResult> = Vec::with_capacity(schedule.len());
        for (i, (name, start, _)) in schedule.iter().enumerate() {
            results.push(AppResult {
                name: name.to_string(),
                started: SimTime::ZERO + *start,
                finished: None,
                ended: None,
                killed: false,
                failed: false,
                gc_pause: SimDuration::ZERO,
                mm_time: SimDuration::ZERO,
                stall: SimDuration::ZERO,
                peak_rss: 0,
            });
            queue.schedule(SimTime::ZERO + *start, i);
        }

        let mut running: Vec<Slot> = Vec::new();
        let mut registry = Registry::new();
        let mut profile = Profile::new();
        let mut now = SimTime::ZERO;
        let poll_period = self
            .cfg
            .monitor
            .map(|m| m.poll_period)
            .unwrap_or(SimDuration::from_secs(1));
        let mut cgroups: Option<CgroupSet> = container_limits.as_ref().map(|limits| {
            assert_eq!(
                limits.len(),
                schedule.len(),
                "one container limit per scheduled app"
            );
            let mut set = CgroupSet::new();
            for (i, (name, _, _)) in schedule.iter().enumerate() {
                set.add(Cgroup::new(name.as_ref(), limits[i]));
            }
            set
        });
        let mut next_enforce = SimTime::ZERO + poll_period;
        let mut faultq: m3_sim::EventQueue<FaultAction> = m3_sim::EventQueue::new();
        for (i, ev) in faults.events.iter().enumerate() {
            faultq.schedule(SimTime::ZERO + ev.at, FaultAction::App(i));
        }
        for (i, ch) in faults.churn.iter().enumerate() {
            faultq.schedule(SimTime::ZERO + ch.at, FaultAction::ChurnSpawn(i));
        }
        kernel.set_signal_faults(faults.signal_faults);
        let mut degradation = DegradationReport {
            faults_injected: faults.injected_count(),
            ..DegradationReport::default()
        };
        // Applied app faults awaiting recovery: (event index, monitor polls
        // at application time, armed). An entry arms once the system enters
        // Red/AboveTop after the fault; it closes at the next Green/Yellow
        // poll — so the recorded time measures an actual excursion-and-
        // return, not an incidental calm poll right after injection.
        let mut pending_recoveries: Vec<(usize, u64, bool)> = Vec::new();
        let mut churn_bystanders: Vec<Pid> = vec![0; faults.churn.len()];
        let mut next_poll = SimTime::ZERO + poll_period;
        let mut next_sample = SimTime::ZERO;
        let mut pressure_timeline: Vec<(u64, m3_core::monitor::PressureSummary)> = Vec::new();
        // Mean-RSS integral as exact integers (`committed` summed per tick):
        // integer addition is associative, so the fast path below can account
        // a whole gap of idle ticks in one multiplication and stay
        // bit-identical to the tick-by-tick loop.
        let mut rss_area: u128 = 0;
        let mut ticks: u64 = 0;
        if let Some(period) = self.cfg.sample_period {
            // The sample count over the horizon is known up front; pre-size
            // the always-present series so the hot loop never regrows them.
            let cap = (self.cfg.max_time.as_millis() / period.as_millis() + 1) as usize;
            profile.reserve_series("total", cap);
            if self.cfg.monitor.is_some() {
                profile.reserve_series("low-threshold", cap);
                profile.reserve_series("high-threshold", cap);
                profile.reserve_series("top", cap);
            }
        }

        loop {
            kernel.set_time(now);

            // 1. Start applications whose delay has elapsed.
            for idx in queue.pop_due(now) {
                let (name, _, bp) = &schedule[idx];
                let pid = kernel.spawn(name.as_ref());
                let app = bp.build_configured(pid, self.cfg.node_salt, self.cfg.scheduler_config());
                results[idx].started = now;
                if app.failed() {
                    results[idx].failed = true;
                    results[idx].ended = Some(now);
                    kernel.exit(pid);
                    continue;
                }
                let class = classes.get(idx).copied().unwrap_or_default();
                if bp.is_m3() {
                    // §6: participants drop a PID file in the registration
                    // directory; the monitor picks it up on its next poll.
                    // The file also declares the job's criticality class.
                    registry.register_with_class(&kernel, pid, name.as_ref(), class.crit);
                }
                if let Some(set) = cgroups.as_mut() {
                    set.group_mut(idx).add(pid);
                }
                running.push(Slot {
                    idx,
                    app,
                    peak_rss: 0,
                    class,
                    stall: SimDuration::ZERO,
                    unresponsive: None,
                    leak_rate: 0,
                    leak_carry: 0,
                });
            }

            // 1b. Fault injection: apply due fault events. Events whose
            //     victim is not running are recorded as unapplied, never
            //     silently dropped.
            for action in faultq.pop_due(now) {
                match action {
                    FaultAction::App(i) => {
                        let ev = &faults.events[i];
                        if ev.target >= schedule.len() {
                            degradation.faults_unapplied.push(UnappliedFault {
                                event: ev.clone(),
                                reason: UnappliedReason::NoSuchApp,
                            });
                            continue;
                        }
                        match running.iter_mut().find(|s| s.idx == ev.target) {
                            Some(slot) => {
                                match ev.kind {
                                    FaultKind::Crash => kernel.kill(slot.app.pid()),
                                    FaultKind::Unresponsive { reclaim_fraction } => {
                                        slot.unresponsive = Some(reclaim_fraction.clamp(0.0, 1.0));
                                    }
                                    FaultKind::Leak { bytes_per_sec } => {
                                        slot.leak_rate = bytes_per_sec;
                                    }
                                }
                                degradation.faults_applied += 1;
                                // Recovery is measured in monitor polls, so
                                // it is only tracked when a monitor runs.
                                if let Some(m) = monitor.as_ref() {
                                    pending_recoveries.push((i, m.stats.polls, false));
                                }
                            }
                            None => {
                                let r = &results[ev.target];
                                let reason = if r.finished.is_some() || r.killed || r.failed {
                                    UnappliedReason::AlreadyDone
                                } else {
                                    UnappliedReason::NotStarted
                                };
                                degradation.faults_unapplied.push(UnappliedFault {
                                    event: ev.clone(),
                                    reason,
                                });
                            }
                        }
                    }
                    FaultAction::ChurnSpawn(i) => {
                        let ch = &faults.churn[i];
                        // A ghost participant registers and crashes without
                        // deregistering; its stale PID file lingers.
                        let ghost = kernel.spawn(format!("ghost-{i}"));
                        registry.register(&kernel, ghost, format!("ghost-{i}"));
                        kernel.kill(ghost);
                        // An unrelated bystander immediately reuses the pid.
                        // The sweep must not let it inherit the ghost's
                        // registration (incarnation mismatch).
                        let bystander = kernel.spawn_reusing(ghost, format!("bystander-{i}"));
                        let _ = kernel.grow(bystander, ch.bystander_rss);
                        churn_bystanders[i] = bystander;
                        faultq.schedule(now + ch.bystander_lifetime, FaultAction::ChurnRetire(i));
                        degradation.faults_applied += 1;
                    }
                    FaultAction::ChurnRetire(i) => {
                        kernel.exit(churn_bystanders[i]);
                    }
                }
            }

            // 2a. Container limit enforcement (once per second):
            //     `memory.high` semantics — members of an over-limit group
            //     receive reclaim pressure.
            if let Some(set) = cgroups.as_ref() {
                if now >= next_enforce {
                    next_enforce += poll_period;
                    for idx in set.over_limit(&kernel) {
                        for pid in set.groups()[idx].members() {
                            kernel.send_signal(pid, Signal::HighMemory);
                        }
                    }
                }
            }

            // 2. Monitor poll (once per second of simulated time). The
            //    monitor first re-reads the PID-file directory. Injected
            //    outage windows make the meminfo read fail; the monitor
            //    then polls in degraded mode instead of skipping.
            if let Some(m) = monitor.as_mut() {
                if now >= next_poll {
                    kernel.set_meminfo_outage(faults.poll_outages.iter().any(|w| w.contains(now)));
                    registry.sync_monitor(m, &kernel);
                    let report = m.poll(&mut kernel, now);
                    next_poll += poll_period;
                    if let Some(stride) = self.cfg.pressure_timeline_polls {
                        if stride > 0 && m.stats.polls % stride == 0 {
                            pressure_timeline
                                .push((now.as_millis(), m.pressure_summary(kernel.committed())));
                        }
                    }
                    match report.zone {
                        Zone::AboveTop => {
                            // Usage crossed top: arm every pending fault so
                            // its eventual return to comfort is measured as
                            // a real excursion-and-recovery. (Red alone does
                            // not arm — threshold-riding through the red
                            // zone is normal M3 operation, not damage.)
                            for entry in &mut pending_recoveries {
                                entry.2 = true;
                            }
                        }
                        Zone::Red => {}
                        Zone::Green | Zone::Yellow => {
                            // Comfortably below the high threshold again:
                            // every armed fault has recovered.
                            let polls_now = m.stats.polls;
                            pending_recoveries.retain(|&(i, at, armed)| {
                                if armed {
                                    degradation.recoveries.push(FaultRecovery {
                                        event_index: i,
                                        recovered_after_polls: Some(polls_now.saturating_sub(at)),
                                    });
                                }
                                !armed
                            });
                        }
                    }
                    if self.cfg.sample_period.is_some() {
                        for _ in &report.low_signalled {
                            profile.mark(now, "signal.low");
                        }
                        for _ in &report.high_signalled {
                            profile.mark(now, "signal.high");
                        }
                        for _ in &report.killed {
                            profile.mark(now, "kill");
                        }
                    }
                }
            }

            // 3. Deliver signals (upper layers reclaim before lower ones,
            //    inside each app's handler).
            for slot in &mut running {
                let pid = slot.app.pid();
                for sig in kernel.take_signals(pid) {
                    match sig {
                        Signal::Kill => {
                            results[slot.idx].killed = true;
                        }
                        other => {
                            // A pressure signal can share the batch with (or
                            // be deferred by the lossy bus past) the kill
                            // that terminated this process; the dead cannot
                            // run handlers.
                            if !kernel.is_alive(pid) {
                                continue;
                            }
                            let Some(t) = ThresholdSignal::from_os_signal(other) else {
                                continue;
                            };
                            // Per-class reclamation aggressiveness: a batch
                            // job answers the advisory low signal with its
                            // high handler (earlier, larger reclamation); a
                            // latency-critical job ignores low entirely and
                            // only reclaims on high. Standard is unchanged.
                            let t = match (slot.class.crit, t) {
                                (Criticality::Batch, ThresholdSignal::Low) => ThresholdSignal::High,
                                (Criticality::LatencyCritical, ThresholdSignal::Low) => continue,
                                _ => t,
                            };
                            let sig_kind = match t {
                                ThresholdSignal::Low => SigKind::Low,
                                ThresholdSignal::High => SigKind::High,
                            };
                            kernel.record_trace(pid, TraceData::HandlerStart { sig: sig_kind });
                            let out = slot.app.handle_signal(t, &mut kernel, now);
                            slot.app.add_debt(out.duration);
                            slot.stall += out.duration;
                            // Injected non-cooperation: the handler ran and
                            // freed pages internally, but only a fraction
                            // actually reaches the OS — the rest is re-grown
                            // into the kernel ledger (pages never madvised).
                            let returned = match slot.unresponsive {
                                Some(f) => {
                                    let kept = (out.returned_to_os as f64 * f) as u64;
                                    let _ = kernel.grow(pid, out.returned_to_os - kept);
                                    kept
                                }
                                None => out.returned_to_os,
                            };
                            kernel.record_trace_with(pid, || TraceData::HandlerEnd {
                                sig: sig_kind,
                                duration_ms: out.duration.as_millis(),
                                returned,
                            });
                            if t == ThresholdSignal::High {
                                if let Some(m) = monitor.as_mut() {
                                    m.note_reclamation(pid, returned);
                                }
                            }
                        }
                    }
                }
            }
            running.retain(|s| {
                if results[s.idx].killed {
                    results[s.idx].peak_rss = s.peak_rss;
                    results[s.idx].stall = s.stall;
                    results[s.idx].ended = Some(now);
                    // Killed processes leave a stale PID file; the sweep on
                    // the next sync removes it and unregisters the process.
                    if let Some(m) = monitor.as_mut() {
                        m.unregister(s.app.pid());
                    }
                    false
                } else {
                    true
                }
            });

            // 4. Advance applications, slowed by any swap thrashing.
            let budget = self.cfg.tick.mul_f64(kernel.thrash_multiplier());
            let readers = running.iter().filter(|s| s.app.uses_disk()).count();
            let mut finished_idx = Vec::new();
            for slot in &mut running {
                // Injected leak: steady growth the app itself never frees.
                // Exact integer carry keeps sub-second rates deterministic.
                if slot.leak_rate > 0 {
                    slot.leak_carry += slot.leak_rate * self.cfg.tick.as_millis();
                    let bytes = slot.leak_carry / 1000;
                    slot.leak_carry %= 1000;
                    if bytes > 0 {
                        let _ = kernel.grow(slot.app.pid(), bytes);
                    }
                }
                let done = slot.app.tick(&mut kernel, &disk, now, budget, readers);
                slot.peak_rss = slot.peak_rss.max(kernel.rss(slot.app.pid()));
                if done {
                    finished_idx.push(slot.idx);
                }
            }
            running.retain_mut(|s| {
                if finished_idx.contains(&s.idx) {
                    let r = &mut results[s.idx];
                    r.finished = Some(now + self.cfg.tick);
                    r.ended = r.finished;
                    r.failed = s.app.failed();
                    r.gc_pause = s.app.gc_pause();
                    r.mm_time = s.app.mm_time();
                    r.stall = s.stall;
                    r.peak_rss = s.peak_rss;
                    let pid = s.app.pid();
                    kernel.exit(pid);
                    // Clean shutdown removes the PID file and unregisters.
                    registry.deregister(pid);
                    if let Some(m) = monitor.as_mut() {
                        m.unregister(pid);
                    }
                    false
                } else {
                    true
                }
            });

            // 5. OOM killer (swap exhaustion).
            while kernel.check_oom().is_some() {}

            // 6. Sample the profile.
            let committed = kernel.committed();
            rss_area += committed as u128;
            ticks += 1;
            if let Some(period) = self.cfg.sample_period {
                if now >= next_sample {
                    profile
                        .series_mut("total")
                        .push(now, bytes_to_gib(committed));
                    let remaining = (self
                        .cfg
                        .max_time
                        .as_millis()
                        .saturating_sub(now.as_millis())
                        / period.as_millis()
                        + 1) as usize;
                    for slot in &running {
                        let rss = kernel.rss(slot.app.pid());
                        let name = &results[slot.idx].name;
                        profile
                            .reserve_series(name, remaining)
                            .push(now, bytes_to_gib(rss));
                    }
                    if let Some(m) = monitor.as_ref() {
                        let (low, high) = m.thresholds();
                        profile
                            .series_mut("low-threshold")
                            .push(now, bytes_to_gib(low));
                        profile
                            .series_mut("high-threshold")
                            .push(now, bytes_to_gib(high));
                        profile
                            .series_mut("top")
                            .push(now, bytes_to_gib(m.config().top));
                    }
                    next_sample += period;
                }
            }

            now += self.cfg.tick;
            let all_started = queue.is_empty();
            if (all_started && running.is_empty())
                || now.saturating_since(SimTime::ZERO) >= self.cfg.max_time
            {
                break;
            }

            // Fast path: with no live process the world is inert between
            // scheduled instants — nothing allocates, the OOM check stays
            // quiescent, and `committed` is constant — so jump the clock to
            // the next instant at which anything can happen (app start,
            // chaos kill, monitor poll, cgroup enforcement, profile sample),
            // accounting the skipped ticks into the mean-RSS integral.
            if self.cfg.fast_path && running.is_empty() {
                let tick_ms = self.cfg.tick.as_millis();
                let grid_ceil = |t: u64| t.div_ceil(tick_ms) * tick_ms;
                // The break above fires at the first grid instant at or past
                // the time cap, so no loop iteration can run later than this.
                let mut target_ms = grid_ceil(self.cfg.max_time.as_millis());
                let candidates = [
                    queue.next_due().map(|t| t.as_millis()),
                    faultq.next_due().map(|t| t.as_millis()),
                    monitor.is_some().then(|| next_poll.as_millis()),
                    cgroups.is_some().then(|| next_enforce.as_millis()),
                    self.cfg.sample_period.map(|_| next_sample.as_millis()),
                ];
                for t in candidates.into_iter().flatten() {
                    target_ms = target_ms.min(grid_ceil(t));
                }
                let now_ms = now.as_millis();
                if target_ms > now_ms {
                    let skipped = (target_ms - now_ms) / tick_ms;
                    rss_area += kernel.committed() as u128 * u128::from(skipped);
                    ticks += skipped;
                    now = SimTime::from_millis(target_ms);
                    if now.saturating_since(SimTime::ZERO) >= self.cfg.max_time {
                        break;
                    }
                }
            }
        }

        // Fault events the loop never reached (the run ended first) are
        // still accounted, not lost.
        for action in faultq.pop_due(SimTime::ZERO + SimDuration::from_millis(u64::MAX / 2)) {
            if let FaultAction::App(i) = action {
                degradation.faults_unapplied.push(UnappliedFault {
                    event: faults.events[i].clone(),
                    reason: UnappliedReason::RunEnded,
                });
            }
        }
        // Faults still pending recovery: if the run ended with committed
        // memory at or below the high threshold, termination itself was the
        // recovery (faults that never armed never caused an excursion at
        // all); otherwise the system never got back down.
        if let Some(m) = monitor.as_ref() {
            let recovered_by_end = kernel.committed() <= m.thresholds().1;
            let polls_now = m.stats.polls;
            for (i, at, _) in pending_recoveries.drain(..) {
                degradation.recoveries.push(FaultRecovery {
                    event_index: i,
                    recovered_after_polls: recovered_by_end.then(|| polls_now.saturating_sub(at)),
                });
            }
        }
        let fault_stats = kernel.signal_fault_stats();
        degradation.signals_dropped = fault_stats.dropped;
        degradation.signals_delayed = fault_stats.delayed;
        if let Some(m) = monitor.as_ref() {
            degradation.degraded_polls = m.stats.degraded_polls;
            degradation.watchdog_escalations = m.stats.watchdog_escalations;
            degradation.watchdog_resignals = m.stats.watchdog_resignals;
            degradation.polls_above_top = m.stats.polls_above_top;
            degradation.time_above_top =
                SimDuration::from_millis(poll_period.as_millis() * m.stats.polls_above_top);
        }

        // Every traced run is checked against the paper's invariants on the
        // way out; callers find divergences in `violations`.
        let trace = std::mem::take(&mut kernel.trace);
        let violations = if trace.is_empty() {
            Vec::new()
        } else {
            Oracle::paper(self.cfg.monitor).check(&trace)
        };

        // Finalize GC/MM stats for apps killed mid-flight (already recorded
        // for finished apps).
        let pressure = monitor
            .as_ref()
            .map(|m| m.pressure_summary(kernel.committed()));
        // Close the timeline with the end-of-run state: reads at any
        // `t >= end` must see the node as it finished (typically drained
        // back to zero committed), not frozen at the last in-flight poll.
        if self.cfg.pressure_timeline_polls.is_some() {
            if let Some(p) = pressure {
                pressure_timeline.push((now.as_millis(), p));
            }
        }
        RunResult {
            apps: results,
            profile,
            monitor_stats: monitor.map(|m| m.stats),
            pressure,
            pressure_timeline,
            end: now,
            mean_rss: if ticks > 0 {
                rss_area as f64 / ticks as f64
            } else {
                0.0
            },
            degradation,
            trace,
            violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::AppKind;
    use crate::settings::{blueprint_for, AppConfig};
    use m3_framework::{JobKind, JobSpec, SparkConfig};
    use m3_runtime::JvmConfig;
    use m3_sim::units::MIB;

    fn tiny_job(ws_gib: u64) -> JobSpec {
        JobSpec {
            kind: JobKind::KMeans,
            name: "tiny".into(),
            input_bytes: ws_gib * GIB / 2,
            working_set: ws_gib * GIB,
            iterations: 2,
            compute_ms_per_block: 50,
            churn_per_block: 64 * MIB,
            min_heap: 0,
            churn_survival: 0.08,
            exec_demand: 0,
        }
    }

    fn spark_entry_ws(
        name: &str,
        start_s: u64,
        heap_gib: u64,
        m3: bool,
        ws_gib: u64,
    ) -> ScheduleEntry {
        let bp = if m3 {
            AppBlueprint::Spark {
                jvm: JvmConfig::m3(crate::settings::M3_HEAP_CEILING),
                spark: SparkConfig::m3(),
                job: tiny_job(ws_gib),
            }
        } else {
            AppBlueprint::Spark {
                jvm: JvmConfig::stock(heap_gib * GIB),
                spark: SparkConfig::default(),
                job: tiny_job(ws_gib),
            }
        };
        (name.into(), SimDuration::from_secs(start_s), bp)
    }

    fn spark_entry(name: &str, start_s: u64, heap_gib: u64, m3: bool) -> ScheduleEntry {
        spark_entry_ws(name, start_s, heap_gib, m3, 4)
    }

    #[test]
    fn single_app_runs_to_completion() {
        let m = Machine::new(MachineConfig::stock_64gb());
        let res = m.run(vec![spark_entry("job0", 0, 8, false)]);
        assert!(res.all_finished());
        let r = &res.apps[0];
        assert!(r.runtime().unwrap() > SimDuration::ZERO);
        assert!(r.peak_rss > 0);
        assert!(res.end > SimTime::ZERO);
    }

    #[test]
    fn delayed_starts_are_honoured() {
        let m = Machine::new(MachineConfig::stock_64gb());
        let res = m.run(vec![
            spark_entry("a", 0, 8, false),
            spark_entry("b", 30, 8, false),
        ]);
        assert_eq!(res.apps[1].started.as_secs(), 30);
        assert!(res.apps[1].finished.unwrap() > res.apps[0].finished.unwrap());
    }

    #[test]
    fn profile_is_sampled_with_thresholds_under_m3() {
        let m = Machine::new(MachineConfig::m3_64gb());
        let res = m.run(vec![spark_entry("a", 0, 8, true)]);
        assert!(res.all_finished());
        assert!(res.profile.series("total").is_some());
        assert!(res.profile.series("low-threshold").is_some());
        assert!(res.profile.series("high-threshold").is_some());
        assert!(res.profile.series("a").is_some());
        assert!(res.monitor_stats.is_some());
    }

    #[test]
    fn stock_run_has_no_thresholds() {
        let m = Machine::new(MachineConfig::stock_64gb());
        let res = m.run(vec![spark_entry("a", 0, 8, false)]);
        assert!(res.profile.series("low-threshold").is_none());
        assert!(res.monitor_stats.is_none());
    }

    #[test]
    fn sampling_can_be_disabled() {
        let mut cfg = MachineConfig::stock_64gb();
        cfg.sample_period = None;
        let res = Machine::new(cfg).run(vec![spark_entry("a", 0, 8, false)]);
        assert!(res.profile.series.is_empty());
        assert!(res.mean_rss > 0.0, "mean rss is tracked regardless");
    }

    #[test]
    fn failed_app_is_reported_not_run() {
        // Stock n-weight under a too-small heap fails immediately.
        let bp = blueprint_for(AppKind::NWeight, &AppConfig::stock_default(), false);
        let m = Machine::new(MachineConfig::stock_64gb());
        let res = m.run(vec![("w".into(), SimDuration::ZERO, bp)]);
        assert!(res.apps[0].failed);
        assert!(res.apps[0].finished.is_none());
        assert!(!res.all_finished());
    }

    #[test]
    fn m3_signals_fire_under_pressure() {
        // Two big working sets on a small machine: the monitor must signal.
        let mut cfg = MachineConfig::scaled(8 * GIB, true);
        cfg.max_time = SimDuration::from_secs(8000);
        let m = Machine::new(cfg);
        let entries = vec![
            spark_entry_ws("a", 0, 8, true, 6),
            spark_entry_ws("b", 2, 8, true, 6),
        ];
        let res = m.run(entries);
        let stats = res.monitor_stats.unwrap();
        assert!(stats.polls > 0);
        assert!(
            stats.low_signals + stats.high_signals > 0,
            "pressure on an 8 GiB node with two 4 GiB working sets must signal"
        );
    }

    #[test]
    fn mean_rss_is_reasonable() {
        let m = Machine::new(MachineConfig::stock_64gb());
        let res = m.run(vec![spark_entry("a", 0, 8, false)]);
        assert!(res.mean_rss > 0.0);
        assert!(res.mean_rss < 64.0 * GIB as f64);
    }

    /// Two identical M3 jobs on a small pressured node, one per class under
    /// test — returns each run's per-signal handler counts from the trace.
    fn classed_pressure_run(crit: Criticality) -> (u64, u64, RunResult) {
        let mut cfg = MachineConfig::scaled(8 * GIB, true);
        cfg.max_time = SimDuration::from_secs(8000);
        let entries = vec![
            spark_entry_ws("a", 0, 8, true, 6),
            spark_entry_ws("b", 2, 8, true, 6),
        ];
        let classes = vec![crate::scenario::JobClass::new(crit, 0); 2];
        let res = Machine::new(cfg).run_classed(entries, &classes);
        let mut low = 0;
        let mut high = 0;
        for e in res.trace.events() {
            if let TraceData::HandlerStart { sig } = e.data {
                match sig {
                    SigKind::Low => low += 1,
                    SigKind::High => high += 1,
                    SigKind::Kill => {}
                }
            }
        }
        (low, high, res)
    }

    #[test]
    fn batch_class_escalates_low_signals_to_high_handlers() {
        let (std_low, _, std_res) = classed_pressure_run(Criticality::Standard);
        let (batch_low, batch_high, batch_res) = classed_pressure_run(Criticality::Batch);
        assert!(std_low > 0, "standard jobs under pressure run low handlers");
        assert_eq!(
            batch_low, 0,
            "batch jobs answer every low signal with the high handler"
        );
        assert!(batch_high > 0);
        assert_eq!(std_res.violations, Vec::new());
        assert_eq!(batch_res.violations, Vec::new(), "class mapping conforms");
    }

    #[test]
    fn latency_critical_class_ignores_low_signals() {
        let (low, _, res) = classed_pressure_run(Criticality::LatencyCritical);
        assert_eq!(low, 0, "latency-critical jobs never run the low handler");
        let sent_low = res.trace.count("signal.low");
        assert!(
            sent_low > 0,
            "the monitor still sends low signals as before"
        );
        assert_eq!(res.violations, Vec::new());
    }

    #[test]
    fn stall_accounts_reclamation_handler_time() {
        let (_, high, res) = classed_pressure_run(Criticality::Standard);
        assert!(high > 0, "pressure must trigger reclamation");
        let stalled: Vec<_> = res
            .apps
            .iter()
            .filter(|a| a.stall > SimDuration::ZERO)
            .collect();
        assert!(!stalled.is_empty(), "handler time is charged as stall");
        for a in &res.apps {
            if let Some(rt) = a.runtime() {
                assert!(a.stall <= rt, "stall is part of the runtime");
            }
        }
    }
}
