//! The five configuration regimes of §7.1.2.
//!
//! - **Default** — stock applications with out-of-the-box settings: 16 GB
//!   JVM heap, `GOGC=100`, a 16 GB cache "mimicking the JVM", default Spark
//!   parameters.
//! - **Globally Optimal** — one static configuration per application *kind*
//!   minimizing average runtime across all sixteen workloads (found by the
//!   grid search in [`crate::search`]).
//! - **Oracle** — the best static memory partitioning per *workload*
//!   (requires future knowledge of the schedule; heap sizes and `GOGC`).
//! - **Oracle with Spark configuration (OWS)** — Oracle plus per-workload
//!   tuning of `spark.memory.fraction` / `storageFraction`.
//! - **M3** — modified stacks: effectively unbounded heaps/caches governed
//!   by the monitor's signals.

use m3_framework::SparkConfig;
use m3_runtime::{AllocatorKind, GoConfig, JvmConfig};
use m3_sim::units::GIB;
use serde::{Deserialize, Serialize};

use crate::apps::AppBlueprint;
use crate::hibench;
use crate::scenario::AppKind;

/// Heap ceiling handed to M3-modified runtimes (effectively unbounded; real
/// growth is governed by signals and, as a last resort, the OOM killer).
pub const M3_HEAP_CEILING: u64 = 1024 * GIB;

/// The static knobs for one application instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppConfig {
    /// JVM max heap (`-Xmx`) for Spark / JVM apps.
    pub heap: u64,
    /// Spark memory parameters.
    pub spark: SparkConfig,
    /// `GOGC` for Go apps.
    pub gogc: u64,
    /// Static cache size for cache apps.
    pub cache_bytes: u64,
}

impl AppConfig {
    /// The Default regime's knobs (§7.1.2).
    pub fn stock_default() -> Self {
        AppConfig {
            heap: 16 * GIB,
            spark: SparkConfig::default(),
            gogc: 100,
            cache_bytes: 16 * GIB,
        }
    }
}

/// Which configuration regime a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SettingKind {
    /// Out-of-the-box settings.
    Default,
    /// Best single per-kind configuration across all workloads.
    GloballyOptimal,
    /// Best per-workload static partitioning (heap + GOGC + cache size).
    Oracle,
    /// Oracle plus per-workload Spark parameter tuning.
    OracleWithSpark,
    /// The M3 system.
    M3,
}

impl SettingKind {
    /// Display name used in figures.
    pub fn label(self) -> &'static str {
        match self {
            SettingKind::Default => "Default",
            SettingKind::GloballyOptimal => "Global Optimal",
            SettingKind::Oracle => "Oracle",
            SettingKind::OracleWithSpark => "Oracle with Spark Configuration",
            SettingKind::M3 => "M3",
        }
    }
}

/// A fully resolved setting: one [`AppConfig`] per scheduled application.
/// (`per_app` is ignored under [`SettingKind::M3`].)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Setting {
    /// The regime this setting belongs to.
    pub kind: SettingKind,
    /// Per-application knobs, aligned with the scenario's app list.
    pub per_app: Vec<AppConfig>,
}

impl Setting {
    /// The Default regime for `n` applications.
    pub fn default_for(n: usize) -> Self {
        Setting {
            kind: SettingKind::Default,
            per_app: vec![AppConfig::stock_default(); n],
        }
    }

    /// The M3 regime (per-app knobs are irrelevant).
    pub fn m3(n: usize) -> Self {
        Setting {
            kind: SettingKind::M3,
            per_app: vec![AppConfig::stock_default(); n],
        }
    }

    /// A uniform static setting (every app gets `cfg`).
    pub fn uniform(kind: SettingKind, cfg: AppConfig, n: usize) -> Self {
        Setting {
            kind,
            per_app: vec![cfg; n],
        }
    }

    /// Is this the M3 system (as opposed to a static baseline)?
    pub fn is_m3(&self) -> bool {
        self.kind == SettingKind::M3
    }
}

/// Builds the blueprint for one scheduled application under a setting.
pub fn blueprint_for(kind: AppKind, cfg: &AppConfig, m3: bool) -> AppBlueprint {
    match kind {
        AppKind::KMeans | AppKind::PageRank | AppKind::NWeight => {
            let job = hibench::job_by_code(kind.code());
            if m3 {
                AppBlueprint::Spark {
                    jvm: JvmConfig::m3(M3_HEAP_CEILING),
                    spark: SparkConfig::m3(),
                    job,
                }
            } else {
                AppBlueprint::Spark {
                    jvm: JvmConfig::stock(cfg.heap),
                    spark: cfg.spark,
                    job,
                }
            }
        }
        AppKind::GoCache => AppBlueprint::GoCache {
            go: if m3 {
                GoConfig::m3(cfg.gogc)
            } else {
                GoConfig::stock(cfg.gogc)
            },
            workload: hibench::gocache_workload(),
            max_bytes: cfg.cache_bytes,
            m3_mode: m3,
        },
        AppKind::Memcached => AppBlueprint::Memcached {
            // Stock Memcached links malloc; the paper's M3 port swaps in
            // jemalloc so freed slabs actually reach the OS (§4.1).
            allocator: if m3 {
                AllocatorKind::Jemalloc
            } else {
                AllocatorKind::Malloc
            },
            workload: hibench::memtier_workload(),
            max_bytes: cfg.cache_bytes,
            m3_mode: m3,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = AppConfig::stock_default();
        assert_eq!(c.heap, 16 * GIB);
        assert_eq!(c.gogc, 100);
        assert_eq!(c.cache_bytes, 16 * GIB);
    }

    #[test]
    fn m3_blueprints_are_m3() {
        for kind in [
            AppKind::KMeans,
            AppKind::PageRank,
            AppKind::NWeight,
            AppKind::GoCache,
            AppKind::Memcached,
        ] {
            let bp = blueprint_for(kind, &AppConfig::stock_default(), true);
            assert!(bp.is_m3(), "{kind:?} must be M3 under the M3 setting");
            let stock = blueprint_for(kind, &AppConfig::stock_default(), false);
            assert!(!stock.is_m3(), "{kind:?} must be stock otherwise");
        }
    }

    #[test]
    fn stock_spark_uses_configured_heap() {
        let cfg = AppConfig {
            heap: 24 * GIB,
            ..AppConfig::stock_default()
        };
        match blueprint_for(AppKind::KMeans, &cfg, false) {
            AppBlueprint::Spark { jvm, .. } => assert_eq!(jvm.max_heap, 24 * GIB),
            other => panic!("expected Spark, got {other:?}"),
        }
    }

    #[test]
    fn stock_memcached_links_malloc() {
        match blueprint_for(AppKind::Memcached, &AppConfig::stock_default(), false) {
            AppBlueprint::Memcached { allocator, .. } => {
                assert_eq!(allocator, AllocatorKind::Malloc);
            }
            other => panic!("expected Memcached, got {other:?}"),
        }
        match blueprint_for(AppKind::Memcached, &AppConfig::stock_default(), true) {
            AppBlueprint::Memcached { allocator, .. } => {
                assert_eq!(allocator, AllocatorKind::Jemalloc);
            }
            other => panic!("expected Memcached, got {other:?}"),
        }
    }

    #[test]
    fn setting_constructors() {
        let d = Setting::default_for(3);
        assert_eq!(d.kind, SettingKind::Default);
        assert_eq!(d.per_app.len(), 3);
        assert!(!d.is_m3());
        assert!(Setting::m3(2).is_m3());
        let labels: Vec<_> = [
            SettingKind::Default,
            SettingKind::GloballyOptimal,
            SettingKind::Oracle,
            SettingKind::OracleWithSpark,
            SettingKind::M3,
        ]
        .iter()
        .map(|k| k.label())
        .collect();
        assert_eq!(labels.len(), 5);
    }
}
