//! Calibrated per-node job parameters (§7.1.1).
//!
//! The paper's inputs are cluster-wide over 8 workers: 89.8 GB (k-means),
//! 5.7 GB (PageRank), 1.8 GB (n-weight). Per-node inputs divide by 8; the
//! in-memory working sets are larger by job-specific expansion factors
//! (deserialization for k-means; graph and intermediate-result expansion
//! for PageRank and n-weight — the reason PageRank keeps improving out to a
//! 76 GB heap in Fig. 1 despite a 5.7 GB input).
//!
//! Calibration targets (shape, not absolute numbers):
//!
//! | job | working set | flattens at heap ≈ ws / 0.45 | paper Fig. 1 |
//! |---|---|---|---|
//! | k-means | 18 GiB | ~40 GB | 40 GB |
//! | PageRank | 34 GiB | ~76 GB | 76 GB |
//! | n-weight | 40 GiB | (not in Fig. 1; Fig. 7 peak ≈ 58 GB) | — |
//!
//! n-weight's `min_heap` of 18 GiB makes it fail under the 16 GB Default
//! heap ("n-weight cannot complete with the default heap size", §7.2).

use m3_cache::KvWorkload;
use m3_framework::{JobKind, JobSpec};
use m3_sim::units::{GIB, MIB};

/// Per-node k-means job ('M' in workload names).
pub fn kmeans() -> JobSpec {
    JobSpec {
        kind: JobKind::KMeans,
        name: "k-means".into(),
        input_bytes: (11.2 * GIB as f64) as u64,
        working_set: 18 * GIB,
        iterations: 8,
        compute_ms_per_block: 260,
        churn_per_block: 128 * MIB,
        min_heap: 6 * GIB,
        churn_survival: 0.08,
        exec_demand: 3 * GIB,
    }
}

/// Per-node PageRank job ('P').
pub fn pagerank() -> JobSpec {
    JobSpec {
        kind: JobKind::PageRank,
        name: "pagerank".into(),
        input_bytes: (0.71 * GIB as f64) as u64,
        working_set: 34 * GIB,
        iterations: 6,
        compute_ms_per_block: 330,
        churn_per_block: 512 * MIB,
        min_heap: 10 * GIB,
        churn_survival: 0.12,
        exec_demand: 5 * GIB,
    }
}

/// Per-node n-weight job ('W').
pub fn nweight() -> JobSpec {
    JobSpec {
        kind: JobKind::NWeight,
        name: "n-weight".into(),
        input_bytes: (0.23 * GIB as f64) as u64,
        working_set: 40 * GIB,
        iterations: 3,
        compute_ms_per_block: 330,
        churn_per_block: 640 * MIB,
        min_heap: 18 * GIB,
        churn_survival: 0.10,
        exec_demand: 7 * GIB,
    }
}

/// A k-means job scaled for the single 8-GB node of Fig. 9.
pub fn kmeans_small() -> JobSpec {
    JobSpec {
        kind: JobKind::KMeans,
        name: "k-means-8gb".into(),
        input_bytes: 3 * GIB,
        working_set: 4 * GIB,
        iterations: 8,
        compute_ms_per_block: 260,
        churn_per_block: 64 * MIB,
        min_heap: GIB,
        churn_survival: 0.08,
        exec_demand: GIB,
    }
}

/// The job spec for a one-letter code (M/P/W).
///
/// # Panics
///
/// Panics on an unknown code.
pub fn job_by_code(code: char) -> JobSpec {
    match code {
        'M' => kmeans(),
        'P' => pagerank(),
        'W' => nweight(),
        other => panic!("unknown analytics job code {other:?}"),
    }
}

/// The Go-Cache benchmark ('C'): 12 M keys at 85 %, 6.5 M uniform gets.
pub fn gocache_workload() -> KvWorkload {
    KvWorkload::paper_gocache()
}

/// The memtier Memcached benchmark of Fig. 9 (8-GB node).
pub fn memtier_workload() -> KvWorkload {
    KvWorkload::paper_memtier()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_validate() {
        for job in [kmeans(), pagerank(), nweight()] {
            job.validate();
        }
        gocache_workload().validate();
        memtier_workload().validate();
    }

    #[test]
    fn figure_1_flattening_points() {
        // Fig. 1: performance stops improving at ~40 GB (k-means) and
        // ~76 GB (PageRank), i.e. where the default 45 %-of-heap storage
        // capacity first covers the working set.
        let m = kmeans().working_set as f64 / 0.45 / GIB as f64;
        assert!((38.0..44.0).contains(&m), "k-means flattens at {m:.1} GiB");
        let p = pagerank().working_set as f64 / 0.45 / GIB as f64;
        assert!((72.0..80.0).contains(&p), "PageRank flattens at {p:.1} GiB");
    }

    #[test]
    fn nweight_fails_default_heap() {
        assert!(nweight().min_heap > 16 * GIB);
        assert!(kmeans().min_heap < 16 * GIB);
        assert!(pagerank().min_heap < 16 * GIB);
    }

    #[test]
    fn codes_round_trip() {
        for (code, kind) in [
            ('M', JobKind::KMeans),
            ('P', JobKind::PageRank),
            ('W', JobKind::NWeight),
        ] {
            let j = job_by_code(code);
            assert_eq!(j.kind, kind);
            assert_eq!(j.kind.code(), code);
        }
    }

    #[test]
    #[should_panic(expected = "unknown analytics job code")]
    fn bad_code_panics() {
        job_by_code('X');
    }

    #[test]
    fn combined_peaks_exceed_node_memory() {
        // The "large peak usage" target-workload property (§3): the sum of
        // peaks must exceed 64 GB or static allocation would suffice.
        let total = gocache_workload().full_bytes() + kmeans().working_set + nweight().working_set;
        assert!(total > 64 * GIB);
    }
}
