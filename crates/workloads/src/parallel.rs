//! Parallel deterministic experiment harness.
//!
//! The paper's evaluation is hundreds of independent simulated runs (12
//! workloads × several settings, grid searches, multi-node clusters). Each
//! run is a pure function of `(scenario, setting, machine_cfg)`, so two
//! orthogonal optimizations apply:
//!
//! - **Fan-out**: independent runs execute on a shared pool of worker
//!   threads ([`parallel_map`]), with results returned in submission order
//!   so callers observe exactly the serial behaviour, only sooner.
//! - **Memoization**: a process-wide content-addressed cache
//!   ([`run_scenario_cached`]) keyed on the serialized inputs hands back a
//!   shared [`Arc`] of a previous identical run. Grid searches revisit the
//!   same configuration many times across coordinate-descent passes; those
//!   revisits are free.
//!
//! Both are sound because the simulator is deterministic: a run's output is
//! bit-identical no matter which thread computes it, or whether it is
//! replayed from the cache (the determinism regression test in
//! `tests/determinism.rs` pins this down).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::faults::FaultPlan;
use crate::machine::MachineConfig;
use crate::runner::{run_scenario_with_faults, ScenarioOutcome};
use crate::scenario::Scenario;
use crate::settings::Setting;

// The pool primitives moved down into `m3-sim` so the reclamation packet
// scheduler in `m3-core` can share them; re-exported here so harness users
// keep their import paths.
pub use m3_sim::parallel::{parallel_map, worker_threads};

/// Hit/miss counters of the run memoization cache (process-wide totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute the run.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter-wise difference against an earlier snapshot, for reporting
    /// the hit rate of one bounded piece of work (e.g. one grid search).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

/// A process-wide content-addressed memo cache: serialized keys map to
/// shared [`Arc`] values, with hit/miss counters alongside. One generic
/// home for the pattern the run cache and the fleet cache share; both are
/// `static` instances (the constructor is `const`).
///
/// Lookups never hold the lock across the compute closure: two threads
/// racing on the same key both compute it, which is benign for
/// deterministic values (the results are identical) and far cheaper than
/// serializing every computation behind one lock.
pub struct MemoCache<V> {
    map: OnceLock<Mutex<HashMap<String, Arc<V>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V> MemoCache<V> {
    /// An empty cache. `const`, so instances can live in `static`s.
    pub const fn new() -> Self {
        MemoCache {
            map: OnceLock::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn map(&self) -> &Mutex<HashMap<String, Arc<V>>> {
        self.map.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Current hit/miss totals.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Returns the cached value for the serialized `key`, computing and
    /// inserting it via `compute` on a miss. The first inserted value wins
    /// a race; later computes of the same key are dropped.
    pub fn get_or_compute<K: serde::Serialize + ?Sized>(
        &self,
        key: &K,
        compute: impl FnOnce() -> V,
    ) -> Arc<V> {
        let key = serde_json::to_string(key).expect("cache key serialization cannot fail");
        if let Some(hit) = self.map().lock().expect("memo cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(compute());
        Arc::clone(
            self.map()
                .lock()
                .expect("memo cache poisoned")
                .entry(key)
                .or_insert(value),
        )
    }
}

impl<V> Default for MemoCache<V> {
    fn default() -> Self {
        MemoCache::new()
    }
}

static CACHE: MemoCache<ScenarioOutcome> = MemoCache::new();

/// Current totals of the run memoization cache.
pub fn cache_stats() -> CacheStats {
    CACHE.stats()
}

/// Like [`run_scenario`], but content-addressed: the serialized
/// `(scenario, setting, machine_cfg)` triple keys a process-wide cache, and
/// an identical earlier run is returned as a shared [`Arc`] without
/// re-simulating. The config is normalized through
/// [`MachineConfig::with_setting`] *before* keying, so configs that differ
/// only in fields the runner overrides anyway share an entry.
pub fn run_scenario_cached(
    scenario: &Scenario,
    setting: &Setting,
    machine_cfg: MachineConfig,
) -> Arc<ScenarioOutcome> {
    run_scenario_cached_faulted(scenario, setting, machine_cfg, &FaultPlan::none())
}

/// [`run_scenario_cached`] under a [`FaultPlan`]. The plan is part of the
/// content-addressed key, so a faulted run can never be answered from (or
/// pollute) the cache entry of the same run with a different plan — in
/// particular the fault-free one.
pub fn run_scenario_cached_faulted(
    scenario: &Scenario,
    setting: &Setting,
    machine_cfg: MachineConfig,
    faults: &FaultPlan,
) -> Arc<ScenarioOutcome> {
    let cfg = machine_cfg.with_setting(setting);
    CACHE.get_or_compute(&(scenario, setting, &cfg, faults), || {
        run_scenario_with_faults(scenario, setting, cfg, faults)
    })
}

/// Runs every `(scenario, setting, machine_cfg)` job on [`worker_threads`]
/// workers, memoized, returning outcomes in submission order.
pub fn run_scenarios_parallel(
    jobs: Vec<(Scenario, Setting, MachineConfig)>,
) -> Vec<Arc<ScenarioOutcome>> {
    run_scenarios_parallel_with(jobs, worker_threads())
}

/// [`run_scenarios_parallel`] with an explicit worker count (the
/// determinism test compares 1/4/8).
pub fn run_scenarios_parallel_with(
    jobs: Vec<(Scenario, Setting, MachineConfig)>,
    workers: usize,
) -> Vec<Arc<ScenarioOutcome>> {
    parallel_map(jobs, workers, |(scenario, setting, cfg)| {
        run_scenario_cached(&scenario, &setting, cfg)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::AppKind;
    use crate::settings::{AppConfig, SettingKind};
    use m3_sim::clock::SimDuration;

    #[test]
    fn cache_returns_shared_result_on_identical_inputs() {
        let scenario = Scenario {
            name: "parallel-cache-test".into(),
            apps: vec![(AppKind::KMeans, SimDuration::ZERO)],
            classes: Vec::new(),
        };
        let setting = Setting::uniform(SettingKind::Default, AppConfig::stock_default(), 1);
        let cfg = MachineConfig::stock_64gb();
        let before = cache_stats();
        let a = run_scenario_cached(&scenario, &setting, cfg);
        let b = run_scenario_cached(&scenario, &setting, cfg);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be a cache hit");
        let delta = cache_stats().since(&before);
        assert!(delta.hits >= 1);
        assert!(delta.misses >= 1);
        assert!(delta.hit_rate() > 0.0);
    }
}
