//! Fault injection for world-loop experiments.
//!
//! A [`FaultPlan`] is a serializable description of everything that goes
//! wrong during a run: scheduled crash-kills (the old
//! `Machine::run_with_chaos` behaviour), seeded signal loss/delay on the
//! bus, participants that handle signals but never return pages,
//! `/proc/meminfo` outages, per-app leaks, and stale-registration churn
//! with pid reuse. Being serializable, the plan participates in the
//! content-addressed memoization key (see [`crate::parallel`]), so a cached
//! result can never be returned for a different fault schedule.
//!
//! What the run *did* about the plan comes back in a
//! [`DegradationReport`] inside [`crate::machine::RunResult`]: which events
//! applied, which could not (and why), how many signals the bus lost, how
//! the monitor's watchdog escalated, and how long recovery took.

use m3_os::SignalFaultConfig;
use m3_sim::clock::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// What an app-targeted fault does to its victim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Kill the process outright (a crash).
    Crash,
    /// The participant keeps handling signals but returns only
    /// `reclaim_fraction` of what its handler frees to the OS — 0.0 models
    /// full non-cooperation, the problem the reclamation watchdog exists
    /// for.
    Unresponsive {
        /// Fraction of handler-freed bytes actually returned, in `[0, 1]`.
        reclaim_fraction: f64,
    },
    /// The app leaks memory at a steady rate for the rest of its life.
    Leak {
        /// Leak rate in bytes per simulated second.
        bytes_per_sec: u64,
    },
}

// Hand-written: the vendored serde derive only handles unit enum variants,
// and `Unresponsive`/`Leak` carry data. Serialized as an internally tagged
// map so plans stay readable as JSON.
impl Serialize for FaultKind {
    fn serialize(&self) -> serde::Content {
        use serde::Content;
        match self {
            FaultKind::Crash => Content::Map(vec![("kind".into(), Content::Str("crash".into()))]),
            FaultKind::Unresponsive { reclaim_fraction } => Content::Map(vec![
                ("kind".into(), Content::Str("unresponsive".into())),
                ("reclaim_fraction".into(), Content::F64(*reclaim_fraction)),
            ]),
            FaultKind::Leak { bytes_per_sec } => Content::Map(vec![
                ("kind".into(), Content::Str("leak".into())),
                ("bytes_per_sec".into(), Content::U64(*bytes_per_sec)),
            ]),
        }
    }
}

impl Deserialize for FaultKind {
    fn deserialize(c: &serde::Content) -> Result<Self, serde::DeError> {
        let tag: String = serde::map_field(c, "kind")?;
        match tag.as_str() {
            "crash" => Ok(FaultKind::Crash),
            "unresponsive" => Ok(FaultKind::Unresponsive {
                reclaim_fraction: serde::map_field(c, "reclaim_fraction")?,
            }),
            "leak" => Ok(FaultKind::Leak {
                bytes_per_sec: serde::map_field(c, "bytes_per_sec")?,
            }),
            other => Err(serde::DeError::new(format!("unknown fault kind `{other}`"))),
        }
    }
}

/// One scheduled fault against a scheduled application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimDuration,
    /// Schedule index of the victim.
    pub target: usize,
    /// What happens to it.
    pub kind: FaultKind,
}

/// A window during which the monitor's meminfo reads fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// Outage start.
    pub start: SimDuration,
    /// Outage length.
    pub duration: SimDuration,
}

impl OutageWindow {
    /// True if `now` falls inside the window.
    pub fn contains(&self, now: SimTime) -> bool {
        let t = now.saturating_since(SimTime::ZERO);
        t >= self.start && t < self.start + self.duration
    }
}

/// Stale-registration churn: at `at`, a ghost process registers with the
/// monitor and immediately crashes without deregistering; an unrelated
/// bystander then spawns *reusing the ghost's pid* and holds
/// `bystander_rss` bytes for `bystander_lifetime`. The registry's sweep
/// must not let the bystander inherit the ghost's M3 participation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// When the ghost registers and dies.
    pub at: SimDuration,
    /// Memory the pid-reusing bystander holds.
    pub bystander_rss: u64,
    /// How long the bystander lives before exiting cleanly.
    pub bystander_lifetime: SimDuration,
}

/// A serializable schedule of everything that goes wrong during a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// App-targeted faults (crash / unresponsive / leak).
    pub events: Vec<FaultEvent>,
    /// Seeded signal loss/delay installed on the kernel's bus.
    pub signal_faults: Option<SignalFaultConfig>,
    /// Meminfo outage windows (degraded-mode polling).
    pub poll_outages: Vec<OutageWindow>,
    /// Stale-registration churn events (pid reuse).
    pub churn: Vec<ChurnEvent>,
}

impl FaultPlan {
    /// The empty plan: nothing goes wrong. This is what every plain
    /// [`crate::machine::Machine::run`] uses.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
            && self.signal_faults.is_none()
            && self.poll_outages.is_empty()
            && self.churn.is_empty()
    }

    /// Adds a crash-kill of schedule index `target` at `at`.
    pub fn with_crash(mut self, at: SimDuration, target: usize) -> Self {
        self.events.push(FaultEvent {
            at,
            target,
            kind: FaultKind::Crash,
        });
        self
    }

    /// Makes schedule index `target` unresponsive from `at` on: its handler
    /// runs but only `reclaim_fraction` of freed bytes reach the OS.
    pub fn with_unresponsive(
        mut self,
        at: SimDuration,
        target: usize,
        reclaim_fraction: f64,
    ) -> Self {
        self.events.push(FaultEvent {
            at,
            target,
            kind: FaultKind::Unresponsive { reclaim_fraction },
        });
        self
    }

    /// Makes schedule index `target` leak `bytes_per_sec` from `at` on.
    pub fn with_leak(mut self, at: SimDuration, target: usize, bytes_per_sec: u64) -> Self {
        self.events.push(FaultEvent {
            at,
            target,
            kind: FaultKind::Leak { bytes_per_sec },
        });
        self
    }

    /// Installs seeded signal loss/delay on the bus.
    pub fn with_signal_faults(mut self, cfg: SignalFaultConfig) -> Self {
        self.signal_faults = Some(cfg);
        self
    }

    /// Adds a meminfo outage window.
    pub fn with_poll_outage(mut self, start: SimDuration, duration: SimDuration) -> Self {
        self.poll_outages.push(OutageWindow { start, duration });
        self
    }

    /// Adds a stale-registration churn event at `at`.
    pub fn with_churn(
        mut self,
        at: SimDuration,
        bystander_rss: u64,
        lifetime: SimDuration,
    ) -> Self {
        self.churn.push(ChurnEvent {
            at,
            bystander_rss,
            bystander_lifetime: lifetime,
        });
        self
    }

    /// Converts the legacy `(t, idx)` crash-kill list.
    pub fn from_kills(kills: Vec<(SimDuration, usize)>) -> Self {
        kills
            .into_iter()
            .fold(FaultPlan::none(), |plan, (t, idx)| plan.with_crash(t, idx))
    }

    /// Number of injectable items in the plan (app events + churn).
    pub fn injected_count(&self) -> u64 {
        (self.events.len() + self.churn.len()) as u64
    }
}

/// Why an app-targeted fault event could not be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnappliedReason {
    /// The victim had not started when the fault fired.
    NotStarted,
    /// The victim had already finished, failed or been killed.
    AlreadyDone,
    /// The target index names no scheduled app.
    NoSuchApp,
    /// The run ended before the fault's scheduled time.
    RunEnded,
}

/// An app-targeted fault that could not be applied, and why. The old
/// `run_with_chaos` silently dropped these; now they are accounted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnappliedFault {
    /// The event that could not be applied.
    pub event: FaultEvent,
    /// Why it could not be applied.
    pub reason: UnappliedReason,
}

/// Recovery bookkeeping for one applied fault event: how many monitor polls
/// passed between the fault's application and the system returning to a
/// comfortable zone (Green/Yellow) *after* an actual Red/AboveTop
/// excursion. A fault that never pushes the system into trouble counts as
/// recovered when the run ends below the high threshold. Only tracked when
/// a monitor runs (the unit of measure is its poll).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRecovery {
    /// Index into [`FaultPlan::events`].
    pub event_index: usize,
    /// Polls from application to recovery; `None` if the system never
    /// returned below the high threshold while the run lasted.
    pub recovered_after_polls: Option<u64>,
}

/// What a run did about its fault plan, and how the monitor degraded.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Injectable items in the plan (app events + churn).
    pub faults_injected: u64,
    /// Items actually applied to a live target.
    pub faults_applied: u64,
    /// App-targeted events that could not be applied, with reasons.
    pub faults_unapplied: Vec<UnappliedFault>,
    /// Pressure signals lost to injected signal faults.
    pub signals_dropped: u64,
    /// Pressure signals deferred by injected signal faults.
    pub signals_delayed: u64,
    /// Monitor polls that ran in degraded mode (meminfo unreadable).
    pub degraded_polls: u64,
    /// Participants escalated by the reclamation watchdog.
    pub watchdog_escalations: u64,
    /// Backed-off re-signals to escalated participants.
    pub watchdog_resignals: u64,
    /// Monitor polls that observed usage above the top of memory.
    pub polls_above_top: u64,
    /// Simulated time spent above top (`polls_above_top × poll_period`).
    pub time_above_top: SimDuration,
    /// Per-applied-fault recovery times, in polls.
    pub recoveries: Vec<FaultRecovery>,
}

/// A whole worker node crashing mid-horizon: every job resident on the
/// node at `at` dies with it, and the node admits nothing afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeCrash {
    /// When the node dies.
    pub at: SimDuration,
    /// Index of the dying node in [`crate::fleet::FleetConfig::nodes`].
    pub node: usize,
}

/// A window during which a node's probe endpoint stops answering: reads
/// inside the window return the summary frozen at `start` (a *stale*
/// probe) while the staleness is tolerable, and fail outright afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeFlap {
    /// The flapping node.
    pub node: usize,
    /// When the endpoint stops answering fresh reads.
    pub start: SimDuration,
    /// How long the endpoint stays unresponsive.
    pub duration: SimDuration,
}

impl ProbeFlap {
    /// True if `now` falls inside the flap window.
    pub fn contains(&self, now: SimTime) -> bool {
        let t = now.saturating_since(SimTime::ZERO);
        t >= self.start && t < self.start + self.duration
    }
}

/// A delayed placement decision: the scheduler only gets to the job's
/// arrival `delay` after it was submitted (a decision-pipeline backlog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementDelay {
    /// The delayed job (scenario schedule index).
    pub job: usize,
    /// How long the decision is delayed.
    pub delay: SimDuration,
}

/// A serializable schedule of everything that goes wrong *around* the
/// fleet scheduler: whole-node crashes, flapping probe endpoints, delayed
/// placement decisions, and mid-horizon scheduler restarts that wipe the
/// advisory candidate index. The cluster-level analogue of [`FaultPlan`],
/// and like it part of the fleet memoization key (see
/// [`crate::fleet::run_fleet_cached_faulted`]) so chaos runs never collide
/// with clean cached results.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetFaultPlan {
    /// Whole-node crashes.
    pub node_crashes: Vec<NodeCrash>,
    /// Probe-endpoint flap windows.
    pub flaps: Vec<ProbeFlap>,
    /// Delayed placement decisions.
    pub placement_delays: Vec<PlacementDelay>,
    /// Instants at which the scheduler restarts and must rebuild its
    /// sharded candidate index from authoritative node state.
    pub scheduler_restarts: Vec<SimDuration>,
}

impl FleetFaultPlan {
    /// The empty plan: the whole fleet survives the horizon.
    pub fn none() -> Self {
        FleetFaultPlan::default()
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.node_crashes.is_empty()
            && self.flaps.is_empty()
            && self.placement_delays.is_empty()
            && self.scheduler_restarts.is_empty()
    }

    /// Adds a whole-node crash of `node` at `at`.
    pub fn with_node_crash(mut self, at: SimDuration, node: usize) -> Self {
        self.node_crashes.push(NodeCrash { at, node });
        self
    }

    /// Adds a probe-endpoint flap on `node` from `start` for `duration`.
    pub fn with_flap(mut self, node: usize, start: SimDuration, duration: SimDuration) -> Self {
        self.flaps.push(ProbeFlap {
            node,
            start,
            duration,
        });
        self
    }

    /// Delays job `job`'s arrival placement decision by `delay`.
    pub fn with_placement_delay(mut self, job: usize, delay: SimDuration) -> Self {
        self.placement_delays.push(PlacementDelay { job, delay });
        self
    }

    /// Adds a scheduler restart at `at`.
    pub fn with_scheduler_restart(mut self, at: SimDuration) -> Self {
        self.scheduler_restarts.push(at);
        self
    }

    /// Number of injectable items in the plan.
    pub fn injected_count(&self) -> u64 {
        (self.node_crashes.len()
            + self.flaps.len()
            + self.placement_delays.len()
            + self.scheduler_restarts.len()) as u64
    }
}

/// What a fleet run did about its [`FleetFaultPlan`]: the per-incident
/// accounting fleet operators reason with. Every [`crate::fleet::FleetResult`]
/// carries one (all-zero for clean runs).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetDegradationReport {
    /// Nodes that crashed during the horizon.
    pub nodes_lost: u64,
    /// Job-loss incidents: jobs resident on a node when it died (a job
    /// rescheduled onto a second dying node counts twice). Always equals
    /// `jobs_rescheduled + jobs_orphaned`.
    pub jobs_lost: u64,
    /// Loss incidents resolved by re-entering the arrival queue.
    pub jobs_rescheduled: u64,
    /// Loss incidents that exhausted the retry budget: the job is given
    /// up on with `NodeLost` recorded as its failure reason.
    pub jobs_orphaned: u64,
    /// Times a flapping node was quarantined.
    pub quarantine_episodes: u64,
    /// Endpoint reads that failed outright (flap beyond the stale window).
    pub probe_failures: u64,
    /// Scheduling decisions taken on a tolerated stale probe.
    pub stale_probe_decisions: u64,
    /// Arrival decisions delayed by the fault plan.
    pub placements_delayed: u64,
    /// Total injected decision delay, ms.
    pub placement_delay_ms: u64,
    /// Mid-horizon scheduler restarts.
    pub scheduler_restarts: u64,
    /// Authoritative node reads performed rebuilding the candidate index
    /// after restarts — the index-rebuild cost.
    pub index_rebuild_nodes: u64,
    /// Plan items that named a nonexistent or already-dead target.
    pub faults_unapplied: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accumulate_and_serialize() {
        let plan = FaultPlan::none()
            .with_crash(SimDuration::from_secs(10), 0)
            .with_unresponsive(SimDuration::from_secs(20), 1, 0.5)
            .with_leak(SimDuration::from_secs(30), 2, 1024)
            .with_signal_faults(SignalFaultConfig::lossy(7, 0.2))
            .with_poll_outage(SimDuration::from_secs(5), SimDuration::from_secs(3))
            .with_churn(SimDuration::from_secs(40), 4096, SimDuration::from_secs(60));
        assert!(!plan.is_empty());
        assert_eq!(plan.injected_count(), 4);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back, "plans round-trip byte-exactly");
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert_eq!(FaultPlan::none().injected_count(), 0);
        assert_eq!(FaultPlan::none(), FaultPlan::default());
    }

    #[test]
    fn from_kills_matches_legacy_semantics() {
        let plan = FaultPlan::from_kills(vec![
            (SimDuration::from_secs(1), 0),
            (SimDuration::from_secs(2), 1),
        ]);
        assert_eq!(plan.events.len(), 2);
        assert!(plan
            .events
            .iter()
            .all(|e| matches!(e.kind, FaultKind::Crash)));
    }

    #[test]
    fn fleet_plan_builders_accumulate_and_serialize() {
        let plan = FleetFaultPlan::none()
            .with_node_crash(SimDuration::from_secs(300), 2)
            .with_flap(1, SimDuration::from_secs(60), SimDuration::from_secs(120))
            .with_placement_delay(0, SimDuration::from_secs(30))
            .with_scheduler_restart(SimDuration::from_secs(600));
        assert!(!plan.is_empty());
        assert_eq!(plan.injected_count(), 4);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FleetFaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back, "fleet plans round-trip byte-exactly");
        assert!(FleetFaultPlan::none().is_empty());
        assert_eq!(FleetFaultPlan::none(), FleetFaultPlan::default());
    }

    #[test]
    fn probe_flap_window_is_half_open() {
        let flap = ProbeFlap {
            node: 3,
            start: SimDuration::from_secs(10),
            duration: SimDuration::from_secs(5),
        };
        assert!(!flap.contains(SimTime::from_secs(9)));
        assert!(flap.contains(SimTime::from_secs(10)));
        assert!(flap.contains(SimTime::from_secs(14)));
        assert!(!flap.contains(SimTime::from_secs(15)));
    }

    #[test]
    fn fleet_degradation_report_defaults_to_zero() {
        let report = FleetDegradationReport::default();
        assert_eq!(report.nodes_lost, 0);
        assert_eq!(report.jobs_lost, 0);
        let json = serde_json::to_string(&report).unwrap();
        let back: FleetDegradationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn outage_window_contains_is_half_open() {
        let w = OutageWindow {
            start: SimDuration::from_secs(10),
            duration: SimDuration::from_secs(5),
        };
        assert!(!w.contains(SimTime::from_secs(9)));
        assert!(w.contains(SimTime::from_secs(10)));
        assert!(w.contains(SimTime::from_secs(14)));
        assert!(!w.contains(SimTime::from_secs(15)));
    }
}
