//! `m3-fleet`: a pressure-aware cluster scheduler on top of the node
//! simulator.
//!
//! The paper's cluster (§7.1) is N independent workers all running the same
//! schedule; every placement decision is implicit. This module lifts M3's
//! node-local pressure signals to the cluster layer: incoming elastic jobs
//! are *placed* onto the least-pressured feasible node, *deferred* when no
//! node can take them without being pushed above its top of memory, and
//! *migrated* off a node whose monitor stays in the red zone beyond a grace
//! window (the direction MURS/SARA argue service stacks must go).
//!
//! # Scaling model (DESIGN.md §13)
//!
//! The scheduler targets O(10k) nodes and O(100k) jobs on one machine, so
//! every per-decision cost must be bounded and every node simulation must
//! be shared when it can be:
//!
//! - **Incremental probes.** A node's probe simulation runs once over the
//!   full horizon with a pressure timeline sampled at every monitor poll,
//!   and is cached on the node ([`NodeState::probe`]) until the node's
//!   assignment set or fault plan changes (the *dirty* rule: any mutation
//!   clears the cache). Reading the node's state at time `t` is then a
//!   timeline lookup, not a re-simulation. Idle nodes never simulate at
//!   all: a per-size summary precomputed at fleet construction answers
//!   their probes.
//! - **Content-addressed node runs.** In scheduler mode the per-node
//!   machine config carries no node salt and the sub-scenario name carries
//!   no node index, so two nodes with identical (size, schedule, faults)
//!   share one entry in the process-wide run cache. Wave-shaped arrivals
//!   over homogeneous nodes collapse thousands of node simulations into a
//!   handful of distinct ones.
//! - **Sharded placement.** Nodes are partitioned into shards of
//!   [`FleetConfig::shard_size`]; each shard keeps a `BTreeSet` candidate
//!   index ordered by an *advisory* effective-load key. Placement k-way
//!   merges the shard indexes into the globally least-estimated
//!   [`FleetConfig::probe_budget`] nodes and probes those (stopping early
//!   once [`FleetConfig::place_candidates`] feasible candidates are in
//!   hand) instead of probing all N. The index only orders the scan — admission is
//!   always decided by authoritative probes — and a job's *final* admission
//!   attempt scans every node, so a job is never given up on while a
//!   feasible node exists anywhere in the fleet.
//! - **Batched pressure refresh.** Each rebalance check refreshes
//!   [`FleetConfig::refresh_shards`] shards round-robin rather than the
//!   whole fleet, and pre-warms the dirty nodes' simulations on the
//!   worker pool ([`crate::parallel::parallel_map`]) before reading them
//!   serially in node order.
//!
//! # Determinism
//!
//! The scheduler is a pure function of `(scenario, setting, machine_cfg,
//! fleet_cfg)`. There is no randomness and no wall clock anywhere:
//!
//! - Scheduler events live in a `BTreeMap` keyed `(time_ms, class, index)`,
//!   so they pop in a total order.
//! - A node's pressure at time `t` is a pure function of its assignment
//!   set and fault plan: the cached probe simulation is deterministic, and
//!   the timeline read picks the last sample at or before `t`.
//! - Parallel pre-warm only *populates* caches with values that are pure
//!   functions of their keys; every decision reads them in index order, so
//!   the result is bit-identical for any worker count (`M3_JOBS`).
//! - Ties in the placement order are broken by node index; admission is an
//!   exact integer comparison (no float ordering).
//!
//! Migration is modelled as a crash fault on the source node (the elastic
//! job restarts from scratch on the target, as §7.1's restartable jobs do).
//! The crash instant always equals the scheduler's current time, so probes
//! cached for earlier times stay valid.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};
use std::sync::Arc;

use m3_core::config::MonitorConfig;
use m3_core::monitor::{Monitor, PressureSummary, Zone};
use m3_oracle::{FleetOracle, Violation};
use m3_sim::clock::{SimDuration, SimTime};
use m3_sim::trace::{TraceData, TraceLog, TraceZone};
use m3_sim::units::GIB;
use serde::{Deserialize, Serialize};

use crate::cluster::{run_cluster_nodes, ClusterResult};
use crate::faults::FaultPlan;
use crate::hibench;
use crate::machine::MachineConfig;
use crate::parallel::{run_scenario_cached_faulted, CacheStats, MemoCache};
use crate::runner::ScenarioOutcome;
use crate::scenario::{AppKind, Scenario};
use crate::settings::Setting;

/// One worker node of the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Physical memory of the node.
    pub phys_total: u64,
}

impl NodeSpec {
    /// The paper's 64-GB worker.
    pub fn paper() -> Self {
        NodeSpec {
            phys_total: 64 * GIB,
        }
    }
}

/// Which feasible node the placer prefers. The two non-default variants
/// are deliberately broken — they exist so the invariant tests can catch a
/// misbehaving policy end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Place on the feasible node with the lowest `used / top` ratio
    /// (ties broken by lower node index).
    LeastPressured,
    /// Place on the *highest* `used / top` node, feasible or not — a
    /// broken policy that skips admission control (used by the
    /// rebalancing tests to force co-location).
    MostPressured,
    /// Place every job on node 0 without probing anything — a broken
    /// policy the oracle catches as a placement without a pressure
    /// snapshot.
    Blind,
}

/// Fleet scheduler configuration. Part of the fleet-level memoization key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// The worker nodes (heterogeneous sizes allowed).
    pub nodes: Vec<NodeSpec>,
    /// `false` runs every node through the legacy [`run_cluster_nodes`]
    /// path (each node runs the whole schedule; no placement decisions) —
    /// the backward-compat mode the figure benches rely on.
    pub scheduler: bool,
    /// How long a node must stay red before the rebalancer may migrate a
    /// job off it.
    pub grace: SimDuration,
    /// How long a deferred job waits before retrying admission.
    pub defer_interval: SimDuration,
    /// Admission retries before the scheduler gives up on a job.
    pub max_defers: u32,
    /// Migrations allowed per job (a migration restarts the job).
    pub max_migrations: u32,
    /// Cadence of the red-zone rebalance checks.
    pub rebalance_period: SimDuration,
    /// Number of rebalance checks scheduled (bounds the event horizon).
    pub rebalance_checks: u32,
    /// Placement preference among feasible nodes.
    pub policy: PlacementPolicy,
    /// Nodes per placement shard. Each shard keeps a pressure-ordered
    /// candidate index; fleets of at most one shard behave exactly like
    /// the exhaustive scheduler.
    pub shard_size: usize,
    /// Feasible candidates a bounded placement scan collects before
    /// picking (the scan's early-stop).
    pub place_candidates: usize,
    /// Upper bound on authoritative probes per bounded placement scan:
    /// the scan order is the globally least-estimated `probe_budget`
    /// nodes by the shard indexes.
    pub probe_budget: usize,
    /// Shards whose nodes get a fresh pressure probe per rebalance check
    /// (round-robin across checks).
    pub refresh_shards: usize,
}

impl FleetConfig {
    /// A scheduling fleet of `n` homogeneous nodes of `phys_total` bytes.
    pub fn homogeneous(n: usize, phys_total: u64) -> Self {
        FleetConfig {
            nodes: vec![NodeSpec { phys_total }; n],
            scheduler: true,
            grace: SimDuration::from_secs(60),
            defer_interval: SimDuration::from_secs(120),
            max_defers: 30,
            max_migrations: 1,
            rebalance_period: SimDuration::from_secs(60),
            rebalance_checks: 40,
            policy: PlacementPolicy::LeastPressured,
            shard_size: 64,
            place_candidates: 4,
            probe_budget: 16,
            refresh_shards: 1,
        }
    }

    /// The paper's eight 64-GB workers, scheduler on.
    pub fn paper() -> Self {
        FleetConfig::homogeneous(crate::cluster::PAPER_NODES, 64 * GIB)
    }

    /// `n` 64-GB nodes with the scheduler disabled: every node runs the full
    /// schedule, exactly like [`crate::cluster::run_cluster`].
    pub fn passthrough(n: usize) -> Self {
        FleetConfig {
            scheduler: false,
            ..FleetConfig::homogeneous(n, 64 * GIB)
        }
    }
}

/// What happened to one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// The job's index in the scenario.
    pub job: usize,
    /// The node the job finally ran on (`None` if the scheduler gave up,
    /// or in passthrough mode where every node runs every job).
    pub node: Option<usize>,
    /// Admission deferrals before placement (or before giving up).
    pub deferrals: u32,
    /// Times the rebalancer migrated the job.
    pub migrations: u32,
    /// True if the job exhausted its admission retries.
    pub gave_up: bool,
    /// Completion time minus the job's *arrival* (not its last restart),
    /// seconds; `None` if the job failed, was killed, or was given up on.
    pub runtime_s: Option<f64>,
}

/// Outcome of one fleet run. Serializable end to end: the golden snapshot
/// and determinism tests compare runs by their serialized bytes, and the
/// fleet memoization cache hands out shared results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetResult {
    /// Cluster-level aggregation (slowest-node semantics in passthrough
    /// mode; final-node runtimes under the scheduler, where the quadratic
    /// `per_node_s`/`spread_s` tables stay empty — at 10k nodes × 100k
    /// jobs they would dwarf everything else).
    pub cluster: ClusterResult,
    /// Per-job scheduler outcomes (empty in passthrough mode).
    pub jobs: Vec<JobOutcome>,
    /// The scheduler's placement log (`fleet.*` events; empty in
    /// passthrough mode).
    pub trace: TraceLog,
    /// Cluster-invariant violations from [`FleetOracle`] plus any node-level
    /// conformance violations from the final node runs. Empty = conformant.
    pub violations: Vec<Violation>,
}

/// Peak-memory estimate used for admission control: what placing a job of
/// this kind may eventually commit on the node.
pub fn demand_estimate(kind: AppKind) -> u64 {
    match kind {
        AppKind::KMeans | AppKind::PageRank | AppKind::NWeight => {
            let job = hibench::job_by_code(kind.code());
            job.working_set + job.exec_demand
        }
        AppKind::GoCache => hibench::gocache_workload().full_bytes(),
        AppKind::Memcached => hibench::memtier_workload().full_bytes(),
    }
}

/// The per-node machine configuration of the *passthrough* path: the base
/// config with this node's salt and size. A node whose size differs from
/// the base keeps no stale monitor — [`MachineConfig::with_setting`]
/// re-scales one to the node.
fn node_machine_cfg(base: MachineConfig, node: usize, phys_total: u64) -> MachineConfig {
    let mut cfg = base;
    cfg.node_salt = node as u64 + 1;
    if cfg.phys_total != phys_total {
        cfg.phys_total = phys_total;
        cfg.monitor = None;
    }
    cfg
}

/// The per-node machine configuration of the *scheduler* path. No node
/// salt: two nodes of the same size running the same schedule under the
/// same faults are byte-identical simulations, so dropping the salt lets
/// them share one content-addressed run-cache entry — the reason a 10k-node
/// fleet only simulates its few hundred distinct nodes. The scheduler's own
/// placement provides the per-node heterogeneity a salt used to fake.
fn sched_node_cfg(base: MachineConfig, phys_total: u64) -> MachineConfig {
    let mut cfg = base;
    cfg.node_salt = 0;
    if cfg.phys_total != phys_total {
        cfg.phys_total = phys_total;
        cfg.monitor = None;
    }
    cfg
}

/// Scheduler event classes, ordered within one instant: placement attempts
/// (arrivals and retries) run before rebalance checks.
const CLASS_PLACE: u8 = 0;
const CLASS_REBALANCE: u8 = 1;

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Try to admit job `job` (arrival or deferred retry), attempt number
    /// `attempt` (0 = the arrival itself).
    Place { job: usize, attempt: u32 },
    /// Rebalance check number `check` (1-based): refresh the due shards
    /// and migrate off nodes red beyond the grace window.
    Rebalance { check: u32 },
}

/// One node's scheduling state.
struct NodeState {
    phys_total: u64,
    /// Jobs assigned to this node, in assignment order: `(job, kind,
    /// start offset)`. Only ever appended to, so fault targets (indices
    /// into this list) stay stable.
    apps: Vec<(usize, AppKind, SimDuration)>,
    /// Accumulated migration crashes on this node.
    faults: FaultPlan,
    /// When the node's probes turned contiguously red, ms.
    red_since: Option<u64>,
    /// Memoized full-horizon probe simulation; `None` = dirty (the
    /// assignment set or fault plan changed since it was computed). Every
    /// mutation of `apps` or `faults` must clear this.
    probe: Option<Arc<ScenarioOutcome>>,
    /// The node's top of memory (from its scaled monitor config).
    top: u64,
    /// Advisory effective-load estimate backing the shard index; healed to
    /// the authoritative value on every probe.
    index_effective: u64,
    /// The node's current key in its shard's candidate index.
    index_key: u64,
}

/// One node's state as seen by a scheduling decision at some instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NodeView {
    node: usize,
    summary: PressureSummary,
    /// Summed demand estimates of this node's assigned, unfinished jobs.
    reserved: u64,
}

impl NodeView {
    /// The load the placer ranks and admits against: committed memory or
    /// outstanding reservations, whichever is larger (reservations cover
    /// placed jobs that have not grown into their demand yet; `used` covers
    /// jobs that outgrew their estimate).
    fn effective(&self) -> u64 {
        self.summary.used.max(self.reserved)
    }
}

/// The shard-index key for a node at estimated load `effective`: the
/// `effective / top` ratio in 2^20 fixed point. Advisory ordering only —
/// admission never reads it.
fn index_key(effective: u64, top: u64) -> u64 {
    ((effective as u128 * (1u128 << 20)) / top.max(1) as u128).min(u64::MAX as u128) as u64
}

struct Fleet<'a> {
    scenario: &'a Scenario,
    base_cfg: MachineConfig,
    fleet: &'a FleetConfig,
    nodes: Vec<NodeState>,
    trace: TraceLog,
    /// Final `(node, slot in that node's app list)` per job.
    assignment: Vec<Option<(usize, usize)>>,
    deferrals: Vec<u32>,
    migrations: Vec<u32>,
    gave_up: Vec<bool>,
    /// Per-shard candidate index: `(index_key, node)`, ascending = least
    /// estimated pressure first, ties to the lower node index.
    shards: Vec<BTreeSet<(u64, u32)>>,
    /// Precomputed idle summary per distinct node size: what a probe of a
    /// node with nothing assigned answers, without ever simulating.
    idle: HashMap<u64, PressureSummary>,
    /// The placement time the candidate index was last bulk-refreshed at
    /// (the index decays as simulated time passes — see [`Fleet::refresh`]).
    index_fresh_ms: Option<u64>,
    /// Worker threads for pre-warming and final runs.
    workers: usize,
}

impl<'a> Fleet<'a> {
    fn new(
        scenario: &'a Scenario,
        base_cfg: MachineConfig,
        fleet: &'a FleetConfig,
        workers: usize,
    ) -> Fleet<'a> {
        let njobs = scenario.len();
        let mut idle: HashMap<u64, PressureSummary> = HashMap::new();
        let mut nodes = Vec::with_capacity(fleet.nodes.len());
        for spec in &fleet.nodes {
            let summary = *idle.entry(spec.phys_total).or_insert_with(|| {
                let cfg = sched_node_cfg(base_cfg, spec.phys_total).with_setting(&Setting::m3(0));
                let monitor = cfg
                    .monitor
                    .unwrap_or_else(|| MonitorConfig::scaled(cfg.phys_total));
                Monitor::new(monitor).pressure_summary(0)
            });
            nodes.push(NodeState {
                phys_total: spec.phys_total,
                apps: Vec::new(),
                faults: FaultPlan::none(),
                red_since: None,
                probe: None,
                top: summary.top,
                index_effective: 0,
                index_key: 0,
            });
        }
        let shard_size = fleet.shard_size.max(1);
        let nshards = nodes.len().div_ceil(shard_size).max(1);
        let mut shards = vec![BTreeSet::new(); nshards];
        for n in 0..nodes.len() {
            shards[n / shard_size].insert((0u64, n as u32));
        }
        Fleet {
            scenario,
            base_cfg,
            fleet,
            nodes,
            trace: TraceLog::new(),
            assignment: vec![None; njobs],
            deferrals: vec![0; njobs],
            migrations: vec![0; njobs],
            gave_up: vec![false; njobs],
            shards,
            idle,
            index_fresh_ms: None,
            workers: workers.max(1),
        }
    }

    /// The sub-scenario a node's assigned jobs form. Deliberately *not*
    /// salted with the node index: the name is part of the run-cache key,
    /// and nodes with identical schedules must share one entry.
    fn node_scenario(&self, node: usize) -> Scenario {
        let st = &self.nodes[node];
        Scenario {
            name: format!("{}::sched", self.scenario.name),
            apps: st
                .apps
                .iter()
                .map(|&(_, kind, start)| (kind, start))
                .collect(),
        }
    }

    fn node_cfg(&self, node: usize) -> MachineConfig {
        sched_node_cfg(self.base_cfg, self.nodes[node].phys_total)
    }

    /// Simulates node `node` over the full horizon (content-addressed
    /// cache) and returns the outcome. `capture` keeps the node trace and
    /// profile (the final full runs); probes instead run stripped with a
    /// pressure timeline sampled at every monitor poll, so one simulation
    /// answers probes at *every* time.
    fn simulate(&self, node: usize, capture: bool) -> Arc<ScenarioOutcome> {
        let scenario = self.node_scenario(node);
        let setting = Setting::m3(scenario.len());
        let mut cfg = self.node_cfg(node);
        if !capture {
            cfg.sample_period = None;
            cfg.capture_trace = false;
            cfg.pressure_timeline_polls = Some(1);
        }
        run_scenario_cached_faulted(&scenario, &setting, cfg, &self.nodes[node].faults)
    }

    /// The node's probe simulation, computed only if the node is dirty.
    fn probe_outcome(&mut self, node: usize) -> Arc<ScenarioOutcome> {
        if let Some(out) = &self.nodes[node].probe {
            return Arc::clone(out);
        }
        let out = self.simulate(node, false);
        self.nodes[node].probe = Some(Arc::clone(&out));
        out
    }

    /// Reads node `node`'s state at time `t` — the incremental-probe read.
    /// Idle nodes answer from the precomputed per-size summary; loaded
    /// nodes answer from the cached probe simulation's pressure timeline
    /// (last sample at or before `t`).
    ///
    /// Besides the monitor's summary, the view carries the node's *reserved*
    /// demand: the summed demand estimates of jobs assigned to it that are
    /// alive at `t`. A freshly placed job has committed nothing yet, so
    /// admission must rank against `max(used, reserved)` or simultaneous
    /// arrivals would all pile onto the same empty node.
    fn view(&mut self, node: usize, t: SimTime) -> NodeView {
        let (summary, reserved) = if self.nodes[node].apps.is_empty() {
            (self.idle[&self.nodes[node].phys_total], 0)
        } else {
            let t_ms = t.as_millis();
            let out = self.probe_outcome(node);
            let timeline = &out.run.pressure_timeline;
            let summary = match timeline.partition_point(|&(at, _)| at <= t_ms) {
                0 => self.idle[&self.nodes[node].phys_total],
                i => timeline[i - 1].1,
            };
            let mut reserved = 0u64;
            for (slot, &(job, kind, _)) in self.nodes[node].apps.iter().enumerate() {
                let here = self.assignment[job] == Some((node, slot));
                let alive = out.run.apps.get(slot).is_none_or(|a| {
                    a.started.as_millis() <= t_ms && a.ended.is_none_or(|e| e.as_millis() > t_ms)
                });
                if here && alive {
                    reserved = reserved.saturating_add(demand_estimate(kind));
                }
            }
            (summary, reserved)
        };
        NodeView {
            node,
            summary,
            reserved,
        }
    }

    /// Reads node `node`'s pressure at time `t`, records the
    /// `fleet.pressure` event, heals the shard index with the
    /// authoritative load, and advances the node's red-streak clock.
    fn probe(&mut self, node: usize, t: SimTime) -> NodeView {
        let view = self.view(node, t);
        self.update_index(node, view.effective());
        let summary = view.summary;
        let zone: TraceZone = summary.zone.into();
        self.trace.record(
            t,
            node as u64,
            TraceData::FleetPressure {
                node: node as u64,
                zone,
                used: summary.used,
                reserved: view.reserved,
                high: summary.high,
                top: summary.top,
                escalations: summary.watchdog_escalations,
            },
        );
        match summary.zone {
            Zone::Red | Zone::AboveTop => {
                self.nodes[node].red_since.get_or_insert(t.as_millis());
            }
            _ => self.nodes[node].red_since = None,
        }
        view
    }

    fn shard_size(&self) -> usize {
        self.fleet.shard_size.max(1)
    }

    /// Moves `node` to its new position in the shard index.
    fn update_index(&mut self, node: usize, effective: u64) {
        let key = index_key(effective, self.nodes[node].top);
        let old = self.nodes[node].index_key;
        if key != old {
            let shard = node / self.shard_size();
            self.shards[shard].remove(&(old, node as u32));
            self.shards[shard].insert((key, node as u32));
            self.nodes[node].index_key = key;
        }
        self.nodes[node].index_effective = effective;
    }

    /// The bounded placement scan order: the globally least-estimated
    /// [`FleetConfig::probe_budget`] nodes, k-way-merged from the sorted
    /// per-shard indexes (`O(shards + budget * log(shards))` per scan —
    /// never a walk over all N nodes).
    fn candidate_order(&self) -> Vec<usize> {
        let budget = self
            .fleet
            .probe_budget
            .max(self.fleet.place_candidates.max(1));
        let mut iters: Vec<_> = self.shards.iter().map(|s| s.iter().copied()).collect();
        let mut heap: BinaryHeap<Reverse<((u64, u32), usize)>> =
            BinaryHeap::with_capacity(iters.len());
        for (i, it) in iters.iter_mut().enumerate() {
            if let Some(e) = it.next() {
                heap.push(Reverse((e, i)));
            }
        }
        let mut out = Vec::with_capacity(budget);
        while out.len() < budget {
            let Some(Reverse((entry, shard))) = heap.pop() else {
                break;
            };
            out.push(entry.1 as usize);
            if let Some(e) = iters[shard].next() {
                heap.push(Reverse((e, shard)));
            }
        }
        out
    }

    /// Heals the whole candidate index with silent cached view reads at
    /// time `t` (no trace events; clean nodes answer from their cached
    /// probe timeline, idle nodes from the per-size summary). Returns the
    /// views that would admit `demand` more bytes — so the defer fallback
    /// gets its feasible set from the same sweep. Records the refresh
    /// instant so at most one sweep runs per placement time.
    fn refresh(&mut self, t: SimTime, demand: u64) -> Vec<NodeView> {
        self.index_fresh_ms = Some(t.as_millis());
        let mut feasible: Vec<NodeView> = Vec::new();
        for node in 0..self.nodes.len() {
            let v = self.view(node, t);
            self.update_index(node, v.effective());
            if Self::admits(&v, demand) {
                feasible.push(v);
            }
        }
        feasible
    }

    /// True if `demand` more bytes fit on this node without crossing its
    /// top of memory (and the node is not already red).
    fn admits(view: &NodeView, demand: u64) -> bool {
        matches!(view.summary.zone, Zone::Green | Zone::Yellow)
            && view.effective().saturating_add(demand) <= view.summary.top
    }

    /// Picks the preferred node among `candidates` by the configured
    /// policy: exact integer comparison of `effective/top` ratios
    /// (`eff_a * top_b` vs `eff_b * top_a`), ties to the lower node index.
    fn pick(&self, candidates: &[NodeView]) -> Option<usize> {
        let prefer_least = matches!(self.fleet.policy, PlacementPolicy::LeastPressured);
        let mut best: Option<&NodeView> = None;
        for v in candidates {
            let better = match best {
                None => true,
                Some(b) => {
                    let lhs = v.effective() as u128 * b.summary.top as u128;
                    let rhs = b.effective() as u128 * v.summary.top as u128;
                    if prefer_least {
                        lhs < rhs
                    } else {
                        lhs > rhs
                    }
                }
            };
            if better {
                best = Some(v);
            }
        }
        best.map(|v| v.node)
    }

    /// Assigns job `job` to `node` starting at `t` and records the
    /// bookkeeping shared by placement and migration. The node's probe
    /// cache is invalidated (its schedule changed) and its advisory index
    /// estimate grows by the job's demand.
    fn assign(&mut self, job: usize, kind: AppKind, node: usize, t: SimTime) {
        let slot = self.nodes[node].apps.len();
        self.nodes[node]
            .apps
            .push((job, kind, t.saturating_since(SimTime::ZERO)));
        self.assignment[job] = Some((node, slot));
        self.nodes[node].probe = None;
        let est = self.nodes[node]
            .index_effective
            .saturating_add(demand_estimate(kind));
        self.update_index(node, est);
    }

    fn on_place(&mut self, job: usize, attempt: u32, t: SimTime, queue: &mut EventQueue) {
        let kind = self.scenario.apps[job].0;
        let demand = demand_estimate(kind);
        if matches!(self.fleet.policy, PlacementPolicy::Blind) {
            // The blind policy never probes: the missing pressure snapshot
            // is itself the conformance violation the oracle reports.
            self.trace.record(
                t,
                job as u64,
                TraceData::FleetPlace {
                    job: job as u64,
                    node: 0,
                    used: 0,
                    demand,
                    top: self.nodes[0].top,
                },
            );
            self.deferrals[job] = attempt;
            self.assign(job, kind, 0, t);
            return;
        }
        // A bounded scan is only sound for the default policy, and a job's
        // final attempt must see every node (the no-starvation guarantee:
        // give-up implies nothing anywhere admits the job).
        let exhaustive = !matches!(self.fleet.policy, PlacementPolicy::LeastPressured)
            || attempt >= self.fleet.max_defers;
        // Index keys go stale as simulated time passes (a node that drained
        // since its last probe keeps its old high key until something reads
        // it again), so the first placement at each new instant bulk-heals
        // the index with silent cached view reads — no trace events, no new
        // simulations for clean nodes. Freshly healed, ties in the key
        // order break by node index, which keeps placement patterns — and
        // with them the set of distinct node schedules the content-
        // addressed run cache must actually simulate — regular across
        // arrival bursts of any size.
        if !exhaustive && self.index_fresh_ms != Some(t.as_millis()) {
            self.refresh(t, 0);
        }
        let order: Vec<usize> = if exhaustive {
            (0..self.nodes.len()).collect()
        } else {
            self.candidate_order()
        };
        let want = self.fleet.place_candidates.max(1);
        let budget = self.fleet.probe_budget.max(want);
        let mut probed: Vec<NodeView> = Vec::new();
        let mut candidates: Vec<NodeView> = Vec::new();
        for node in order {
            let v = self.probe(node, t);
            probed.push(v);
            let feasible = match self.fleet.policy {
                // The broken test policy skips admission control entirely.
                PlacementPolicy::MostPressured => true,
                _ => Self::admits(&v, demand),
            };
            if feasible {
                candidates.push(v);
            }
            if !exhaustive && (candidates.len() >= want || probed.len() >= budget) {
                break;
            }
        }
        // The index is advisory and decays: before deferring, heal it with
        // a full silent sweep and retry the pick. Only a genuinely full
        // fleet defers, and the next scan's index is fresh.
        let mut choice = self.pick(&candidates);
        if choice.is_none() && !exhaustive {
            let feasible = self.refresh(t, demand);
            if let Some(node) = self.pick(&feasible) {
                // Re-read through `probe` so the placement is backed by a
                // traced pressure snapshot like every other admission.
                let v = self.probe(node, t);
                probed.push(v);
                choice = Some(node);
            }
        }
        match choice {
            Some(node) => {
                let summary = probed
                    .iter()
                    .find(|v| v.node == node)
                    .expect("picked node was probed")
                    .summary;
                self.trace.record(
                    t,
                    job as u64,
                    TraceData::FleetPlace {
                        job: job as u64,
                        node: node as u64,
                        used: summary.used,
                        demand,
                        top: summary.top,
                    },
                );
                self.deferrals[job] = attempt;
                self.assign(job, kind, node, t);
            }
            None if attempt >= self.fleet.max_defers => {
                self.deferrals[job] = attempt;
                self.gave_up[job] = true;
                self.trace.record(
                    t,
                    job as u64,
                    TraceData::FleetGiveUp {
                        job: job as u64,
                        attempts: attempt as u64 + 1,
                        demand,
                    },
                );
            }
            None => {
                let retry =
                    SimTime::from_millis(t.as_millis() + self.fleet.defer_interval.as_millis());
                self.trace.record(
                    t,
                    job as u64,
                    TraceData::FleetDefer {
                        job: job as u64,
                        attempt: attempt as u64 + 1,
                        retry_at_ms: retry.as_millis(),
                    },
                );
                queue.insert(
                    (retry.as_millis(), CLASS_PLACE, job as u64),
                    Event::Place {
                        job,
                        attempt: attempt + 1,
                    },
                );
            }
        }
    }

    fn on_rebalance(&mut self, check: u32, t: SimTime) {
        let nshards = self.shards.len();
        if nshards == 0 {
            return;
        }
        // Round-robin refresh: check k covers `refresh_shards` shards
        // starting where check k-1 left off.
        let refresh = self.fleet.refresh_shards.clamp(1, nshards);
        let start = (check as usize - 1).wrapping_mul(refresh) % nshards;
        let shard_size = self.shard_size();
        let mut due_nodes: Vec<usize> = Vec::new();
        for i in 0..refresh {
            let shard = (start + i) % nshards;
            let lo = shard * shard_size;
            due_nodes.extend(lo..(lo + shard_size).min(self.nodes.len()));
        }
        due_nodes.sort_unstable();
        due_nodes.dedup();
        // Pre-warm the dirty nodes' probe simulations on the worker pool.
        // Sound under any worker count: each outcome is a pure function of
        // that node's own state, and everything below reads the warmed
        // caches serially in node order.
        let dirty: Vec<usize> = due_nodes
            .iter()
            .copied()
            .filter(|&n| !self.nodes[n].apps.is_empty() && self.nodes[n].probe.is_none())
            .collect();
        if self.workers > 1 && dirty.len() > 1 {
            let this: &Fleet = self;
            let outs = crate::parallel::parallel_map(dirty.clone(), self.workers, |n| {
                this.simulate(n, false)
            });
            for (&n, out) in dirty.iter().zip(outs) {
                self.nodes[n].probe = Some(out);
            }
        }
        let mut views: HashMap<usize, NodeView> = HashMap::new();
        for &node in &due_nodes {
            let v = self.probe(node, t);
            views.insert(node, v);
        }
        let grace = self.fleet.grace.as_millis();
        let t_ms = t.as_millis();
        for &node in &due_nodes {
            let Some(since) = self.nodes[node].red_since else {
                continue;
            };
            if t_ms.saturating_sub(since) < grace || self.nodes[node].apps.is_empty() {
                continue;
            }
            let red_for = t_ms.saturating_sub(since);
            // Victim: the lowest-priority (latest-arriving) job alive on
            // this node at `t` that has migration budget left.
            let out = self.probe_outcome(node);
            let victim = self.nodes[node]
                .apps
                .iter()
                .enumerate()
                .filter(|&(slot, &(job, _, _))| {
                    self.assignment[job] == Some((node, slot))
                        && self.migrations[job] < self.fleet.max_migrations
                        && out.run.apps.get(slot).is_some_and(|a| {
                            a.started.as_millis() <= t_ms
                                && a.ended.is_none_or(|e| e.as_millis() > t_ms)
                        })
                })
                .max_by_key(|&(_, &(job, _, _))| job)
                .map(|(slot, &(job, kind, _))| (slot, job, kind));
            let Some((slot, job, kind)) = victim else {
                continue;
            };
            drop(out);
            // Target: least-pressured feasible node other than the source,
            // found by the same bounded scan placement uses (views probed
            // this check are reused, not re-recorded).
            let demand = demand_estimate(kind);
            let want = self.fleet.place_candidates.max(1);
            let budget = self.fleet.probe_budget.max(want);
            let mut candidates: Vec<NodeView> = Vec::new();
            let mut scanned = 0usize;
            for cand in self.candidate_order() {
                if cand == node {
                    continue;
                }
                let v = match views.get(&cand) {
                    Some(v) => *v,
                    None => {
                        let v = self.probe(cand, t);
                        views.insert(cand, v);
                        v
                    }
                };
                scanned += 1;
                if Self::admits(&v, demand) {
                    candidates.push(v);
                }
                if candidates.len() >= want || scanned >= budget {
                    break;
                }
            }
            let Some(target) = self.pick(&candidates) else {
                continue; // nowhere better to go: migrating would not help
            };
            self.nodes[node].faults = std::mem::take(&mut self.nodes[node].faults)
                .with_crash(t.saturating_since(SimTime::ZERO), slot);
            self.nodes[node].probe = None;
            let est = self.nodes[node].index_effective.saturating_sub(demand);
            self.update_index(node, est);
            self.migrations[job] += 1;
            self.trace.record(
                t,
                job as u64,
                TraceData::FleetMigrate {
                    job: job as u64,
                    from: node as u64,
                    to: target as u64,
                    red_for_ms: red_for,
                },
            );
            self.assign(job, kind, target, t);
        }
    }

    /// Builds the event queue (arrivals + rebalance checks) and drains it.
    fn run_events(&mut self) {
        let mut queue: EventQueue = BTreeMap::new();
        for (job, &(_, start)) in self.scenario.apps.iter().enumerate() {
            queue.insert(
                (start.as_millis(), CLASS_PLACE, job as u64),
                Event::Place { job, attempt: 0 },
            );
        }
        for k in 1..=self.fleet.rebalance_checks {
            queue.insert(
                (
                    self.fleet.rebalance_period.as_millis() * k as u64,
                    CLASS_REBALANCE,
                    k as u64,
                ),
                Event::Rebalance { check: k },
            );
        }
        while let Some((&key, _)) = queue.iter().next() {
            let event = queue.remove(&key).expect("key just observed");
            let t = SimTime::from_millis(key.0);
            match event {
                Event::Place { job, attempt } => self.on_place(job, attempt, t, &mut queue),
                Event::Rebalance { check } => self.on_rebalance(check, t),
            }
        }
    }
}

type EventQueue = BTreeMap<(u64, u8, u64), Event>;

/// Runs `scenario` on the fleet described by `fleet`.
///
/// With `fleet.scheduler == false` this is exactly
/// [`crate::cluster::run_cluster`] over the fleet's node sizes: every node
/// runs the full schedule and per-app completion is the slowest node.
///
/// With the scheduler on (requires an M3 `setting` — placement reacts to
/// monitor pressure), each job is admitted onto one node, and the returned
/// [`ClusterResult`] holds final-node runtimes measured from each job's
/// *arrival*.
pub fn run_fleet(
    scenario: &Scenario,
    setting: &Setting,
    machine_cfg: MachineConfig,
    fleet: &FleetConfig,
) -> FleetResult {
    run_fleet_with_workers(
        scenario,
        setting,
        machine_cfg,
        fleet,
        crate::parallel::worker_threads(),
    )
}

/// [`run_fleet`] with an explicit worker count. The result is bit-identical
/// for every `workers` value (the worker-count proptest pins this down);
/// the count only decides how many threads pre-warm node simulations and
/// run the final full-length node runs.
pub fn run_fleet_with_workers(
    scenario: &Scenario,
    setting: &Setting,
    machine_cfg: MachineConfig,
    fleet: &FleetConfig,
    workers: usize,
) -> FleetResult {
    assert!(!fleet.nodes.is_empty(), "need at least one node");
    if !fleet.scheduler {
        let node_cfgs = fleet
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| node_machine_cfg(machine_cfg, i, n.phys_total))
            .collect();
        let cluster = run_cluster_nodes(scenario, setting, node_cfgs);
        return FleetResult {
            cluster,
            jobs: Vec::new(),
            trace: TraceLog::new(),
            violations: Vec::new(),
        };
    }
    assert!(
        setting.is_m3(),
        "the fleet scheduler places by monitor pressure; run static \
         baselines with `scheduler: false`"
    );
    let njobs = scenario.len();
    let mut state = Fleet::new(scenario, machine_cfg, fleet, workers);
    state.run_events();

    // Final full-length run per non-empty node, in parallel via the node
    // cache; then fold per-job outcomes out of each job's final node.
    let finals: Vec<Option<Arc<ScenarioOutcome>>> =
        crate::parallel::parallel_map((0..state.nodes.len()).collect(), state.workers, |node| {
            (!state.nodes[node].apps.is_empty()).then(|| state.simulate(node, true))
        });

    let mut jobs = Vec::with_capacity(njobs);
    let mut app_runtimes_s = Vec::with_capacity(njobs);
    for job in 0..njobs {
        let arrival = SimTime::ZERO + scenario.apps[job].1;
        let (node, runtime_s) = match state.assignment[job] {
            Some((node, slot)) => {
                let app = &finals[node].as_ref().expect("assigned node ran").run.apps[slot];
                let rt = (!app.killed && !app.failed)
                    .then_some(app.finished)
                    .flatten()
                    .map(|f| f.saturating_since(arrival).as_secs_f64());
                (Some(node), rt)
            }
            None => (None, None),
        };
        jobs.push(JobOutcome {
            job,
            node,
            deferrals: state.deferrals[job],
            migrations: state.migrations[job],
            gave_up: state.gave_up[job],
            runtime_s,
        });
        app_runtimes_s.push(runtime_s);
    }
    // No per-node runtime matrix in scheduler mode: it is O(jobs × nodes)
    // and the per-job outcomes above carry the same information.
    let cluster = ClusterResult {
        app_runtimes_s,
        per_node_s: Vec::new(),
        spread_s: Vec::new(),
    };

    let mut violations = FleetOracle::new(fleet.grace.as_millis())
        .with_defer_interval(fleet.defer_interval.as_millis())
        .check(&state.trace);
    for out in finals.iter().flatten() {
        violations.extend(out.run.violations.iter().cloned());
    }
    FleetResult {
        cluster,
        jobs,
        trace: state.trace,
        violations,
    }
}

static FLEET_CACHE: MemoCache<FleetResult> = MemoCache::new();

/// Current totals of the fleet-level memoization cache (the node runs a
/// fleet performs are additionally memoized by the node cache,
/// [`crate::parallel::cache_stats`]).
pub fn fleet_cache_stats() -> CacheStats {
    FLEET_CACHE.stats()
}

/// Content-addressed [`run_fleet`]: the serialized `(scenario, setting,
/// machine_cfg, fleet_cfg)` quadruple keys a process-wide cache, and an
/// identical earlier fleet run is returned as a shared [`Arc`] without
/// re-running the scheduler. The machine config is normalized through
/// [`MachineConfig::with_setting`] before keying, like the node cache.
pub fn run_fleet_cached(
    scenario: &Scenario,
    setting: &Setting,
    machine_cfg: MachineConfig,
    fleet: &FleetConfig,
) -> Arc<FleetResult> {
    let cfg = machine_cfg.with_setting(setting);
    FLEET_CACHE.get_or_compute(&(scenario, setting, &cfg, fleet), || {
        run_fleet(scenario, setting, machine_cfg, fleet)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::fleet_canonical;

    fn quick_cfg() -> MachineConfig {
        let mut cfg = MachineConfig::stock_64gb();
        cfg.sample_period = None;
        cfg.max_time = SimDuration::from_secs(40_000);
        cfg
    }

    fn small_fleet() -> FleetConfig {
        let mut f = FleetConfig::homogeneous(3, 64 * GIB);
        f.rebalance_checks = 10;
        f
    }

    #[test]
    fn demand_estimates_follow_the_job_specs() {
        assert_eq!(
            demand_estimate(AppKind::KMeans),
            hibench::kmeans().working_set + hibench::kmeans().exec_demand
        );
        assert_eq!(
            demand_estimate(AppKind::GoCache),
            hibench::gocache_workload().full_bytes()
        );
        assert!(demand_estimate(AppKind::NWeight) > demand_estimate(AppKind::KMeans));
    }

    #[test]
    fn arrivals_spread_across_empty_nodes() {
        // Three staggered k-means jobs on three empty nodes: each placement
        // reserves its demand on the chosen node, so the next arrival
        // prefers a still-empty node and the jobs spread out 0, 1, 2.
        let scenario = Scenario::uniform("MMM", 120);
        let res = run_fleet(&scenario, &Setting::m3(3), quick_cfg(), &small_fleet());
        let nodes: Vec<Option<usize>> = res.jobs.iter().map(|j| j.node).collect();
        assert_eq!(nodes, vec![Some(0), Some(1), Some(2)]);
        assert!(res.violations.is_empty(), "{:?}", res.violations);
        assert!(res.cluster.mean_runtime_secs().all_completed());
    }

    #[test]
    fn admission_defers_when_no_node_fits() {
        // Two n-weight jobs (47 GiB demand) on ONE 64-GiB node: the second
        // must defer until the first finishes, then run.
        let scenario = Scenario::uniform("WW", 0);
        let mut fleet = FleetConfig::homogeneous(1, 64 * GIB);
        fleet.rebalance_checks = 0;
        fleet.max_defers = 200; // keep retrying until the first W finishes
        let res = run_fleet(&scenario, &Setting::m3(2), quick_cfg(), &fleet);
        assert_eq!(res.jobs[0].deferrals, 0);
        assert!(res.jobs[1].deferrals > 0, "second W must wait");
        assert!(!res.jobs[1].gave_up);
        assert!(res.violations.is_empty(), "{:?}", res.violations);
    }

    #[test]
    fn give_up_is_reported_not_silent() {
        // One node, zero retries allowed: the second W is given up on and
        // says so, and the first still completes.
        let scenario = Scenario::uniform("WW", 0);
        let mut fleet = FleetConfig::homogeneous(1, 64 * GIB);
        fleet.max_defers = 0;
        fleet.rebalance_checks = 0;
        let res = run_fleet(&scenario, &Setting::m3(2), quick_cfg(), &fleet);
        assert!(res.jobs[1].gave_up);
        assert_eq!(res.jobs[1].node, None);
        assert_eq!(res.cluster.app_runtimes_s[1], None);
        let mean = res.cluster.mean_runtime_secs();
        assert_eq!(mean.completed_apps, 1);
        assert_eq!(mean.failed_apps, 1);
        assert!(
            res.trace
                .events()
                .iter()
                .any(|e| matches!(e.data, TraceData::FleetGiveUp { job: 1, .. })),
            "give-up must be in the placement log"
        );
        assert!(res.violations.is_empty(), "{:?}", res.violations);
    }

    #[test]
    fn heterogeneous_nodes_respect_their_own_tops() {
        // A small and a big node: n-weight (47 GiB) cannot fit on the 32-GiB
        // node (top ≈ 31 GiB), so it must land on the big one even though
        // both are empty and the small one has the lower index.
        let scenario = Scenario::uniform("W", 0);
        let mut fleet = FleetConfig::homogeneous(2, 32 * GIB);
        fleet.nodes[1] = NodeSpec {
            phys_total: 64 * GIB,
        };
        fleet.rebalance_checks = 0;
        let res = run_fleet(&scenario, &Setting::m3(1), quick_cfg(), &fleet);
        assert_eq!(res.jobs[0].node, Some(1));
        assert!(res.violations.is_empty(), "{:?}", res.violations);
    }

    #[test]
    fn passthrough_mode_emits_no_fleet_events() {
        let scenario = Scenario::uniform("M", 0);
        let res = run_fleet(
            &scenario,
            &Setting::m3(1),
            quick_cfg(),
            &FleetConfig::passthrough(2),
        );
        assert!(res.trace.is_empty());
        assert!(res.jobs.is_empty());
        assert_eq!(res.cluster.per_node_s[0].len(), 2);
    }

    #[test]
    fn idle_node_probes_never_simulate() {
        // An idle node's probe answers from the precomputed per-size
        // summary: no probe simulation is cached (or run) for it, and the
        // view is the idle state with nothing reserved.
        let scenario = Scenario::uniform("MM", 0);
        let fleet = small_fleet();
        let cfg = quick_cfg();
        let mut state = Fleet::new(&scenario, cfg, &fleet, 1);
        let v = state.probe(2, SimTime::from_millis(1_000));
        assert!(
            state.nodes[2].probe.is_none(),
            "idle probe must not allocate a scenario run"
        );
        assert_eq!(v.summary, state.idle[&(64 * GIB)]);
        assert_eq!(v.reserved, 0);
        assert_eq!(v.summary.used, 0);
        assert!(matches!(v.summary.zone, Zone::Green));
    }

    #[test]
    fn incremental_probes_match_whole_fleet_reprobing() {
        // Fleet `a` keeps whatever probe caches the scheduler run left
        // behind; fleet `b` ran identically but is then forced to
        // re-simulate every node from scratch. If dirty tracking ever
        // missed an invalidation, a cached view in `a` would diverge from
        // `b`'s fresh one.
        let scenario = fleet_canonical();
        let fleet = small_fleet();
        let cfg = quick_cfg();
        let mut a = Fleet::new(&scenario, cfg, &fleet, 1);
        a.run_events();
        let mut b = Fleet::new(&scenario, cfg, &fleet, 1);
        b.run_events();
        for node in 0..b.nodes.len() {
            b.nodes[node].probe = None; // whole-fleet re-probe
        }
        for node in 0..a.nodes.len() {
            for t_s in [0u64, 60, 600, 3_600, 20_000] {
                let t = SimTime::from_millis(t_s * 1000);
                assert_eq!(
                    a.view(node, t),
                    b.view(node, t),
                    "node {node} at {t_s}s: incremental view must equal re-probed view"
                );
            }
        }
    }

    #[test]
    fn fleet_cache_returns_shared_result() {
        let scenario = fleet_canonical();
        let cfg = quick_cfg();
        let fleet = small_fleet();
        let setting = Setting::m3(scenario.len());
        let before = fleet_cache_stats();
        let a = run_fleet_cached(&scenario, &setting, cfg, &fleet);
        let b = run_fleet_cached(&scenario, &setting, cfg, &fleet);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be a cache hit");
        let delta = fleet_cache_stats().since(&before);
        assert!(delta.hits >= 1);
        assert!(delta.misses >= 1);
    }

    #[test]
    fn fleet_config_is_part_of_the_cache_key() {
        let scenario = Scenario::uniform("M", 0);
        let cfg = quick_cfg();
        let setting = Setting::m3(1);
        let a = run_fleet_cached(&scenario, &setting, cfg, &small_fleet());
        let mut other = small_fleet();
        other.defer_interval = SimDuration::from_secs(99);
        let b = run_fleet_cached(&scenario, &setting, cfg, &other);
        assert!(
            !Arc::ptr_eq(&a, &b),
            "different fleet configs must not share a cache entry"
        );
    }

    #[test]
    #[should_panic(expected = "scheduler: false")]
    fn scheduler_mode_rejects_static_settings() {
        let scenario = Scenario::uniform("M", 0);
        run_fleet(
            &scenario,
            &Setting::default_for(1),
            quick_cfg(),
            &small_fleet(),
        );
    }

    #[test]
    fn broken_policy_is_caught_by_the_oracle() {
        // The blind policy places without ever probing node pressure; the
        // cluster oracle must flag every such placement.
        let scenario = Scenario::uniform("MM", 120);
        let mut fleet = FleetConfig::homogeneous(2, 64 * GIB);
        fleet.policy = PlacementPolicy::Blind;
        fleet.rebalance_checks = 0;
        let res = run_fleet(&scenario, &Setting::m3(2), quick_cfg(), &fleet);
        assert!(res.jobs.iter().all(|j| j.node == Some(0)), "blind → node 0");
        let flagged = res
            .violations
            .iter()
            .filter(|v| v.invariant == "fleet.place.red")
            .count();
        assert_eq!(
            flagged, 2,
            "every probe-less placement must be flagged, got {:?}",
            res.violations
        );
    }

    #[test]
    fn red_node_triggers_migration_onto_the_idle_one() {
        // MostPressured co-locates both n-weight jobs on node 0, which
        // pushes it into the red zone; with an eager grace window the
        // rebalancer must migrate the newest job to the idle node. (The
        // adaptive thresholds chase usage within seconds, so red streaks
        // are transient — a zero grace window is what makes the check
        // deterministic; grace *enforcement* is covered by the oracle's
        // unit tests.)
        let scenario = Scenario::uniform("WW", 60);
        let mut fleet = FleetConfig::homogeneous(2, 64 * GIB);
        fleet.policy = PlacementPolicy::MostPressured;
        fleet.grace = SimDuration::ZERO;
        fleet.rebalance_period = SimDuration::from_secs(1);
        fleet.rebalance_checks = 150;
        let res = run_fleet(&scenario, &Setting::m3(2), quick_cfg(), &fleet);
        assert_eq!(res.jobs[1].migrations, 1, "newest job is the victim");
        assert_eq!(res.jobs[1].node, Some(1), "it restarts on the idle node");
        assert_eq!(res.jobs[0].migrations, 0, "the older job stays put");
        assert!(res
            .trace
            .events()
            .iter()
            .any(|e| matches!(e.data, TraceData::FleetMigrate { .. })));
        assert!(
            res.violations.is_empty(),
            "an eager-grace migration is still conformant: {:?}",
            res.violations
        );
    }

    #[test]
    fn worker_count_does_not_change_the_result() {
        let scenario = fleet_canonical();
        let fleet = small_fleet();
        let cfg = quick_cfg();
        let setting = Setting::m3(scenario.len());
        let a = run_fleet_with_workers(&scenario, &setting, cfg, &fleet, 1);
        let b = run_fleet_with_workers(&scenario, &setting, cfg, &fleet, 4);
        assert_eq!(
            serde_json::to_string(&a).expect("serialize"),
            serde_json::to_string(&b).expect("serialize"),
            "fleet results must be bit-identical for any worker count"
        );
    }
}
