//! `m3-fleet`: a pressure-aware cluster scheduler on top of the node
//! simulator.
//!
//! The paper's cluster (§7.1) is N independent workers all running the same
//! schedule; every placement decision is implicit. This module lifts M3's
//! node-local pressure signals to the cluster layer: incoming elastic jobs
//! are *placed* onto the least-pressured feasible node, *deferred* when no
//! node can take them without being pushed above its top of memory, and
//! *migrated* off a node whose monitor stays in the red zone beyond a grace
//! window (the direction MURS/SARA argue service stacks must go).
//!
//! # Determinism
//!
//! The scheduler is a pure function of `(scenario, setting, machine_cfg,
//! fleet_cfg)`. There is no randomness and no wall clock anywhere:
//!
//! - Scheduler events live in a `BTreeMap` keyed `(time_ms, class, index)`,
//!   so they pop in a total order.
//! - A node's pressure at time `t` is read by *re-simulating* that node up
//!   to `t` — the node simulator is deterministic, and every probe goes
//!   through the content-addressed run cache ([`crate::parallel`]), so
//!   repeated probes of an unchanged node are answered without
//!   re-simulating.
//! - Ties in the placement order are broken by node index; admission is an
//!   exact integer comparison (no float ordering).
//!
//! Migration is modelled as a crash fault on the source node (the elastic
//! job restarts from scratch on the target, as §7.1's restartable jobs do).
//! The crash instant always equals the scheduler's current time, so probes
//! cached for earlier times stay valid.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use m3_core::config::MonitorConfig;
use m3_core::monitor::{Monitor, PressureSummary, Zone};
use m3_oracle::{FleetOracle, Violation};
use m3_sim::clock::{SimDuration, SimTime};
use m3_sim::trace::{TraceData, TraceLog, TraceZone};
use m3_sim::units::GIB;
use serde::{Deserialize, Serialize};

use crate::cluster::{run_cluster_nodes, ClusterResult};
use crate::faults::FaultPlan;
use crate::hibench;
use crate::machine::MachineConfig;
use crate::parallel::{run_scenario_cached_faulted, CacheStats};
use crate::runner::ScenarioOutcome;
use crate::scenario::{AppKind, Scenario};
use crate::settings::Setting;

/// One worker node of the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Physical memory of the node.
    pub phys_total: u64,
}

impl NodeSpec {
    /// The paper's 64-GB worker.
    pub fn paper() -> Self {
        NodeSpec {
            phys_total: 64 * GIB,
        }
    }
}

/// Which feasible node the placer prefers. The two non-default variants
/// are deliberately broken — they exist so the invariant tests can catch a
/// misbehaving policy end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Place on the feasible node with the lowest `used / top` ratio
    /// (ties broken by lower node index).
    LeastPressured,
    /// Place on the *highest* `used / top` node, feasible or not — a
    /// broken policy that skips admission control (used by the
    /// rebalancing tests to force co-location).
    MostPressured,
    /// Place every job on node 0 without probing anything — a broken
    /// policy the oracle catches as a placement without a pressure
    /// snapshot.
    Blind,
}

/// Fleet scheduler configuration. Part of the fleet-level memoization key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// The worker nodes (heterogeneous sizes allowed).
    pub nodes: Vec<NodeSpec>,
    /// `false` runs every node through the legacy [`run_cluster_nodes`]
    /// path (each node runs the whole schedule; no placement decisions) —
    /// the backward-compat mode the figure benches rely on.
    pub scheduler: bool,
    /// How long a node must stay red before the rebalancer may migrate a
    /// job off it.
    pub grace: SimDuration,
    /// How long a deferred job waits before retrying admission.
    pub defer_interval: SimDuration,
    /// Admission retries before the scheduler gives up on a job.
    pub max_defers: u32,
    /// Migrations allowed per job (a migration restarts the job).
    pub max_migrations: u32,
    /// Cadence of the red-zone rebalance checks.
    pub rebalance_period: SimDuration,
    /// Number of rebalance checks scheduled (bounds the event horizon).
    pub rebalance_checks: u32,
    /// Placement preference among feasible nodes.
    pub policy: PlacementPolicy,
}

impl FleetConfig {
    /// A scheduling fleet of `n` homogeneous nodes of `phys_total` bytes.
    pub fn homogeneous(n: usize, phys_total: u64) -> Self {
        FleetConfig {
            nodes: vec![NodeSpec { phys_total }; n],
            scheduler: true,
            grace: SimDuration::from_secs(60),
            defer_interval: SimDuration::from_secs(120),
            max_defers: 30,
            max_migrations: 1,
            rebalance_period: SimDuration::from_secs(60),
            rebalance_checks: 40,
            policy: PlacementPolicy::LeastPressured,
        }
    }

    /// The paper's eight 64-GB workers, scheduler on.
    pub fn paper() -> Self {
        FleetConfig::homogeneous(crate::cluster::PAPER_NODES, 64 * GIB)
    }

    /// `n` 64-GB nodes with the scheduler disabled: every node runs the full
    /// schedule, exactly like [`crate::cluster::run_cluster`].
    pub fn passthrough(n: usize) -> Self {
        FleetConfig {
            scheduler: false,
            ..FleetConfig::homogeneous(n, 64 * GIB)
        }
    }
}

/// What happened to one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// The job's index in the scenario.
    pub job: usize,
    /// The node the job finally ran on (`None` if the scheduler gave up,
    /// or in passthrough mode where every node runs every job).
    pub node: Option<usize>,
    /// Admission deferrals before placement (or before giving up).
    pub deferrals: u32,
    /// Times the rebalancer migrated the job.
    pub migrations: u32,
    /// True if the job exhausted its admission retries.
    pub gave_up: bool,
    /// Completion time minus the job's *arrival* (not its last restart),
    /// seconds; `None` if the job failed, was killed, or was given up on.
    pub runtime_s: Option<f64>,
}

/// Outcome of one fleet run. Serializable end to end: the golden snapshot
/// and determinism tests compare runs by their serialized bytes, and the
/// fleet memoization cache hands out shared results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetResult {
    /// Cluster-level aggregation (slowest-node semantics in passthrough
    /// mode; final-node runtimes under the scheduler).
    pub cluster: ClusterResult,
    /// Per-job scheduler outcomes (empty in passthrough mode).
    pub jobs: Vec<JobOutcome>,
    /// The scheduler's placement log (`fleet.*` events; empty in
    /// passthrough mode).
    pub trace: TraceLog,
    /// Cluster-invariant violations from [`FleetOracle`] plus any node-level
    /// conformance violations from the final node runs. Empty = conformant.
    pub violations: Vec<Violation>,
}

/// Peak-memory estimate used for admission control: what placing a job of
/// this kind may eventually commit on the node.
pub fn demand_estimate(kind: AppKind) -> u64 {
    match kind {
        AppKind::KMeans | AppKind::PageRank | AppKind::NWeight => {
            let job = hibench::job_by_code(kind.code());
            job.working_set + job.exec_demand
        }
        AppKind::GoCache => hibench::gocache_workload().full_bytes(),
        AppKind::Memcached => hibench::memtier_workload().full_bytes(),
    }
}

/// The per-node machine configuration: the base config with this node's
/// salt and size. A node whose size differs from the base keeps no stale
/// monitor — [`MachineConfig::with_setting`] re-scales one to the node.
fn node_machine_cfg(base: MachineConfig, node: usize, phys_total: u64) -> MachineConfig {
    let mut cfg = base;
    cfg.node_salt = node as u64 + 1;
    if cfg.phys_total != phys_total {
        cfg.phys_total = phys_total;
        cfg.monitor = None;
    }
    cfg
}

/// Scheduler event classes, ordered within one instant: placement attempts
/// (arrivals and retries) run before rebalance checks.
const CLASS_PLACE: u8 = 0;
const CLASS_REBALANCE: u8 = 1;

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Try to admit job `job` (arrival or deferred retry), attempt number
    /// `attempt` (0 = the arrival itself).
    Place { job: usize, attempt: u32 },
    /// Probe every node and migrate off nodes red beyond the grace window.
    Rebalance,
}

/// One node's scheduling state.
struct NodeState {
    phys_total: u64,
    /// Jobs assigned to this node, in assignment order: `(job, kind,
    /// start offset)`. Only ever appended to, so fault targets (indices
    /// into this list) stay stable.
    apps: Vec<(usize, AppKind, SimDuration)>,
    /// Accumulated migration crashes on this node.
    faults: FaultPlan,
    /// When the node's probes turned contiguously red, ms.
    red_since: Option<u64>,
}

/// One node's state as seen by a scheduling decision at some instant.
#[derive(Debug, Clone, Copy)]
struct NodeView {
    node: usize,
    summary: PressureSummary,
    /// Summed demand estimates of this node's assigned, unfinished jobs.
    reserved: u64,
}

impl NodeView {
    /// The load the placer ranks and admits against: committed memory or
    /// outstanding reservations, whichever is larger (reservations cover
    /// placed jobs that have not grown into their demand yet; `used` covers
    /// jobs that outgrew their estimate).
    fn effective(&self) -> u64 {
        self.summary.used.max(self.reserved)
    }
}

struct Fleet<'a> {
    scenario: &'a Scenario,
    base_cfg: MachineConfig,
    fleet: &'a FleetConfig,
    nodes: Vec<NodeState>,
    trace: TraceLog,
    /// Final `(node, slot in that node's app list)` per job.
    assignment: Vec<Option<(usize, usize)>>,
    deferrals: Vec<u32>,
    migrations: Vec<u32>,
    gave_up: Vec<bool>,
}

impl<'a> Fleet<'a> {
    /// The sub-scenario a node's assigned jobs form. The name is salted
    /// with the node index so node-local caches and traces stay
    /// distinguishable; determinism only needs it to be a pure function of
    /// the inputs.
    fn node_scenario(&self, node: usize) -> Scenario {
        let st = &self.nodes[node];
        Scenario {
            name: format!("{}::node{}", self.scenario.name, node),
            apps: st
                .apps
                .iter()
                .map(|&(_, kind, start)| (kind, start))
                .collect(),
        }
    }

    fn node_cfg(&self, node: usize) -> MachineConfig {
        node_machine_cfg(self.base_cfg, node, self.nodes[node].phys_total)
    }

    /// Simulates node `node` up to `horizon` (cached) and returns the
    /// outcome. `capture` keeps the node trace and profile (the final full
    /// runs); probes run stripped for speed.
    fn simulate(&self, node: usize, horizon: SimDuration, capture: bool) -> Arc<ScenarioOutcome> {
        let scenario = self.node_scenario(node);
        let setting = Setting::m3(scenario.len());
        let mut cfg = self.node_cfg(node);
        if !capture {
            cfg.max_time = horizon.min(cfg.max_time);
            cfg.sample_period = None;
            cfg.capture_trace = false;
        }
        run_scenario_cached_faulted(&scenario, &setting, cfg, &self.nodes[node].faults)
    }

    /// Reads node `node`'s pressure at time `t`, records the
    /// `fleet.pressure` event, and advances the node's red-streak clock.
    ///
    /// Besides the monitor's summary, the view carries the node's *reserved*
    /// demand: the summed demand estimates of jobs assigned to it that have
    /// not finished by `t`. A freshly placed job has committed nothing yet,
    /// so admission must rank against `max(used, reserved)` or simultaneous
    /// arrivals would all pile onto the same empty node.
    fn probe(&mut self, node: usize, t: SimTime) -> NodeView {
        let (summary, reserved) = if self.nodes[node].apps.is_empty() {
            // Nothing scheduled: the node is idle at its initial thresholds.
            let cfg = self.node_cfg(node).with_setting(&Setting::m3(0));
            let monitor = cfg
                .monitor
                .unwrap_or_else(|| MonitorConfig::scaled(cfg.phys_total));
            (Monitor::new(monitor).pressure_summary(0), 0)
        } else {
            let out = self.simulate(node, t.saturating_since(SimTime::ZERO), false);
            let mut reserved = 0u64;
            for (slot, &(job, kind, _)) in self.nodes[node].apps.iter().enumerate() {
                let here = self.assignment[job] == Some((node, slot));
                let alive = out
                    .run
                    .apps
                    .get(slot)
                    .is_none_or(|a| !a.killed && !a.failed && a.finished.is_none());
                if here && alive {
                    reserved = reserved.saturating_add(demand_estimate(kind));
                }
            }
            let summary = out
                .run
                .pressure
                .expect("m3 node runs always have a monitor");
            (summary, reserved)
        };
        let zone: TraceZone = summary.zone.into();
        self.trace.record(
            t,
            node as u64,
            TraceData::FleetPressure {
                node: node as u64,
                zone,
                used: summary.used,
                high: summary.high,
                top: summary.top,
                escalations: summary.watchdog_escalations,
            },
        );
        match summary.zone {
            Zone::Red | Zone::AboveTop => {
                self.nodes[node].red_since.get_or_insert(t.as_millis());
            }
            _ => self.nodes[node].red_since = None,
        }
        NodeView {
            node,
            summary,
            reserved,
        }
    }

    /// True if `demand` more bytes fit on this node without crossing its
    /// top of memory (and the node is not already red).
    fn admits(view: &NodeView, demand: u64) -> bool {
        matches!(view.summary.zone, Zone::Green | Zone::Yellow)
            && view.effective().saturating_add(demand) <= view.summary.top
    }

    /// Picks the preferred node among `candidates` by the configured
    /// policy: exact integer comparison of `effective/top` ratios
    /// (`eff_a * top_b` vs `eff_b * top_a`), ties to the lower node index.
    fn pick(&self, candidates: &[NodeView]) -> Option<usize> {
        let prefer_least = matches!(self.fleet.policy, PlacementPolicy::LeastPressured);
        let mut best: Option<&NodeView> = None;
        for v in candidates {
            let better = match best {
                None => true,
                Some(b) => {
                    let lhs = v.effective() as u128 * b.summary.top as u128;
                    let rhs = b.effective() as u128 * v.summary.top as u128;
                    if prefer_least {
                        lhs < rhs
                    } else {
                        lhs > rhs
                    }
                }
            };
            if better {
                best = Some(v);
            }
        }
        best.map(|v| v.node)
    }

    /// Assigns job `job` to `node` starting at `t` and records the
    /// bookkeeping shared by placement and migration.
    fn assign(&mut self, job: usize, kind: AppKind, node: usize, t: SimTime) {
        let slot = self.nodes[node].apps.len();
        self.nodes[node]
            .apps
            .push((job, kind, t.saturating_since(SimTime::ZERO)));
        self.assignment[job] = Some((node, slot));
    }

    fn on_place(&mut self, job: usize, attempt: u32, t: SimTime, queue: &mut EventQueue) {
        let kind = self.scenario.apps[job].0;
        let demand = demand_estimate(kind);
        if matches!(self.fleet.policy, PlacementPolicy::Blind) {
            // The blind policy never probes: the missing pressure snapshot
            // is itself the conformance violation the oracle reports.
            let cfg = self.node_cfg(0).with_setting(&Setting::m3(0));
            let top = cfg
                .monitor
                .unwrap_or_else(|| MonitorConfig::scaled(cfg.phys_total))
                .top;
            self.trace.record(
                t,
                job as u64,
                TraceData::FleetPlace {
                    job: job as u64,
                    node: 0,
                    used: 0,
                    demand,
                    top,
                },
            );
            self.deferrals[job] = attempt;
            self.assign(job, kind, 0, t);
            return;
        }
        let views: Vec<NodeView> = (0..self.nodes.len()).map(|n| self.probe(n, t)).collect();
        let candidates: Vec<NodeView> = match self.fleet.policy {
            // The broken test policy skips admission control entirely.
            PlacementPolicy::MostPressured => views.clone(),
            PlacementPolicy::LeastPressured => views
                .iter()
                .copied()
                .filter(|v| Self::admits(v, demand))
                .collect(),
            PlacementPolicy::Blind => unreachable!("handled above"),
        };
        match self.pick(&candidates) {
            Some(node) => {
                let summary = views[node].summary;
                self.trace.record(
                    t,
                    job as u64,
                    TraceData::FleetPlace {
                        job: job as u64,
                        node: node as u64,
                        used: summary.used,
                        demand,
                        top: summary.top,
                    },
                );
                self.deferrals[job] = attempt;
                self.assign(job, kind, node, t);
            }
            None if attempt >= self.fleet.max_defers => {
                self.deferrals[job] = attempt;
                self.gave_up[job] = true;
                self.trace.record(
                    t,
                    job as u64,
                    TraceData::FleetGiveUp {
                        job: job as u64,
                        attempts: attempt as u64 + 1,
                    },
                );
            }
            None => {
                let retry =
                    SimTime::from_millis(t.as_millis() + self.fleet.defer_interval.as_millis());
                self.trace.record(
                    t,
                    job as u64,
                    TraceData::FleetDefer {
                        job: job as u64,
                        attempt: attempt as u64 + 1,
                        retry_at_ms: retry.as_millis(),
                    },
                );
                queue.insert(
                    (retry.as_millis(), CLASS_PLACE, job as u64),
                    Event::Place {
                        job,
                        attempt: attempt + 1,
                    },
                );
            }
        }
    }

    fn on_rebalance(&mut self, t: SimTime) {
        let views: Vec<NodeView> = (0..self.nodes.len()).map(|n| self.probe(n, t)).collect();
        let grace = self.fleet.grace.as_millis();
        for node in 0..self.nodes.len() {
            let Some(since) = self.nodes[node].red_since else {
                continue;
            };
            let red_for = t.as_millis().saturating_sub(since);
            if red_for < grace {
                continue;
            }
            // Victim: the lowest-priority (latest-arriving) unfinished job
            // still on this node that has migration budget left.
            let out = self.simulate(node, t.saturating_since(SimTime::ZERO), false);
            let victim = self.nodes[node]
                .apps
                .iter()
                .enumerate()
                .filter(|&(slot, &(job, _, _))| {
                    self.assignment[job] == Some((node, slot))
                        && self.migrations[job] < self.fleet.max_migrations
                        && out
                            .run
                            .apps
                            .get(slot)
                            .is_some_and(|a| !a.killed && !a.failed && a.finished.is_none())
                })
                .max_by_key(|&(_, &(job, _, _))| job)
                .map(|(slot, &(job, kind, _))| (slot, job, kind));
            let Some((slot, job, kind)) = victim else {
                continue;
            };
            // Target: least-pressured feasible node other than the source.
            let demand = demand_estimate(kind);
            let candidates: Vec<NodeView> = views
                .iter()
                .copied()
                .filter(|v| v.node != node && Self::admits(v, demand))
                .collect();
            let Some(target) = self.pick(&candidates) else {
                continue; // nowhere better to go: migrating would not help
            };
            self.nodes[node].faults = std::mem::take(&mut self.nodes[node].faults)
                .with_crash(t.saturating_since(SimTime::ZERO), slot);
            self.migrations[job] += 1;
            self.trace.record(
                t,
                job as u64,
                TraceData::FleetMigrate {
                    job: job as u64,
                    from: node as u64,
                    to: target as u64,
                    red_for_ms: red_for,
                },
            );
            self.assign(job, kind, target, t);
        }
    }
}

type EventQueue = BTreeMap<(u64, u8, u64), Event>;

/// Runs `scenario` on the fleet described by `fleet`.
///
/// With `fleet.scheduler == false` this is exactly
/// [`crate::cluster::run_cluster`] over the fleet's node sizes: every node
/// runs the full schedule and per-app completion is the slowest node.
///
/// With the scheduler on (requires an M3 `setting` — placement reacts to
/// monitor pressure), each job is admitted onto one node, and the returned
/// [`ClusterResult`] holds final-node runtimes measured from each job's
/// *arrival*.
pub fn run_fleet(
    scenario: &Scenario,
    setting: &Setting,
    machine_cfg: MachineConfig,
    fleet: &FleetConfig,
) -> FleetResult {
    assert!(!fleet.nodes.is_empty(), "need at least one node");
    if !fleet.scheduler {
        let node_cfgs = fleet
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| node_machine_cfg(machine_cfg, i, n.phys_total))
            .collect();
        let cluster = run_cluster_nodes(scenario, setting, node_cfgs);
        return FleetResult {
            cluster,
            jobs: Vec::new(),
            trace: TraceLog::new(),
            violations: Vec::new(),
        };
    }
    assert!(
        setting.is_m3(),
        "the fleet scheduler places by monitor pressure; run static \
         baselines with `scheduler: false`"
    );
    let njobs = scenario.len();
    let mut state = Fleet {
        scenario,
        base_cfg: machine_cfg,
        fleet,
        nodes: fleet
            .nodes
            .iter()
            .map(|n| NodeState {
                phys_total: n.phys_total,
                apps: Vec::new(),
                faults: FaultPlan::none(),
                red_since: None,
            })
            .collect(),
        trace: TraceLog::new(),
        assignment: vec![None; njobs],
        deferrals: vec![0; njobs],
        migrations: vec![0; njobs],
        gave_up: vec![false; njobs],
    };

    let mut queue: EventQueue = BTreeMap::new();
    for (job, &(_, start)) in scenario.apps.iter().enumerate() {
        queue.insert(
            (start.as_millis(), CLASS_PLACE, job as u64),
            Event::Place { job, attempt: 0 },
        );
    }
    for k in 1..=fleet.rebalance_checks {
        queue.insert(
            (
                fleet.rebalance_period.as_millis() * k as u64,
                CLASS_REBALANCE,
                k as u64,
            ),
            Event::Rebalance,
        );
    }
    while let Some((&key, _)) = queue.iter().next() {
        let event = queue.remove(&key).expect("key just observed");
        let t = SimTime::from_millis(key.0);
        match event {
            Event::Place { job, attempt } => state.on_place(job, attempt, t, &mut queue),
            Event::Rebalance => state.on_rebalance(t),
        }
    }

    // Final full-length run per non-empty node, in parallel via the node
    // cache; then fold per-job outcomes out of each job's final node.
    let finals: Vec<Option<Arc<ScenarioOutcome>>> = crate::parallel::parallel_map(
        (0..state.nodes.len()).collect(),
        crate::parallel::worker_threads(),
        |node| {
            (!state.nodes[node].apps.is_empty())
                .then(|| state.simulate(node, machine_cfg.max_time, true))
        },
    );

    let mut jobs = Vec::with_capacity(njobs);
    let mut app_runtimes_s = Vec::with_capacity(njobs);
    let mut per_node_s = Vec::with_capacity(njobs);
    for job in 0..njobs {
        let arrival = SimTime::ZERO + scenario.apps[job].1;
        let (node, runtime_s) = match state.assignment[job] {
            Some((node, slot)) => {
                let app = &finals[node].as_ref().expect("assigned node ran").run.apps[slot];
                let rt = (!app.killed && !app.failed)
                    .then_some(app.finished)
                    .flatten()
                    .map(|f| f.saturating_since(arrival).as_secs_f64());
                (Some(node), rt)
            }
            None => (None, None),
        };
        jobs.push(JobOutcome {
            job,
            node,
            deferrals: state.deferrals[job],
            migrations: state.migrations[job],
            gave_up: state.gave_up[job],
            runtime_s,
        });
        app_runtimes_s.push(runtime_s);
        per_node_s.push(
            (0..state.nodes.len())
                .map(|n| if Some(n) == node { runtime_s } else { None })
                .collect(),
        );
    }
    let cluster = ClusterResult {
        app_runtimes_s,
        per_node_s,
        spread_s: vec![0.0; njobs],
    };

    let mut violations = FleetOracle::new(fleet.grace.as_millis()).check(&state.trace);
    for out in finals.iter().flatten() {
        violations.extend(out.run.violations.iter().cloned());
    }
    FleetResult {
        cluster,
        jobs,
        trace: state.trace,
        violations,
    }
}

static FLEET_CACHE: OnceLock<Mutex<HashMap<String, Arc<FleetResult>>>> = OnceLock::new();
static FLEET_HITS: AtomicU64 = AtomicU64::new(0);
static FLEET_MISSES: AtomicU64 = AtomicU64::new(0);

fn fleet_cache() -> &'static Mutex<HashMap<String, Arc<FleetResult>>> {
    FLEET_CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Current totals of the fleet-level memoization cache (the node runs a
/// fleet performs are additionally memoized by the node cache,
/// [`crate::parallel::cache_stats`]).
pub fn fleet_cache_stats() -> CacheStats {
    CacheStats {
        hits: FLEET_HITS.load(Ordering::Relaxed),
        misses: FLEET_MISSES.load(Ordering::Relaxed),
    }
}

/// Content-addressed [`run_fleet`]: the serialized `(scenario, setting,
/// machine_cfg, fleet_cfg)` quadruple keys a process-wide cache, and an
/// identical earlier fleet run is returned as a shared [`Arc`] without
/// re-running the scheduler. The machine config is normalized through
/// [`MachineConfig::with_setting`] before keying, like the node cache.
pub fn run_fleet_cached(
    scenario: &Scenario,
    setting: &Setting,
    machine_cfg: MachineConfig,
    fleet: &FleetConfig,
) -> Arc<FleetResult> {
    let cfg = machine_cfg.with_setting(setting);
    let key = serde_json::to_string(&(scenario, setting, &cfg, fleet))
        .expect("fleet cache key serialization cannot fail");
    if let Some(hit) = fleet_cache()
        .lock()
        .expect("fleet cache poisoned")
        .get(&key)
    {
        FLEET_HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(hit);
    }
    FLEET_MISSES.fetch_add(1, Ordering::Relaxed);
    let result = Arc::new(run_fleet(scenario, setting, machine_cfg, fleet));
    Arc::clone(
        fleet_cache()
            .lock()
            .expect("fleet cache poisoned")
            .entry(key)
            .or_insert(result),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::fleet_canonical;

    fn quick_cfg() -> MachineConfig {
        let mut cfg = MachineConfig::stock_64gb();
        cfg.sample_period = None;
        cfg.max_time = SimDuration::from_secs(40_000);
        cfg
    }

    fn small_fleet() -> FleetConfig {
        let mut f = FleetConfig::homogeneous(3, 64 * GIB);
        f.rebalance_checks = 10;
        f
    }

    #[test]
    fn demand_estimates_follow_the_job_specs() {
        assert_eq!(
            demand_estimate(AppKind::KMeans),
            hibench::kmeans().working_set + hibench::kmeans().exec_demand
        );
        assert_eq!(
            demand_estimate(AppKind::GoCache),
            hibench::gocache_workload().full_bytes()
        );
        assert!(demand_estimate(AppKind::NWeight) > demand_estimate(AppKind::KMeans));
    }

    #[test]
    fn arrivals_spread_across_empty_nodes() {
        // Three staggered k-means jobs on three empty nodes: each placement
        // reserves its demand on the chosen node, so the next arrival
        // prefers a still-empty node and the jobs spread out 0, 1, 2.
        let scenario = Scenario::uniform("MMM", 120);
        let res = run_fleet(&scenario, &Setting::m3(3), quick_cfg(), &small_fleet());
        let nodes: Vec<Option<usize>> = res.jobs.iter().map(|j| j.node).collect();
        assert_eq!(nodes, vec![Some(0), Some(1), Some(2)]);
        assert!(res.violations.is_empty(), "{:?}", res.violations);
        assert!(res.cluster.mean_runtime_secs().all_completed());
    }

    #[test]
    fn admission_defers_when_no_node_fits() {
        // Two n-weight jobs (47 GiB demand) on ONE 64-GiB node: the second
        // must defer until the first finishes, then run.
        let scenario = Scenario::uniform("WW", 0);
        let mut fleet = FleetConfig::homogeneous(1, 64 * GIB);
        fleet.rebalance_checks = 0;
        fleet.max_defers = 200; // keep retrying until the first W finishes
        let res = run_fleet(&scenario, &Setting::m3(2), quick_cfg(), &fleet);
        assert_eq!(res.jobs[0].deferrals, 0);
        assert!(res.jobs[1].deferrals > 0, "second W must wait");
        assert!(!res.jobs[1].gave_up);
        assert!(res.violations.is_empty(), "{:?}", res.violations);
    }

    #[test]
    fn give_up_is_reported_not_silent() {
        // One node, zero retries allowed: the second W is given up on and
        // says so, and the first still completes.
        let scenario = Scenario::uniform("WW", 0);
        let mut fleet = FleetConfig::homogeneous(1, 64 * GIB);
        fleet.max_defers = 0;
        fleet.rebalance_checks = 0;
        let res = run_fleet(&scenario, &Setting::m3(2), quick_cfg(), &fleet);
        assert!(res.jobs[1].gave_up);
        assert_eq!(res.jobs[1].node, None);
        assert_eq!(res.cluster.app_runtimes_s[1], None);
        let mean = res.cluster.mean_runtime_secs();
        assert_eq!(mean.completed_apps, 1);
        assert_eq!(mean.failed_apps, 1);
        assert!(
            res.trace
                .events()
                .iter()
                .any(|e| matches!(e.data, TraceData::FleetGiveUp { job: 1, .. })),
            "give-up must be in the placement log"
        );
        assert!(res.violations.is_empty(), "{:?}", res.violations);
    }

    #[test]
    fn heterogeneous_nodes_respect_their_own_tops() {
        // A small and a big node: n-weight (47 GiB) cannot fit on the 32-GiB
        // node (top ≈ 31 GiB), so it must land on the big one even though
        // both are empty and the small one has the lower index.
        let scenario = Scenario::uniform("W", 0);
        let mut fleet = FleetConfig::homogeneous(2, 32 * GIB);
        fleet.nodes[1] = NodeSpec {
            phys_total: 64 * GIB,
        };
        fleet.rebalance_checks = 0;
        let res = run_fleet(&scenario, &Setting::m3(1), quick_cfg(), &fleet);
        assert_eq!(res.jobs[0].node, Some(1));
        assert!(res.violations.is_empty(), "{:?}", res.violations);
    }

    #[test]
    fn passthrough_mode_emits_no_fleet_events() {
        let scenario = Scenario::uniform("M", 0);
        let res = run_fleet(
            &scenario,
            &Setting::m3(1),
            quick_cfg(),
            &FleetConfig::passthrough(2),
        );
        assert!(res.trace.is_empty());
        assert!(res.jobs.is_empty());
        assert_eq!(res.cluster.per_node_s[0].len(), 2);
    }

    #[test]
    fn fleet_cache_returns_shared_result() {
        let scenario = fleet_canonical();
        let cfg = quick_cfg();
        let fleet = small_fleet();
        let setting = Setting::m3(scenario.len());
        let before = fleet_cache_stats();
        let a = run_fleet_cached(&scenario, &setting, cfg, &fleet);
        let b = run_fleet_cached(&scenario, &setting, cfg, &fleet);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be a cache hit");
        let delta = fleet_cache_stats().since(&before);
        assert!(delta.hits >= 1);
        assert!(delta.misses >= 1);
    }

    #[test]
    fn fleet_config_is_part_of_the_cache_key() {
        let scenario = Scenario::uniform("M", 0);
        let cfg = quick_cfg();
        let setting = Setting::m3(1);
        let a = run_fleet_cached(&scenario, &setting, cfg, &small_fleet());
        let mut other = small_fleet();
        other.defer_interval = SimDuration::from_secs(99);
        let b = run_fleet_cached(&scenario, &setting, cfg, &other);
        assert!(
            !Arc::ptr_eq(&a, &b),
            "different fleet configs must not share a cache entry"
        );
    }

    #[test]
    #[should_panic(expected = "scheduler: false")]
    fn scheduler_mode_rejects_static_settings() {
        let scenario = Scenario::uniform("M", 0);
        run_fleet(
            &scenario,
            &Setting::default_for(1),
            quick_cfg(),
            &small_fleet(),
        );
    }

    #[test]
    fn broken_policy_is_caught_by_the_oracle() {
        // The blind policy places without ever probing node pressure; the
        // cluster oracle must flag every such placement.
        let scenario = Scenario::uniform("MM", 120);
        let mut fleet = FleetConfig::homogeneous(2, 64 * GIB);
        fleet.policy = PlacementPolicy::Blind;
        fleet.rebalance_checks = 0;
        let res = run_fleet(&scenario, &Setting::m3(2), quick_cfg(), &fleet);
        assert!(res.jobs.iter().all(|j| j.node == Some(0)), "blind → node 0");
        let flagged = res
            .violations
            .iter()
            .filter(|v| v.invariant == "fleet.place.red")
            .count();
        assert_eq!(
            flagged, 2,
            "every probe-less placement must be flagged, got {:?}",
            res.violations
        );
    }

    #[test]
    fn red_node_triggers_migration_onto_the_idle_one() {
        // MostPressured co-locates both n-weight jobs on node 0, which
        // pushes it into the red zone; with an eager grace window the
        // rebalancer must migrate the newest job to the idle node. (The
        // adaptive thresholds chase usage within seconds, so red streaks
        // are transient — a zero grace window is what makes the check
        // deterministic; grace *enforcement* is covered by the oracle's
        // unit tests.)
        let scenario = Scenario::uniform("WW", 60);
        let mut fleet = FleetConfig::homogeneous(2, 64 * GIB);
        fleet.policy = PlacementPolicy::MostPressured;
        fleet.grace = SimDuration::ZERO;
        fleet.rebalance_period = SimDuration::from_secs(1);
        fleet.rebalance_checks = 150;
        let res = run_fleet(&scenario, &Setting::m3(2), quick_cfg(), &fleet);
        assert_eq!(res.jobs[1].migrations, 1, "newest job is the victim");
        assert_eq!(res.jobs[1].node, Some(1), "it restarts on the idle node");
        assert_eq!(res.jobs[0].migrations, 0, "the older job stays put");
        assert!(res
            .trace
            .events()
            .iter()
            .any(|e| matches!(e.data, TraceData::FleetMigrate { .. })));
        assert!(
            res.violations.is_empty(),
            "an eager-grace migration is still conformant: {:?}",
            res.violations
        );
    }
}
